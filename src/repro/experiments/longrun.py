"""E2-E6: the long-run dynamic-policy experiments (Section III-D).

``run_longrun`` reproduces the paper's two prolonged runs:

* **daily updates** -- 31 days, one sync+generate+push+upgrade cycle
  per day at 05:00 (Figs 3, 4, 5);
* **weekly updates** -- 35 days, one cycle per week (the second row of
  Table I).

Throughout the run a verifier polls continuously and a benign workload
exercises the system (including every freshly updated executable); the
validation claim is **zero false positives** over the whole window.

``official_on_days`` injects the paper's one observed failure: on
2024-03-27 (day 30 of the daily run) the operator installed from the
official archive after the mirror's 05:00 sync, pulling versions the
policy had never seen.  A daily "operator check" models the manual
resolution the authors performed: regenerate the policy from the
actually-installed packages, push, restart attestation.

``p2_on_day`` injects the P2 adaptive attack instead: a self-induced
false positive at 09:00 halts polling, and the real backdoor lands six
hours later inside the coverage gap.  Because the decoy is not part of
any mirrored package, the daily operator regeneration cannot absolve
it -- every restart replays into the same failure, which is exactly
the P2 loop.  Attach a :class:`repro.obs.health.HealthWatch` via
*watch* to see the gap detector catch the silence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import days, hours
from repro.common.units import summarize
from repro.dynpolicy.orchestrator import UpdateCycleReport
from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed
from repro.keylime.verifier import AgentState, FailureKind


@dataclass(frozen=True)
class FpIncident:
    """A false positive observed during the run."""

    time: float
    day: int
    path: str
    detail: str


@dataclass
class LongRunResult:
    """Everything the long-run harness measured."""

    n_days: int
    cadence_days: int
    cycles: list[UpdateCycleReport] = field(default_factory=list)
    fp_incidents: list[FpIncident] = field(default_factory=list)
    total_polls: int = 0
    ok_polls: int = 0
    initial_policy_lines: int = 0
    final_policy_lines: int = 0

    # -- series for the figures -------------------------------------------

    @property
    def update_minutes(self) -> list[float]:
        """Fig 3's series: generator runtime per update, minutes."""
        return [c.policy_report.duration_seconds / 60.0 for c in self.cycles]

    @property
    def packages_per_update(self) -> list[int]:
        """Fig 4's series: new/changed packages with executables."""
        return [c.policy_report.packages_total for c in self.cycles]

    @property
    def high_priority_per_update(self) -> list[int]:
        """Fig 4's high-priority sub-series."""
        return [c.policy_report.packages_high for c in self.cycles]

    @property
    def low_priority_per_update(self) -> list[int]:
        """Table I's low-priority counts."""
        return [c.policy_report.packages_low for c in self.cycles]

    @property
    def entries_per_update(self) -> list[int]:
        """Fig 5's series: policy lines appended per update."""
        return [c.policy_report.entries_added for c in self.cycles]

    @property
    def bytes_per_update(self) -> list[int]:
        """Policy size growth per update (the paper's 0.16 MB)."""
        return [c.policy_report.bytes_added for c in self.cycles]

    def summary(self) -> dict[str, dict[str, float]]:
        """Mean/std summaries for every reported series."""
        return {
            "minutes": summarize(self.update_minutes),
            "packages": summarize(self.packages_per_update),
            "packages_high": summarize(self.high_priority_per_update),
            "packages_low": summarize(self.low_priority_per_update),
            "entries": summarize(self.entries_per_update),
            "bytes": summarize(self.bytes_per_update),
        }


def run_longrun(
    seed: int | str = 0,
    n_days: int = 31,
    cadence_days: int = 1,
    official_on_days: set[int] | None = None,
    config: TestbedConfig | None = None,
    p2_on_day: int | None = None,
    watch=None,
) -> LongRunResult:
    """Run one long-run experiment; see the module docstring."""
    if config is None:
        config = TestbedConfig(seed=seed, policy_mode="dynamic")
    testbed = build_testbed(config)
    agent_id = testbed.agent_id

    if watch is not None:
        from repro.obs import runtime as obs

        telemetry = obs.get()
        watch.attach(
            testbed.events,
            registry=telemetry.registry if telemetry.enabled else None,
            tracer=telemetry.tracer if telemetry.enabled else None,
            audit=testbed.audit,
            poll_interval=config.poll_interval_seconds,
        )
        watch.watch_agent(agent_id, config.poll_interval_seconds)
        watch.schedule(testbed.scheduler)

    if p2_on_day is not None:
        from repro.attacks.problems import p2_blind_verifier

        def trip_false_positive() -> None:
            path = p2_blind_verifier(testbed.machine)
            testbed.events.emit(
                testbed.scheduler.clock.now, "attack.p2",
                "attack.decoy_executed", agent=agent_id, path=path,
            )

        def land_real_attack() -> None:
            attack = "/usr/bin/backdoor"
            testbed.machine.install_file(attack, b"backdoor", executable=True)
            testbed.machine.exec_file(attack)
            testbed.events.emit(
                testbed.scheduler.clock.now, "attack.p2",
                "attack.backdoor_executed", agent=agent_id, path=attack,
            )

        testbed.scheduler.call_at(
            days(p2_on_day) + hours(9), trip_false_positive, label="p2-decoy"
        )
        testbed.scheduler.call_at(
            days(p2_on_day) + hours(15), land_real_attack, label="p2-backdoor"
        )

    n_cycles = max(1, n_days // cadence_days)
    for day in range(1, n_days + 1):
        testbed.stream.generate_day(day)
    testbed.orchestrator.schedule_cycles(
        start_day=1,
        n_cycles=n_cycles,
        cadence_days=cadence_days,
        official_on_days=official_on_days,
    )
    testbed.verifier.start_polling(agent_id, config.poll_interval_seconds)
    testbed.scheduler.every(
        days(1), lambda: testbed.workload.daily(10), start=hours(12), label="benign"
    )

    def operator_check() -> None:
        """Daily ops review: resolve any attestation failure by hand."""
        if testbed.verifier.state_of(agent_id) is not AgentState.FAILED:
            return
        # Regenerate from what is actually installed, push, restart.
        measurements: dict[str, str] = {}
        for package in testbed.apt.installed.values():
            measurements.update(package.measurements())
        testbed.policy.merge_measurements(measurements)
        testbed.tenant.resolve_failure(agent_id, testbed.policy)

    testbed.scheduler.every(days(1), operator_check, start=hours(34), label="operator")

    initial_lines = testbed.policy.line_count()
    testbed.scheduler.run_until(days(n_days + 1))
    if watch is not None:
        watch.finalize(testbed.scheduler.clock.now)

    fp_incidents = [
        FpIncident(
            time=failure.time,
            day=int(failure.time // 86400),
            path=failure.policy_failure.path if failure.policy_failure else "",
            detail=failure.detail,
        )
        for failure in testbed.verifier.failures_of(agent_id)
        if failure.kind is FailureKind.POLICY
    ]
    results = testbed.verifier.results_of(agent_id)
    return LongRunResult(
        n_days=n_days,
        cadence_days=cadence_days,
        cycles=list(testbed.orchestrator.reports),
        fp_incidents=fp_incidents,
        total_polls=len(results),
        ok_polls=sum(1 for result in results if result.ok),
        initial_policy_lines=initial_lines,
        final_policy_lines=testbed.policy.line_count(),
    )


def table1_rows(daily: LongRunResult, weekly: LongRunResult) -> list[dict[str, float]]:
    """Table I: per-update averages for the two cadences."""
    rows = []
    for label, result in (("Daily Update", daily), ("Weekly Update", weekly)):
        stats = result.summary()
        rows.append(
            {
                "experiment": label,
                "low_priority_packages": stats["packages_low"]["mean"],
                "high_priority_packages": stats["packages_high"]["mean"],
                "files_updated": stats["entries"]["mean"],
                "time_minutes": stats["minutes"]["mean"],
            }
        )
    return rows
