"""Saturation probe: sweep fleet sizes to find the utilization knee.

The capacity planner (:mod:`repro.obs.capacity`) fits per-node round
cost from observed tick accounting; this experiment *generates* those
observations under controlled conditions.  For each fleet size it
builds an identically provisioned fleet, primes the verdict cache (the
first round replays whole logs and would otherwise dominate the fit),
then drives N batch ticks and keeps every
:class:`~repro.obs.capacity.TickRecord`.

The tick **budget** needs care: batch cost is wall seconds while the
poll interval is simulated seconds, so a production-shaped budget can
never saturate a millisecond-scale bench fleet.  When no budget is
given the sweep calibrates one from its own fitted model -- the busy
cost projected at the sweep's midpoint size -- which lands the measured
knee inside the sweep on any hardware.  The measured knee is then the
interpolated fleet size whose mean busy time crosses the budget, and
the planner's prediction (``model.max_nodes(budget)``) is validated
against it by the acceptance bench (±20%).

Used by ``repro-cli obs capacity`` (live mode) and
``benchmarks/bench_saturation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import Scheduler
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import build_base_system
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.fleet import Fleet
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.obs.capacity import CapacityModel, TickRecord, fit_capacity
from repro.tpm.device import TpmManufacturer

DEFAULT_SIZES = (4, 8, 16, 28)


@dataclass(frozen=True)
class SaturationPoint:
    """Aggregated tick accounting for one sweep size."""

    nodes: int
    ticks: int
    busy_mean_seconds: float
    busy_max_seconds: float
    wall_mean_seconds: float
    delay_mean_seconds: float
    utilization: float | None = None
    overruns: int = 0


@dataclass
class SaturationSweep:
    """The full sweep result: points, fitted model, knee, prediction."""

    sizes: tuple[int, ...]
    ticks_per_size: int
    budget: float
    budget_calibrated: bool
    points: list[SaturationPoint]
    model: CapacityModel
    knee_nodes: float | None
    predicted_max_nodes: float
    records: list[TickRecord] = field(default_factory=list)

    @property
    def prediction_error(self) -> float | None:
        """|predicted - measured| / measured, ``None`` without a knee."""
        if self.knee_nodes is None or self.knee_nodes <= 0:
            return None
        return abs(self.predicted_max_nodes - self.knee_nodes) / self.knee_nodes


def build_probe_fleet(
    size: int,
    seed: str = "saturation",
    n_filler_packages: int = 12,
    tick_budget: float | None = None,
) -> tuple[Fleet, Scheduler]:
    """One bench-scale fleet for tick-cost probing."""
    rng = SeededRng(f"{seed}-{size}")
    scheduler = Scheduler()
    archive = UbuntuArchive()
    base = build_base_system(
        rng.fork("base"), n_filler_packages=n_filler_packages, mean_exec_files=5
    )
    archive.seed(base)
    mirror = LocalMirror(archive)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(
        list(IBM_STYLE_EXCLUDES), {"5.15.0-91-generic"}
    )
    manufacturer = TpmManufacturer("Probe", rng.fork("tpm"))
    fleet = Fleet(
        size, mirror, manufacturer, scheduler, rng.fork("fleet"), policy,
        tick_budget=tick_budget,
    )
    return fleet, scheduler


def probe_tick_cost(
    size: int,
    ticks: int = 6,
    seed: str = "saturation",
    n_filler_packages: int = 12,
    poll_interval: float = 1800.0,
    tick_budget: float | None = None,
    warmup_ticks: int = 1,
) -> list[TickRecord]:
    """Measured tick records for one fleet size (warmup discarded).

    Accounting runs on the fleet's own
    :class:`~repro.obs.capacity.TickBudgetAccountant`; with a
    *tick_budget* the overrun/saturation machinery is live, without one
    the probe just measures cost.
    """
    fleet, scheduler = build_probe_fleet(
        size, seed=seed, n_filler_packages=n_filler_packages,
        tick_budget=tick_budget,
    )
    accountant = fleet.poll_scheduler.accounting
    accountant.configure(interval=poll_interval, budget=tick_budget)
    for _ in range(warmup_ticks):
        scheduler.clock.advance_by(poll_interval)
        fleet.poll_all()
    accountant.records.clear()
    for _ in range(ticks):
        scheduler.clock.advance_by(poll_interval)
        fleet.poll_all()
    return list(accountant.records)


def _point(size: int, records: list[TickRecord], budget: float | None) -> SaturationPoint:
    busy = [record.busy_seconds for record in records]
    mean = sum(busy) / len(busy)
    return SaturationPoint(
        nodes=size,
        ticks=len(records),
        busy_mean_seconds=mean,
        busy_max_seconds=max(busy),
        wall_mean_seconds=sum(r.wall_seconds for r in records) / len(records),
        delay_mean_seconds=sum(r.delay_seconds for r in records) / len(records),
        utilization=mean / budget if budget else None,
        overruns=sum(1 for value in busy if budget is not None and value > budget),
    )


def _interpolate_knee(
    points: list[SaturationPoint], budget: float
) -> float | None:
    """Fleet size where measured mean busy crosses the budget.

    Linear interpolation between the bracketing sweep sizes; ``None``
    when even the largest size stays under budget (the sweep never
    saturated) or the smallest is already over it with nothing below.
    """
    ordered = sorted(points, key=lambda point: point.nodes)
    previous = None
    for point in ordered:
        if point.busy_mean_seconds > budget:
            if previous is None:
                return None
            rise = point.busy_mean_seconds - previous.busy_mean_seconds
            if rise <= 0:
                return float(point.nodes)
            fraction = (budget - previous.busy_mean_seconds) / rise
            return previous.nodes + fraction * (point.nodes - previous.nodes)
        previous = point
    return None


def run_saturation_sweep(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    ticks: int = 6,
    budget: float | None = None,
    seed: str = "saturation",
    n_filler_packages: int = 12,
    poll_interval: float = 1800.0,
    warmup_ticks: int = 1,
) -> SaturationSweep:
    """Sweep *sizes*, fit the cost model and locate the knee."""
    sizes = tuple(sorted(set(int(size) for size in sizes)))
    if len(sizes) < 2:
        raise ValueError("a saturation sweep needs at least two fleet sizes")
    per_size: dict[int, list[TickRecord]] = {}
    for size in sizes:
        per_size[size] = probe_tick_cost(
            size, ticks=ticks, seed=seed,
            n_filler_packages=n_filler_packages,
            poll_interval=poll_interval, warmup_ticks=warmup_ticks,
        )
    all_records = [record for records in per_size.values() for record in records]
    model = fit_capacity(
        (record.polled, record.busy_seconds) for record in all_records
    )
    calibrated = budget is None
    if budget is None:
        # Aim the knee at the sweep midpoint so it is measurable on any
        # hardware: budget = projected busy cost at the midpoint size.
        midpoint = (sizes[0] + sizes[-1]) / 2.0
        budget = model.tick_cost(midpoint)
    points = [
        _point(size, records, budget) for size, records in per_size.items()
    ]
    return SaturationSweep(
        sizes=sizes,
        ticks_per_size=ticks,
        budget=budget,
        budget_calibrated=calibrated,
        points=points,
        model=model,
        knee_nodes=_interpolate_knee(points, budget),
        predicted_max_nodes=model.max_nodes(budget),
        records=all_records,
    )


def render_sweep(sweep: SaturationSweep) -> str:
    """Console table + knee summary for one sweep."""
    lines = [
        (
            f"== saturation sweep (sizes={list(sweep.sizes)}, "
            f"{sweep.ticks_per_size} ticks/size, "
            f"budget={sweep.budget * 1000:.3f}ms"
            f"{' calibrated' if sweep.budget_calibrated else ''}) =="
        ),
        "  nodes  busy_mean   busy_max   util    overruns",
    ]
    for point in sorted(sweep.points, key=lambda p: p.nodes):
        util = (
            f"{point.utilization:6.1%}" if point.utilization is not None
            else "    --"
        )
        lines.append(
            f"  {point.nodes:5d}  {point.busy_mean_seconds * 1000:8.3f}ms"
            f"  {point.busy_max_seconds * 1000:8.3f}ms  {util}"
            f"  {point.overruns:4d}/{point.ticks}"
        )
    knee = (
        f"{sweep.knee_nodes:.1f} nodes" if sweep.knee_nodes is not None
        else "not reached in sweep"
    )
    lines.append(f"  measured knee: {knee}")
    lines.append(
        f"  planner prediction: {sweep.predicted_max_nodes:.1f} nodes "
        f"(fit r2={sweep.model.r_squared:.3f})"
    )
    error = sweep.prediction_error
    if error is not None:
        lines.append(f"  prediction error vs measured knee: {error:.1%}")
    return "\n".join(lines)
