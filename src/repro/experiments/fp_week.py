"""E1: the false-positive week (Section III-A/B).

One week of *benign operation only* against the study's static initial
policy: the machine updates itself daily through unattended upgrades
pointed at the official archive, users navigate and run things, and a
SNAP application is in daily use.  Every attestation failure is, by
construction, a false positive; the experiment classifies each by root
cause:

* ``update_hash_mismatch`` -- an updated executable's new hash
  conflicts with the stale policy entry;
* ``update_new_file`` -- an update shipped a file the policy has never
  seen;
* ``snap_truncation`` -- a confined SNAP execution measured under its
  truncated path, which the policy only knows in full form.

The stock verifier would halt at the first failure (P2); like the
authors -- who restarted attestation to keep observing -- the harness
runs the verifier in continue-on-failure mode *as a measurement
instrument*, so the full week's failures can be catalogued.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import days, hours
from repro.distro.snap import install_snap
from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed
from repro.keylime.policy import EntryVerdict, build_policy_from_machine
from repro.keylime.verifier import AttestationFailure, FailureKind


@dataclass(frozen=True)
class FpRecord:
    """One distinct false positive."""

    time: float
    cause: str
    path: str
    digest: str


@dataclass
class FpWeekResult:
    """Outcome of the FP week."""

    n_days: int
    total_polls: int
    failed_polls: int
    records: list[FpRecord] = field(default_factory=list)

    @property
    def counts_by_cause(self) -> dict[str, int]:
        """Distinct FPs per root cause."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.cause] = counts.get(record.cause, 0) + 1
        return counts

    @property
    def total_false_positives(self) -> int:
        """All distinct false positives over the week."""
        return len(self.records)


def _classify(failure: AttestationFailure, testbed: Testbed) -> FpRecord:
    policy_failure = failure.policy_failure
    assert policy_failure is not None
    if policy_failure.verdict is EntryVerdict.HASH_MISMATCH:
        cause = "update_hash_mismatch"
    else:
        cause = "update_new_file"
        # A truncated SNAP path: the policy knows the same suffix under
        # a /snap/<name>/<revision>/ prefix.
        suffix = policy_failure.path
        for known in testbed.verifier.policy_of(testbed.agent_id).digests:
            if known.startswith("/snap/") and known.endswith(suffix):
                cause = "snap_truncation"
                break
    return FpRecord(
        time=failure.time, cause=cause,
        path=policy_failure.path, digest=policy_failure.measured_digest,
    )


def run_fp_week(
    seed: int | str = 0,
    n_days: int = 7,
    with_snap: bool = True,
    config: TestbedConfig | None = None,
) -> FpWeekResult:
    """Run the FP week and classify every alert."""
    if config is None:
        config = TestbedConfig(
            seed=seed,
            policy_mode="static",
            continue_on_failure=True,  # measurement instrument, see module doc
        )
    testbed = build_testbed(config)
    machine = testbed.machine

    snap = None
    if with_snap:
        snap = install_snap(
            machine, "core20", 1974,
            ["usr/bin/chromium", "usr/bin/snapctl"],
        )
        # The policy is rebuilt after the SNAP lands so its *full* paths
        # are in-policy, exactly as the study's scan captured them.
        policy = build_policy_from_machine(machine)
        testbed.tenant.push_policy(testbed.agent_id, policy)
        testbed.workload.register_snap(snap)

    # Unattended upgrades: daily, from the *official* archive.  New
    # packages are pulled in too (dependency pulls, new kernels) --
    # the source of the paper's "missing file in the policy" errors.
    def unattended_upgrade() -> None:
        testbed.archive.apply_releases_until(testbed.scheduler.clock.now)
        report = testbed.apt.upgrade_from(
            testbed.archive.latest_index(), source="official", install_new=True
        )
        if not report.is_empty:
            testbed.workload.exec_updated_files(report)

    for day in range(1, n_days + 1):
        testbed.stream.generate_day(day)
        testbed.scheduler.call_at(
            days(day) + hours(6.5), unattended_upgrade, label=f"unattended-day{day}"
        )

    testbed.verifier.start_polling(testbed.agent_id, config.poll_interval_seconds)
    testbed.scheduler.every(
        days(1), lambda: testbed.workload.daily(10), start=hours(12), label="benign"
    )
    testbed.scheduler.run_until(days(n_days + 1))

    results = testbed.verifier.results_of(testbed.agent_id)
    seen: set[tuple[str, str]] = set()
    records: list[FpRecord] = []
    for failure in testbed.verifier.failures_of(testbed.agent_id):
        if failure.kind is not FailureKind.POLICY or failure.policy_failure is None:
            continue
        key = (failure.policy_failure.path, failure.policy_failure.measured_digest)
        if key in seen:
            continue
        seen.add(key)
        records.append(_classify(failure, testbed))

    return FpWeekResult(
        n_days=n_days,
        total_polls=len(results),
        failed_polls=sum(1 for result in results if not result.ok),
        records=records,
    )
