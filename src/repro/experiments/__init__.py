"""Experiment harnesses reproducing the paper's evaluation.

Each module maps to rows of the per-experiment index in DESIGN.md:

* :mod:`repro.experiments.testbed` -- the standard rig (archive, mirror,
  machine, Keylime stack, generator, orchestrator) every experiment
  builds on.
* :mod:`repro.experiments.fp_week` -- E1: a week of benign operation
  against the static policy; classifies the false-positive causes
  (Section III-B).
* :mod:`repro.experiments.longrun` -- E2-E6: the 31-day daily-update and
  35-day weekly-update runs with dynamic policy generation (Figs 3-5,
  Table I, the zero-FP validation, and the 2024-03-27 incident).
* :mod:`repro.experiments.fn_matrix` -- E7: the 8-attack x
  {basic, adaptive} x {stock, mitigated} detection matrix (Table II).
* :mod:`repro.experiments.problems` -- E8: one focused demonstration
  per problem P1-P5.
"""

from repro.experiments.fn_matrix import AttackTrial, FnMatrixResult, run_attack_matrix
from repro.experiments.fp_week import FpWeekResult, run_fp_week
from repro.experiments.longrun import LongRunResult, run_longrun, table1_rows
from repro.experiments.problems import ProblemDemo, run_all_demos
from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed

__all__ = [
    "AttackTrial",
    "FnMatrixResult",
    "FpWeekResult",
    "LongRunResult",
    "ProblemDemo",
    "Testbed",
    "TestbedConfig",
    "build_testbed",
    "run_all_demos",
    "run_attack_matrix",
    "run_fp_week",
    "run_longrun",
    "table1_rows",
]
