"""A continuous fleet workload for telemetry and scale experiments.

The paper's setting is one verifier attesting a *fleet*; the other
experiments exercise the single-node rig.  This scenario provisions an
N-node :class:`repro.keylime.fleet.Fleet`, keeps continuous polling
running, and drives a daily release stream through fleet-wide update
cycles (mirror sync -> shared policy delta -> per-node apt upgrade) --
the workload behind ``repro-cli obs fleet`` and the fleet benches.

It deliberately touches every instrumented hot path: verifier polls,
agent attestations, TPM quote generation/verification, IMA measurement
decisions on every node, mirror syncs, and generator runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import Scheduler, days, hours
from repro.common.events import EventLog
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import (
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
)
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.fleet import Fleet, FleetUpdateReport
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.tpm.device import TpmManufacturer

DEFAULT_KERNEL = "5.15.0-91-generic"


@dataclass
class FleetScenarioResult:
    """Outcome of one fleet scenario run."""

    fleet: Fleet
    n_days: int
    update_reports: list[FleetUpdateReport] = field(default_factory=list)

    @property
    def total_polls(self) -> int:
        """Attestation rounds across every node."""
        return sum(
            len(self.fleet.verifier.results_of(node.agent.agent_id))
            for node in self.fleet.nodes
        )

    @property
    def status(self) -> dict[str, str]:
        """node name -> verifier state at the end of the run."""
        return self.fleet.status()


def run_fleet_scenario(
    seed: int | str = "fleet",
    n_nodes: int = 3,
    n_days: int = 2,
    n_filler_packages: int = 20,
    poll_interval: float = 1800.0,
    sync_hour: float = 5.0,
) -> FleetScenarioResult:
    """Provision a fleet and run *n_days* of polling plus daily updates."""
    rng = SeededRng(seed)
    scheduler = Scheduler()
    events = EventLog()

    archive = UbuntuArchive()
    base = build_base_system(
        rng.fork("base"),
        n_filler_packages=n_filler_packages,
        mean_exec_files=6.0,
        kernel_version=DEFAULT_KERNEL,
    )
    archive.seed(base)
    stream = SyntheticReleaseStream(
        archive, base, rng.fork("stream"),
        ReleaseStreamConfig(
            mean_packages_per_day=4.0,
            sd_packages_per_day=2.0,
            mean_exec_files_per_package=6.0,
            kernel_release_every_days=0,
        ),
    )

    mirror = LocalMirror(archive, events=events)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, events=events, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(list(IBM_STYLE_EXCLUDES), {DEFAULT_KERNEL})

    manufacturer = TpmManufacturer("Infineon", rng.fork("tpm"))
    fleet = Fleet(
        n_nodes, mirror, manufacturer, scheduler, rng.fork("fleet"), policy,
        events=events, kernel_version=DEFAULT_KERNEL,
    )
    result = FleetScenarioResult(fleet=fleet, n_days=n_days)

    fleet.start_polling(poll_interval)
    for day in range(1, n_days + 1):
        # Day (d-1)'s releases are what the 05:00 sync on day d picks up,
        # mirroring the paper's daily-sync timeline.
        stream.generate_day(day - 1)
        scheduler.call_at(
            days(day) + hours(sync_hour),
            lambda: result.update_reports.append(fleet.run_update_cycle()),
            label=f"fleet-update-day{day}",
        )
    scheduler.run_until(days(n_days + 1))
    return result
