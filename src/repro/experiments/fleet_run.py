"""A continuous fleet workload for telemetry and scale experiments.

The paper's setting is one verifier attesting a *fleet*; the other
experiments exercise the single-node rig.  This scenario provisions an
N-node :class:`repro.keylime.fleet.Fleet`, keeps continuous polling
running, and drives a daily release stream through fleet-wide update
cycles (mirror sync -> shared policy delta -> per-node apt upgrade) --
the workload behind ``repro-cli obs fleet`` and the fleet benches.

It deliberately touches every instrumented hot path: verifier polls,
agent attestations, TPM quote generation/verification, IMA measurement
decisions on every node, mirror syncs, and generator runs.

The optional :class:`P2Injection` reproduces the paper's worst
observability failure *at fleet scale*: an adaptive attacker trips a
self-induced false positive on one node, the stock verifier halts
polling it, and the real attack lands inside the resulting coverage
gap.  With a :class:`repro.obs.health.HealthWatch` attached, the gap
detector alarms on the silence and the incident correlator assembles
the forensic timeline -- the layer the paper's P2 discussion calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import Scheduler, days, hours
from repro.common.events import EventLog
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import (
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
)
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.faults import FaultPlan, chaos_profile
from repro.keylime.fleet import Fleet, FleetUpdateReport
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.keylime.retrypolicy import RetryPolicy
from repro.tpm.device import TpmManufacturer

DEFAULT_KERNEL = "5.15.0-91-generic"


@dataclass(frozen=True)
class ChaosInjection:
    """Seeded fault injection for a fleet run.

    *profile* names a :data:`repro.keylime.faults.CHAOS_PROFILES` entry
    (``drops``, ``flaky``, ``partition``, ``transient-mixed``,
    ``corruption``, ``replay``, ``mixed``, ...); *chaos_seed* seeds the
    fault plan's RNG independently of the scenario seed, so the same
    workload can be replayed under different weather (or the same
    weather over different workloads).  ``node_indices`` restricts the
    faults to those nodes (None = whole fleet); ``start``/``end`` bound
    the injection window in simulated seconds.

    The retry/degraded-mode knobs ride along because chaos without a
    retry policy would degrade every faulted round on its first drop.
    """

    profile: str = "flaky"
    chaos_seed: int | str = "chaos"
    node_indices: tuple[int, ...] | None = None
    start: float = 0.0
    end: float = float("inf")
    max_attempts: int = 4
    quarantine_after: int = 3

    def build_plan(self, node_ids: list[str]) -> FaultPlan:
        """Materialise the profile into a plan over *node_ids*."""
        nodes = None
        if self.node_indices is not None:
            nodes = tuple(node_ids[index] for index in self.node_indices)
        return chaos_profile(
            self.profile,
            SeededRng(self.chaos_seed),
            nodes=nodes,
            start=self.start,
            end=self.end,
        )

    def build_retry_policy(self) -> RetryPolicy:
        """The retry policy paired with this injection."""
        return RetryPolicy(max_attempts=self.max_attempts)


@dataclass(frozen=True)
class P2Injection:
    """The adaptive self-induced-FP attack, on a schedule.

    At *fp_time* the attacker drops and runs a benign unknown binary on
    node *node_index* (a NOT_IN_POLICY false positive: the verifier
    marks the node failed and stops polling it).  *attack_delay*
    seconds later -- inside the coverage gap -- the real backdoor is
    installed and executed, where a halted verifier never sees it.
    """

    fp_time: float = days(1) + hours(6.5)
    attack_delay: float = hours(6)
    node_index: int = 0
    decoy_name: str = "decoy-helper"
    attack_path: str = "/usr/bin/backdoor"

    @property
    def attack_time(self) -> float:
        """When the real attack lands."""
        return self.fp_time + self.attack_delay


@dataclass
class FleetScenarioResult:
    """Outcome of one fleet scenario run."""

    fleet: Fleet
    n_days: int
    update_reports: list[FleetUpdateReport] = field(default_factory=list)
    p2: P2Injection | None = None
    p2_decoy_path: str | None = None
    p2_node: str | None = None
    chaos: ChaosInjection | None = None
    fault_plan: FaultPlan | None = None

    @property
    def total_polls(self) -> int:
        """Attestation rounds across every node."""
        return sum(
            len(self.fleet.verifier.results_of(node.agent.agent_id))
            for node in self.fleet.nodes
        )

    @property
    def status(self) -> dict[str, str]:
        """node name -> verifier state at the end of the run."""
        return self.fleet.status()


def run_fleet_scenario(
    seed: int | str = "fleet",
    n_nodes: int = 3,
    n_days: int = 2,
    n_filler_packages: int = 20,
    poll_interval: float = 1800.0,
    sync_hour: float = 5.0,
    p2: P2Injection | None = None,
    watch=None,
    wire_transport: bool = True,
    chaos: ChaosInjection | None = None,
    push_mode: bool = False,
) -> FleetScenarioResult:
    """Provision a fleet and run *n_days* of polling plus daily updates.

    *p2* injects the adaptive self-induced-FP attack (see
    :class:`P2Injection`); *watch* is an optional
    :class:`repro.obs.health.HealthWatch` attached to the fleet before
    the run starts, so its detectors observe the whole timeline.
    *wire_transport* routes every verifier/agent round through the JSON
    wire formats (traceparent propagation included); see
    :class:`repro.keylime.fleet.Fleet`.  *chaos* installs a seeded
    fault plan on every node's wire plus the paired retry policy and
    quarantine budget (see :class:`ChaosInjection`); the run stays
    deterministic per (seed, chaos) pair.  *push_mode* inverts the
    attestation direction: agents drive their own push exchanges on
    their own timers and the verifier's tick only reaps expired
    sessions -- verdict-for-verdict equivalent to pull mode on the same
    seed.
    """
    rng = SeededRng(seed)
    scheduler = Scheduler()
    events = EventLog()

    archive = UbuntuArchive()
    base = build_base_system(
        rng.fork("base"),
        n_filler_packages=n_filler_packages,
        mean_exec_files=6.0,
        kernel_version=DEFAULT_KERNEL,
    )
    archive.seed(base)
    stream = SyntheticReleaseStream(
        archive, base, rng.fork("stream"),
        ReleaseStreamConfig(
            mean_packages_per_day=4.0,
            sd_packages_per_day=2.0,
            mean_exec_files_per_package=6.0,
            kernel_release_every_days=0,
        ),
    )

    mirror = LocalMirror(archive, events=events)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, events=events, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(list(IBM_STYLE_EXCLUDES), {DEFAULT_KERNEL})

    manufacturer = TpmManufacturer("Infineon", rng.fork("tpm"))
    fault_plan = None
    retry_policy = None
    quarantine_after = 3
    if chaos is not None:
        # Node ids are deterministic (f"agent-node-{i:03d}"), so the
        # plan can be scoped to node indices before the fleet exists.
        node_ids = [f"agent-node-{index:03d}" for index in range(n_nodes)]
        fault_plan = chaos.build_plan(node_ids)
        retry_policy = chaos.build_retry_policy()
        quarantine_after = chaos.quarantine_after
    fleet = Fleet(
        n_nodes, mirror, manufacturer, scheduler, rng.fork("fleet"), policy,
        events=events, kernel_version=DEFAULT_KERNEL,
        wire_transport=wire_transport,
        fault_plan=fault_plan, retry_policy=retry_policy,
        quarantine_after=quarantine_after,
        push_mode=push_mode,
    )
    result = FleetScenarioResult(
        fleet=fleet, n_days=n_days, p2=p2, chaos=chaos, fault_plan=fault_plan
    )

    fleet.start_polling(poll_interval)
    if watch is not None:
        fleet.watch_health(watch, poll_interval)

    if p2 is not None:
        from repro.attacks.problems import p2_blind_verifier

        victim = fleet.nodes[p2.node_index]
        result.p2_node = victim.agent.agent_id

        def trip_false_positive() -> None:
            result.p2_decoy_path = p2_blind_verifier(
                victim.machine, decoy_name=p2.decoy_name
            )
            events.emit(
                scheduler.clock.now, "attack.p2", "attack.decoy_executed",
                agent=victim.agent.agent_id, path=result.p2_decoy_path,
            )

        def land_real_attack() -> None:
            victim.machine.install_file(
                p2.attack_path, b"backdoor payload", executable=True
            )
            victim.machine.exec_file(p2.attack_path)
            events.emit(
                scheduler.clock.now, "attack.p2", "attack.backdoor_executed",
                agent=victim.agent.agent_id, path=p2.attack_path,
            )

        scheduler.call_at(p2.fp_time, trip_false_positive, label="p2-decoy")
        scheduler.call_at(p2.attack_time, land_real_attack, label="p2-backdoor")

    for day in range(1, n_days + 1):
        # Day (d-1)'s releases are what the 05:00 sync on day d picks up,
        # mirroring the paper's daily-sync timeline.
        stream.generate_day(day - 1)
        scheduler.call_at(
            days(day) + hours(sync_hour),
            lambda: result.update_reports.append(fleet.run_update_cycle()),
            label=f"fleet-update-day{day}",
        )
    scheduler.run_until(days(n_days + 1))
    if watch is not None:
        watch.finalize(scheduler.clock.now)
    return result
