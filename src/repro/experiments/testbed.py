"""The standard experiment rig.

Every experiment needs the same cast: an upstream archive seeded with a
base system, a prover machine booted with IMA and a manufactured TPM, a
local mirror, the Keylime stack (agent, registrar, verifier, tenant),
the dynamic policy generator, a benign workload, and the update
orchestrator.  :func:`build_testbed` assembles it all from a single
seed and a config, so experiments differ only in what they *do* with
the rig.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import Scheduler
from repro.common.events import EventLog
from repro.common.rng import SeededRng
from repro.distro.apt import AptInstaller
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import (
    BenignWorkload,
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
)
from repro.dynpolicy.costmodel import CostModelConfig, GeneratorCostModel
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.dynpolicy.orchestrator import UpdateOrchestrator
from repro.kernelsim.ima import ImaPolicy
from repro.kernelsim.kernel import Machine
from repro.keylime.agent import KeylimeAgent
from repro.keylime.audit import AuditLog
from repro.keylime.policy import (
    IBM_STYLE_EXCLUDES,
    RuntimePolicy,
    build_policy_from_machine,
)
from repro.keylime.registrar import KeylimeRegistrar
from repro.keylime.tenant import KeylimeTenant
from repro.keylime.verifier import KeylimeVerifier
from repro.obs import runtime as obs
from repro.tpm.device import TpmManufacturer


@dataclass
class TestbedConfig:
    """Knobs for :func:`build_testbed`.

    ``scale`` multiplies the base-system size; 1.0 is the fast default
    used by tests, the long-run benches raise it.  ``policy_mode``
    selects the study's *static* scan-the-disk policy ("static") or the
    paper's dynamic mirror-derived policy ("dynamic").
    """

    __test__ = False  # not a pytest test class despite the name

    seed: int | str = 0
    n_filler_packages: int = 60
    mean_exec_files: float = 10.0
    kernel_version: str = "5.15.0-91-generic"
    stream: ReleaseStreamConfig = field(default_factory=ReleaseStreamConfig)
    cost_model: CostModelConfig = field(default_factory=CostModelConfig)
    policy_mode: str = "dynamic"  # "dynamic" | "static"
    continue_on_failure: bool = False
    ima_policy: ImaPolicy | None = None
    poll_interval_seconds: float = 1800.0
    sync_hour: float = 5.0
    start_polling: bool = False


@dataclass
class Testbed:
    """Everything an experiment needs, wired together."""

    __test__ = False  # not a pytest test class despite the name

    config: TestbedConfig
    rng: SeededRng
    scheduler: Scheduler
    events: EventLog
    archive: UbuntuArchive
    stream: SyntheticReleaseStream
    machine: Machine
    apt: AptInstaller
    mirror: LocalMirror
    generator: DynamicPolicyGenerator
    policy: RuntimePolicy
    agent: KeylimeAgent
    registrar: KeylimeRegistrar
    verifier: KeylimeVerifier
    audit: AuditLog
    tenant: KeylimeTenant
    workload: BenignWorkload
    orchestrator: UpdateOrchestrator

    @property
    def agent_id(self) -> str:
        """Convenience accessor for the single agent's id."""
        return self.agent.agent_id

    def poll(self):
        """One verifier round against the agent."""
        return self.verifier.poll(self.agent_id)

    def push_round(self):
        """One agent-initiated push round (negotiate -> submit -> verdict)."""
        return self.verifier.push_round(self.agent_id)

    def new_policy_failures(self, since: float):
        """Policy failures recorded at or after *since*."""
        return [
            failure for failure in self.verifier.failures_of(self.agent_id)
            if failure.time >= since and failure.policy_failure is not None
        ]


def build_testbed(config: TestbedConfig | None = None) -> Testbed:
    """Assemble the standard rig from a config."""
    config = config if config is not None else TestbedConfig()
    rng = SeededRng(config.seed)
    scheduler = Scheduler()
    events = EventLog()
    # Spans carry simulated timestamps when telemetry is active.
    obs.get().bind_clock(scheduler.clock)

    # Upstream world.
    archive = UbuntuArchive()
    base = build_base_system(
        rng.fork("base"),
        n_filler_packages=config.n_filler_packages,
        mean_exec_files=config.mean_exec_files,
        kernel_version=config.kernel_version,
    )
    archive.seed(base)
    stream = SyntheticReleaseStream(archive, base, rng.fork("stream"), config.stream)

    # The prover.
    manufacturer = TpmManufacturer("Infineon", rng.fork("tpm"))
    machine = Machine(
        "prover",
        manufacturer.manufacture(),
        clock=scheduler.clock,
        events=events,
        ima_policy=config.ima_policy,
        kernel_version=config.kernel_version,
    )
    machine.boot()
    apt = AptInstaller(machine, events=events)

    # Mirror and baseline install (machine state == mirror state at t0).
    mirror = LocalMirror(archive, events=events)
    mirror.sync(0.0)
    apt.upgrade_from(mirror.index(), install_new=True)

    # Policy.
    cost_model = GeneratorCostModel(config.cost_model, rng=rng.fork("cost"))
    generator = DynamicPolicyGenerator(
        mirror, cost_model=cost_model, events=events, rng=rng.fork("gen")
    )
    if config.policy_mode == "dynamic":
        policy, _ = generator.generate_full(
            list(IBM_STYLE_EXCLUDES), {machine.current_kernel}
        )
    elif config.policy_mode == "static":
        policy = build_policy_from_machine(machine)
    else:
        raise ValueError(f"unknown policy_mode: {config.policy_mode!r}")

    # Keylime stack.
    agent = KeylimeAgent("agent-prover", machine)
    registrar = KeylimeRegistrar([manufacturer.root_certificate], events=events)
    # Poll outcomes are routed into a hash-chained audit trail, so the
    # incident correlator can cite chain indices for any window.
    audit = AuditLog()
    verifier = KeylimeVerifier(
        registrar, scheduler, rng.fork("verifier"), events=events,
        continue_on_failure=config.continue_on_failure, audit=audit,
    )
    tenant = KeylimeTenant(registrar, verifier)
    tenant.onboard(
        agent, policy,
        poll_interval=config.poll_interval_seconds,
        start_polling=config.start_polling,
    )

    workload = BenignWorkload(machine, rng.fork("workload"))
    orchestrator = UpdateOrchestrator(
        machine, apt, mirror, generator, tenant, agent.agent_id, policy,
        scheduler, workload=workload, events=events, sync_hour=config.sync_hour,
    )

    return Testbed(
        config=config, rng=rng, scheduler=scheduler, events=events,
        archive=archive, stream=stream, machine=machine, apt=apt,
        mirror=mirror, generator=generator, policy=policy, agent=agent,
        registrar=registrar, verifier=verifier, audit=audit, tenant=tenant,
        workload=workload, orchestrator=orchestrator,
    )
