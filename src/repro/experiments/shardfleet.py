"""A sharded multi-verifier fleet under the federation observatory.

This scenario is the ROADMAP's sharded fleet made real: one provisioned
:class:`~repro.keylime.fleet.Fleet` split across N verifier members by
the registrar's consistent-hash ring
(:class:`~repro.keylime.sharding.ConsistentHashRing`), driven round by
round through :class:`~repro.keylime.fleet.VerifierFleet`.  Unlike
:mod:`repro.experiments.observatory` -- which simulated shards as N
*independent* fleets -- every member here attests a key range of the
*same* fleet, so failover and rebalancing are observable as state
handoffs, not as disjoint worlds.

Federation works the way a real per-process deployment would: after
each round, every member serialises its slice of the process registry
(the shard-labelled families it currently hosts) through the JSON wire
pair into one :class:`~repro.obs.federation.FederationHub`; families
with no shard label ship under the synthetic ``fleet`` source.  The
hub's recording rules then produce ``fleet:shard_balance``, and the
``obs top`` shard panel renders straight from the hub's store.

Chaos hooks:

* ``kill`` -- mark a member dead at a given round boundary; the next
  tick's heartbeat probe adopts its shards (PR-5 style fault, aimed at
  the verifier instead of the agent).
* ``outages`` -- scheduled :class:`~repro.keylime.faults.VerifierOutage`
  partition windows, consulted by the same probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.events import EventLog
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import build_base_system
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.faults import VerifierOutage
from repro.keylime.fleet import Fleet, VerifierFleet
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.obs import runtime as obs_runtime
from repro.obs.federation import (
    FederationHub,
    registry_snapshot,
    snapshot_to_json,
)
from repro.obs.health import HealthWatch
from repro.tpm.device import TpmManufacturer

#: Kernel pinned by the deterministic state-fleet rig (no release
#: stream, so provisioning is a pure function of the seed).
SHARD_RIG_KERNEL = "5.15.0-91-generic"

#: Source name carrying families that belong to no single member.
FLEET_SOURCE = "fleet"


def build_shard_rig(
    seed: str, n_nodes: int, fillers: int = 2, push_mode: bool = False
) -> Fleet:
    """A deterministic fleet rig for sharding experiments and tests.

    Same contract as the CLI's ``state save``/``state load`` rig:
    provisioning is a pure function of ``(seed, n_nodes, fillers)``
    with no release stream, so two builds from one seed are
    bit-identical -- the property every failover-equivalence assertion
    in the test suite leans on.
    """
    from repro.common.clock import Scheduler

    rng = SeededRng(seed)
    scheduler = Scheduler()
    events = EventLog()
    archive = UbuntuArchive()
    base = build_base_system(
        rng.fork("base"), n_filler_packages=fillers,
        mean_exec_files=6.0, kernel_version=SHARD_RIG_KERNEL,
    )
    archive.seed(base)
    mirror = LocalMirror(archive, events=events)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, events=events, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(
        list(IBM_STYLE_EXCLUDES), {SHARD_RIG_KERNEL}
    )
    manufacturer = TpmManufacturer("Infineon", rng.fork("tpm"))
    return Fleet(
        n_nodes, mirror, manufacturer, scheduler, rng.fork("fleet"), policy,
        events=events, kernel_version=SHARD_RIG_KERNEL, wire_transport=True,
        push_mode=push_mode,
    )


def build_shard_fleet(
    seed: str,
    n_nodes: int,
    n_verifiers: int,
    fillers: int = 2,
    push_mode: bool = False,
    outages: tuple[VerifierOutage, ...] | list[VerifierOutage] = (),
    checkpoint_every: int = 1,
) -> tuple[Fleet, VerifierFleet]:
    """One deterministic rig, sharded: ``(fleet, verifier_fleet)``."""
    fleet = build_shard_rig(seed, n_nodes, fillers, push_mode)
    vfleet = VerifierFleet(
        fleet, n_verifiers, SeededRng(seed).fork("shards"),
        outages=outages, checkpoint_every=checkpoint_every,
    )
    return fleet, vfleet


def member_snapshots(
    vfleet: VerifierFleet, registry, at: float
) -> list[dict[str, Any]]:
    """Slice one process registry into per-member federation snapshots.

    A real multi-verifier deployment runs one registry per process;
    this simulation shares one.  The split rule recovers the per-process
    view: a family carrying a ``shard`` label belongs to the member
    currently *hosting* that shard, everything else ships under the
    ``fleet`` source.  Every live member gets a snapshot even when its
    slice is empty -- a silent member should show up as *stale* on the
    hub, not vanish from it.
    """
    hosts = {
        shard_id: host.host for shard_id, host in vfleet.shards.items()
    }
    full = registry_snapshot(registry, FLEET_SOURCE, at)
    slices: dict[str, list[dict[str, Any]]] = {FLEET_SOURCE: []}
    for member in sorted(vfleet.live_members()):
        slices[member] = []
    for entry in full["metrics"]:
        shard = entry["labels"].get("shard")
        owner = hosts.get(shard) if shard is not None else None
        target = owner if owner in slices else FLEET_SOURCE
        slices[target].append(entry)
    snapshots = []
    for source, metrics in slices.items():
        snapshots.append({
            "type": full["type"],
            "source": source,
            "at": at,
            "metrics": metrics,
            "label_overflow": dict(full["label_overflow"])
            if source == FLEET_SOURCE else {},
        })
    return snapshots


@dataclass
class ShardFleetResult:
    """Outcome of one sharded-fleet run."""

    fleet: Fleet
    vfleet: VerifierFleet
    hub: FederationHub
    watch: HealthWatch
    rounds: int
    poll_interval: float
    #: shard ids that failed over, per round index.
    failovers: dict[int, list[str]] = field(default_factory=dict)

    @property
    def end_time(self) -> float:
        return self.rounds * self.poll_interval

    def gap_alerts(self) -> list[Any]:
        """Coverage-gap alerts the watch fired (empty = no blind spots)."""
        return [
            alert for alert in self.watch.engine.history
            if alert.rule == "health.coverage_gap"
        ]


def run_shard_fleet(
    seed: str = "shardfleet",
    n_nodes: int = 9,
    n_verifiers: int = 3,
    fillers: int = 2,
    rounds: int = 6,
    poll_interval: float = 1800.0,
    push_mode: bool = False,
    kill: dict[int, str] | None = None,
    outages: tuple[VerifierOutage, ...] | list[VerifierOutage] = (),
    checkpoint_every: int = 1,
    on_round: Callable[[int, "ShardFleetResult"], None] | None = None,
) -> ShardFleetResult:
    """Drive a sharded fleet for *rounds* ticks under federation.

    *kill* maps round index -> member to mark dead at that round's
    *boundary* (before the tick's probe), e.g. ``{2: "verifier-0"}``
    kills verifier-0 after two clean rounds; the third round already
    runs on the adopter.  Each round ships per-member snapshots through
    the JSON wire into the hub and evaluates its recording rules, so
    ``fleet:shard_balance`` and the shard panel stay current.
    """
    fleet, vfleet = build_shard_fleet(
        seed, n_nodes, n_verifiers, fillers, push_mode,
        outages=outages, checkpoint_every=checkpoint_every,
    )
    telemetry = obs_runtime.activate(clock=fleet.scheduler.clock)
    # Rollups recorded during construction went to the previous bundle;
    # refresh them into this run's registry.
    vfleet._record_rollups()
    hub = FederationHub(poll_interval=poll_interval)
    watch = HealthWatch(tick_interval=poll_interval)
    watch.attach(
        fleet.events,
        registry=telemetry.registry,
        tracer=telemetry.tracer,
        poll_interval=poll_interval,
        now=fleet.scheduler.clock.now,
    )
    for node in fleet.nodes:
        watch.watch_agent(
            node.agent.agent_id, poll_interval, now=fleet.scheduler.clock.now
        )

    result = ShardFleetResult(
        fleet=fleet, vfleet=vfleet, hub=hub, watch=watch,
        rounds=rounds, poll_interval=poll_interval,
    )
    kill = dict(kill or {})
    for round_index in range(rounds):
        member = kill.get(round_index)
        if member is not None:
            vfleet.kill(member)
        fleet.scheduler.clock.advance_by(poll_interval)
        now = fleet.scheduler.clock.now
        adopted = vfleet.probe()
        if adopted:
            result.failovers[round_index] = adopted
        vfleet.poll_all()
        for snapshot in member_snapshots(vfleet, telemetry.registry, now):
            hub.ingest_json(snapshot_to_json(snapshot))
        hub.evaluate(now)
        watch.tick(now)
        if on_round is not None:
            on_round(round_index, result)
    watch.finalize(fleet.scheduler.clock.now)
    return result
