"""Incident correlation tests, including the P2 acceptance scenario:
a self-induced false positive halts the verifier, the real attack
lands inside the coverage gap, and the watch produces a gap alert plus
an incident report citing events, spans and audit chain indices."""

import json

import pytest

from repro.common.events import EventLog
from repro.experiments.fleet_run import P2Injection, run_fleet_scenario
from repro.keylime.audit import AuditLog
from repro.obs import runtime as obs_runtime
from repro.obs.alerts import Alert
from repro.obs.health import HealthWatch
from repro.obs.incidents import (
    MAX_SECTION_RECORDS,
    IncidentCorrelator,
    IncidentReport,
    _verify_exported_chain,
    reports_from_export,
    split_export,
)

HOUR = 3600.0
POLL = 1800.0


def _alert(time: float, agent: str | None = "agent-a", rule: str = "health.coverage_gap"):
    return Alert(
        time=time, rule=rule, severity="critical", agent=agent,
        message="gap", detail={"gap_started": time - HOUR},
    )


class TestCorrelatorLive:
    def _sources(self) -> tuple[EventLog, AuditLog]:
        events = EventLog()
        audit = AuditLog()
        for tick in range(1, 9):
            now = tick * POLL
            ok = tick < 6
            kind = "attestation.ok" if ok else "attestation.failed.policy"
            events.emit(now, "keylime.verifier", kind, agent="agent-a")
            audit.append(now, "agent-a", ok, {"kind": "poll"})
        events.emit(2 * POLL, "keylime.verifier", "attestation.ok", agent="agent-b")
        events.emit(3 * POLL, "mirror", "mirror.synced", new=1)
        return events, audit

    def test_window_and_agent_filtering(self):
        events, audit = self._sources()
        correlator = IncidentCorrelator(events, audit=audit)
        report = correlator.build(_alert(6 * POLL), lookback=4 * POLL)
        assert report.window == (2 * POLL, 6 * POLL)
        times = [event["time"] for event in report.events]
        assert min(times) >= 2 * POLL and max(times) <= 6 * POLL
        # agent-b's record is excluded; the agent-less mirror sync stays.
        assert all(
            event["details"].get("agent") in (None, "agent-a")
            for event in report.events
        )
        assert any(event["kind"] == "mirror.synced" for event in report.events)

    def test_audit_chain_citation(self):
        events, audit = self._sources()
        correlator = IncidentCorrelator(events, audit=audit)
        report = correlator.build(_alert(6 * POLL), lookback=3 * POLL)
        chain = report.audit_chain
        assert chain["verified"] is True
        assert chain["head"] == audit.head_hash
        assert chain["records_in_window"] == len(report.audit_records) > 0
        indices = [record["index"] for record in report.audit_records]
        assert indices == list(range(chain["first_index"], chain["last_index"] + 1))

    def test_incident_ids_are_sequential(self):
        events, audit = self._sources()
        correlator = IncidentCorrelator(events, audit=audit)
        first = correlator.build(_alert(5 * POLL))
        second = correlator.build(_alert(6 * POLL))
        assert (first.incident_id, second.incident_id) == ("INC-0001", "INC-0002")

    def test_sections_are_truncated_with_counts(self):
        events = EventLog()
        for tick in range(MAX_SECTION_RECORDS + 50):
            events.emit(float(tick), "keylime.verifier", "attestation.ok",
                        agent="agent-a")
        correlator = IncidentCorrelator(events)
        report = correlator.build(
            _alert(float(MAX_SECTION_RECORDS + 50)), lookback=1e9
        )
        assert len(report.events) == MAX_SECTION_RECORDS
        assert report.truncated["events"] == 50
        # The newest records are the ones kept.
        assert report.events[-1]["time"] == MAX_SECTION_RECORDS + 49


class TestCriticalPathSection:
    def _correlated(self) -> IncidentReport:
        from repro.common.clock import SimClock
        from repro.obs.tracing import SpanTracer

        events, audit = TestCorrelatorLive()._sources()
        clock = SimClock()
        tracer = SpanTracer(clock=clock)
        clock.advance_by(5 * POLL)
        with tracer.span("verifier.poll", agent="agent-a"):
            with tracer.span("verifier.challenge"):
                with tracer.span("agent.attest"):
                    pass
            with tracer.span("verifier.log_replay"):
                pass
        correlator = IncidentCorrelator(events, tracer=tracer, audit=audit)
        return correlator.build(_alert(6 * POLL))

    def test_report_carries_the_poll_critical_path(self):
        report = self._correlated()
        names = [step["name"] for step in report.critical_path]
        assert names[0] == "verifier.poll"
        assert "agent.attest" in names or "verifier.challenge" in names
        for step in report.critical_path:
            assert step["wall_ms"] >= 0.0
            assert step["self_ms"] >= 0.0
            assert 0.0 <= step["share"] <= 1.0

    def test_critical_path_round_trips_and_renders(self):
        report = self._correlated()
        clone = IncidentReport.from_record(json.loads(report.to_json()))
        assert clone.critical_path == report.critical_path
        text = report.render_text()
        assert "-- critical path (last poll before the alert) --" in text
        assert "verifier.poll" in text

    def test_poll_nested_in_a_fleet_batch_is_found(self):
        """Fleet runs root their polls under fleet.poll_batch."""
        from repro.common.clock import SimClock
        from repro.obs.tracing import SpanTracer

        events, audit = TestCorrelatorLive()._sources()
        clock = SimClock()
        tracer = SpanTracer(clock=clock)
        clock.advance_by(5 * POLL)
        with tracer.span("fleet.poll_batch"):
            with tracer.span("verifier.poll", agent="agent-a"):
                with tracer.span("verifier.challenge"):
                    pass
        correlator = IncidentCorrelator(events, tracer=tracer, audit=audit)
        report = correlator.build(_alert(6 * POLL))
        assert [step["name"] for step in report.critical_path][0] == (
            "verifier.poll"
        )

    def test_no_polls_means_no_path(self):
        events, audit = TestCorrelatorLive()._sources()
        report = IncidentCorrelator(events, audit=audit).build(_alert(6 * POLL))
        assert report.critical_path == []
        assert "-- critical path" not in report.render_text()


class TestReportSerialisation:
    def _report(self) -> IncidentReport:
        events, audit = TestCorrelatorLive()._sources()
        return IncidentCorrelator(events, audit=audit).build(_alert(6 * POLL))

    def test_record_round_trip(self):
        report = self._report()
        clone = IncidentReport.from_record(json.loads(report.to_json()))
        assert clone.incident_id == report.incident_id
        assert clone.window == report.window
        assert clone.events == report.events
        assert clone.audit_chain == report.audit_chain

    def test_timeline_is_time_ordered(self):
        times = [entry[0] for entry in self._report().timeline()]
        assert times == sorted(times)

    def test_render_text_cites_the_evidence(self):
        text = self._report().render_text()
        assert "==== incident INC-0001 ====" in text
        assert "chain_verified=True" in text
        assert "[EVT" in text and "[AUDIT" in text
        assert "gap:" in text

    def test_render_without_timeline(self):
        text = self._report().render_text(include_timeline=False)
        assert "-- timeline --" not in text
        assert "timeline omitted" in text


class TestExportedChainVerification:
    def _exported(self) -> list[dict]:
        audit = AuditLog()
        for tick in range(4):
            audit.append(float(tick), "agent-a", True, {"kind": "poll"})
        return [
            {
                "index": record.index, "time": record.time,
                "agent": record.agent_id, "ok": record.ok,
                "detail": record.detail,
                "previous_hash": record.previous_hash,
                "record_hash": record.record_hash,
            }
            for record in audit.records()
        ]

    def test_intact_chain_verifies(self):
        assert _verify_exported_chain(self._exported()) is True

    def test_tampered_content_fails(self):
        records = self._exported()
        records[2]["ok"] = False
        assert _verify_exported_chain(records) is False

    def test_broken_link_fails(self):
        records = self._exported()
        records[2]["previous_hash"] = "0" * 64
        records[2]["record_hash"] = __import__(
            "repro.keylime.audit", fromlist=["AuditRecord"]
        ).AuditRecord.compute_hash(
            records[2]["index"], records[2]["time"], records[2]["agent"],
            records[2]["ok"], records[2]["detail"], records[2]["previous_hash"],
        )
        assert _verify_exported_chain(records) is False

    def test_empty_export_does_not_verify(self):
        assert _verify_exported_chain([]) is False


@pytest.fixture(scope="module")
def p2_run():
    """The acceptance scenario, run once for the whole module."""
    with obs_runtime.session():
        watch = HealthWatch(tick_interval=POLL)
        result = run_fleet_scenario(
            seed="p2-acceptance", n_nodes=2, n_days=2, n_filler_packages=5,
            p2=P2Injection(), watch=watch,
        )
    return result, watch


class TestP2AcceptanceScenario:
    def test_stock_verifier_halts_and_the_attack_lands(self, p2_run):
        result, _ = p2_run
        assert result.status[result.fleet.nodes[0].name] == "failed"
        assert result.status[result.fleet.nodes[1].name] == "attesting"
        assert result.p2_decoy_path is not None
        backdoors = result.fleet.events.by_kind("attack.backdoor_executed")
        assert len(backdoors) == 1
        assert backdoors[0].time == result.p2.attack_time

    def test_coverage_gap_alert_fires_during_the_gap(self, p2_run):
        result, watch = p2_run
        gap_alerts = [
            alert for alert in watch.engine.history
            if alert.rule == "health.coverage_gap"
        ]
        assert len(gap_alerts) == 1
        alert = gap_alerts[0]
        assert alert.agent == result.p2_node
        assert alert.detail["polling_halted_at"] == result.p2.fp_time
        # Detection beats the attacker: the alarm sounds before the
        # real backdoor lands in the gap.
        assert result.p2.fp_time < alert.time < result.p2.attack_time

    def test_incident_report_cites_all_three_evidence_sources(self, p2_run):
        result, watch = p2_run
        [incident] = [
            report for report in watch.incidents
            if report.alert["rule"] == "health.coverage_gap"
        ]
        assert incident.agent_id == result.p2_node
        kinds = {event["kind"] for event in incident.events}
        # The full P2 arc is in one timeline: decoy, policy failure,
        # halt, the alert itself, and the attack inside the gap.
        assert {
            "attack.decoy_executed", "attestation.failed.policy",
            "polling.halted", "alert.fired", "attack.backdoor_executed",
        } <= kinds
        assert incident.spans, "traced polls should appear in the window"
        assert all(
            (span.get("attributes") or {}).get("agent") in (None, result.p2_node)
            for span in incident.spans
            if span.get("parent_id") is None
        )
        chain = incident.audit_chain
        assert chain["verified"] is True
        assert chain["records_in_window"] > 0
        assert chain["first_index"] is not None
        assert chain["last_index"] >= chain["first_index"]

    def test_slo_budget_burns_and_burn_rule_fires(self, p2_run):
        _, watch = p2_run
        fired_rules = {alert.rule for alert in watch.engine.history}
        assert "slo.freshness.fast_burn" in fired_rules
        end = watch.monitor.last_check
        assert watch.monitor.slos.freshness.budget_remaining(86400.0, end) == 0.0

    def test_detection_latency_slo_met(self, p2_run):
        _, watch = p2_run
        slo = watch.monitor.slos.detection_latency
        assert slo.total == 1 and slo.total_bad == 0


class TestPostHocReconstruction:
    def _export(self, p2_run) -> list[dict]:
        from repro.obs.exporters import jsonl_dump, load_jsonl

        result, watch = p2_run
        telemetry = None  # registry/tracer already captured by the watch
        extra = [{
            "type": "run_meta", "scenario": "fleet",
            "poll_interval": POLL,
            "agents": watch.monitor.gaps.agents(),
        }]
        extra += [alert.to_record() for alert in watch.engine.history]
        extra += [incident.to_record() for incident in watch.incidents]
        text = jsonl_dump(
            watch.monitor.registry or __import__(
                "repro.obs.metrics", fromlist=["MetricsRegistry"]
            ).MetricsRegistry(),
            tracer=watch.correlator.tracer,
            events=result.fleet.events,
            audit=result.fleet.audit,
            extra_records=extra,
        )
        return load_jsonl(text)

    def test_embedded_incidents_round_trip(self, p2_run):
        _, watch = p2_run
        records = self._export(p2_run)
        reports = reports_from_export(records)
        assert len(reports) == len(watch.incidents)
        by_rule = {report.alert["rule"] for report in reports}
        assert "health.coverage_gap" in by_rule

    def test_replay_rediscovers_the_gap_without_incident_records(self, p2_run):
        result, watch = p2_run
        records = [
            record for record in self._export(p2_run)
            if record.get("type") not in ("incident", "alert")
        ]
        reports = reports_from_export(records)
        gap_reports = [
            report for report in reports
            if report.alert["rule"] == "health.coverage_gap"
        ]
        assert len(gap_reports) == 1
        replayed = gap_reports[0]
        assert replayed.agent_id == result.p2_node
        # Replay detects at the same tick the live watch did.
        live = next(
            alert for alert in watch.engine.history
            if alert.rule == "health.coverage_gap"
        )
        assert replayed.alert["time"] == live.time
        # Exported audit records still verify by recomputed hashes.
        assert replayed.audit_chain["verified"] is True

    def test_split_export_groups_by_type(self, p2_run):
        groups = split_export(self._export(p2_run))
        for kind in ("run_meta", "event", "audit", "alert", "incident", "metric"):
            assert groups.get(kind), f"export should carry {kind} records"
