"""Tests for Keylime runtime policies."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.hexutil import sha256_hex
from repro.kernelsim.ima import ImaLogEntry, template_hash
from repro.keylime.policy import (
    IBM_STYLE_EXCLUDES,
    EntryVerdict,
    RuntimePolicy,
    build_policy_from_machine,
)


def _entry(path: str, content: bytes = b"content") -> ImaLogEntry:
    digest = "sha256:" + sha256_hex(content)
    return ImaLogEntry(
        pcr=10, template_hash=template_hash(digest, path),
        template="ima-ng", filedata_hash=digest, path=path,
    )


@pytest.fixture()
def policy() -> RuntimePolicy:
    policy = RuntimePolicy(excludes=list(IBM_STYLE_EXCLUDES))
    policy.add_digest("/usr/bin/ls", sha256_hex(b"ls-v1"))
    return policy


class TestConstruction:
    def test_add_digest(self, policy):
        assert policy.covers_path("/usr/bin/ls")
        assert policy.digests_for("/usr/bin/ls") == (sha256_hex(b"ls-v1"),)

    def test_add_digest_dedupes(self, policy):
        assert not policy.add_digest("/usr/bin/ls", sha256_hex(b"ls-v1"))
        assert len(policy.digests_for("/usr/bin/ls")) == 1

    def test_add_second_digest(self, policy):
        assert policy.add_digest("/usr/bin/ls", sha256_hex(b"ls-v2"))
        assert len(policy.digests_for("/usr/bin/ls")) == 2

    def test_bad_digest_rejected(self, policy):
        with pytest.raises(ConfigurationError):
            policy.add_digest("/a", "nothex")

    def test_merge_measurements(self, policy):
        added = policy.merge_measurements({
            "/usr/bin/ls": sha256_hex(b"ls-v1"),  # duplicate
            "/usr/bin/cat": sha256_hex(b"cat"),
        })
        assert added == 1
        assert policy.covers_path("/usr/bin/cat")

    def test_line_count(self, policy):
        policy.add_digest("/usr/bin/ls", sha256_hex(b"ls-v2"))
        policy.add_digest("/usr/bin/cat", sha256_hex(b"cat"))
        assert policy.line_count() == 3

    def test_size_bytes_grows_with_entries(self, policy):
        before = policy.size_bytes()
        policy.add_digest("/usr/bin/cat", sha256_hex(b"cat"))
        assert policy.size_bytes() > before

    def test_copy_is_deep(self, policy):
        clone = policy.copy()
        clone.add_digest("/usr/bin/new", sha256_hex(b"new"))
        assert not policy.covers_path("/usr/bin/new")


class TestDedupe:
    def test_dedupe_keeps_installed_digest(self, policy):
        v2 = sha256_hex(b"ls-v2")
        policy.add_digest("/usr/bin/ls", v2)
        removed = policy.dedupe_for_paths({"/usr/bin/ls": v2})
        assert removed == 1
        assert policy.digests_for("/usr/bin/ls") == (v2,)

    def test_dedupe_never_admits_unknown_digest(self, policy):
        """The incident-laundering bug: dedup must not add digests."""
        unknown = sha256_hex(b"out-of-band-install")
        removed = policy.dedupe_for_paths({"/usr/bin/ls": unknown})
        assert removed == 0
        assert unknown not in policy.digests_for("/usr/bin/ls")

    def test_dedupe_ignores_unknown_paths(self, policy):
        assert policy.dedupe_for_paths({"/usr/bin/ghost": sha256_hex(b"x")}) == 0


class TestExcludes:
    def test_tmp_excluded_by_default_set(self, policy):
        assert policy.is_excluded("/tmp/payload")
        assert policy.is_excluded("/tmp")
        assert not policy.is_excluded("/tmpfoo")

    def test_var_log_excluded(self, policy):
        assert policy.is_excluded("/var/log/syslog")

    def test_usr_local_excluded(self, policy):
        assert policy.is_excluded("/usr/local/bin/custom")

    def test_usr_bin_not_excluded(self, policy):
        assert not policy.is_excluded("/usr/bin/ls")

    def test_add_exclude(self, policy):
        policy.add_exclude(r"^/opt(/.*)?$")
        assert policy.is_excluded("/opt/thing")

    def test_remove_exclude(self, policy):
        policy.remove_exclude(r"^/tmp(/.*)?$")
        assert not policy.is_excluded("/tmp/payload")

    def test_remove_missing_exclude_is_noop(self, policy):
        policy.remove_exclude(r"^/nonexistent$")


class TestEvaluation:
    def test_accept(self, policy):
        verdict, failure = policy.evaluate_entry(_entry("/usr/bin/ls", b"ls-v1"))
        assert verdict is EntryVerdict.ACCEPT
        assert failure is None

    def test_hash_mismatch(self, policy):
        verdict, failure = policy.evaluate_entry(_entry("/usr/bin/ls", b"ls-v2"))
        assert verdict is EntryVerdict.HASH_MISMATCH
        assert failure is not None
        assert failure.path == "/usr/bin/ls"
        assert "hash mismatch" in failure.describe()

    def test_not_in_policy(self, policy):
        verdict, failure = policy.evaluate_entry(_entry("/usr/bin/unknown"))
        assert verdict is EntryVerdict.NOT_IN_POLICY
        assert failure is not None
        assert "not found in policy" in failure.describe()

    def test_excluded_skipped(self, policy):
        verdict, failure = policy.evaluate_entry(_entry("/tmp/anything"))
        assert verdict is EntryVerdict.EXCLUDED
        assert failure is None

    def test_boot_aggregate_special(self, policy):
        verdict, failure = policy.evaluate_entry(_entry("boot_aggregate"))
        assert verdict is EntryVerdict.BOOT_AGGREGATE
        assert failure is None

    def test_failure_verdicts(self):
        assert EntryVerdict.HASH_MISMATCH.is_failure
        assert EntryVerdict.NOT_IN_POLICY.is_failure
        assert not EntryVerdict.ACCEPT.is_failure
        assert not EntryVerdict.EXCLUDED.is_failure


class TestSerialisation:
    def test_json_roundtrip(self, policy):
        blob = policy.to_json()
        restored = RuntimePolicy.from_json(blob)
        assert restored.digests == policy.digests
        assert restored.excludes == policy.excludes

    def test_json_has_keylime_shape(self, policy):
        import json

        payload = json.loads(policy.to_json())
        assert "digests" in payload
        assert "excludes" in payload
        assert payload["meta"]["version"] == 1


class TestBuildFromMachine:
    def test_covers_executables_only(self, machine):
        machine.install_file("/usr/bin/tool", b"tool", executable=True)
        machine.install_file("/etc/config", b"config", executable=False)
        policy = build_policy_from_machine(machine)
        assert policy.covers_path("/usr/bin/tool")
        assert not policy.covers_path("/etc/config")

    def test_skips_excluded_directories(self, machine):
        machine.install_file("/tmp/script", b"x", executable=True)
        policy = build_policy_from_machine(machine)
        assert not policy.covers_path("/tmp/script")

    def test_digest_matches_content(self, machine):
        machine.install_file("/usr/bin/tool", b"tool", executable=True)
        policy = build_policy_from_machine(machine)
        assert policy.digests_for("/usr/bin/tool") == (sha256_hex(b"tool"),)


class TestExcludeFastPath:
    """Classifier for the anchored-literal exclude fast path."""

    def test_tree_shape(self):
        from repro.keylime.policy import exclude_fast_path

        assert exclude_fast_path(r"^/tmp(/.*)?$") == ("tree", "/tmp")

    def test_exact_children_prefix_shapes(self):
        from repro.keylime.policy import exclude_fast_path

        assert exclude_fast_path(r"^/opt/app$") == ("exact", "/opt/app")
        assert exclude_fast_path(r"^/srv/.*$") == ("children", "/srv")
        assert exclude_fast_path(r"^/boot") == ("prefix", "/boot")

    def test_fallback_shapes(self):
        from repro.keylime.policy import exclude_fast_path

        assert exclude_fast_path(r"^/home/[^/]+/\.cache(/.*)?$") is None
        assert exclude_fast_path(r".*\.cache$") is None  # unanchored
        assert exclude_fast_path(r"^$") is None  # empty body
        assert exclude_fast_path("/tmp") is None  # no anchor


class TestExcludeIndex:
    PATTERNS = list(IBM_STYLE_EXCLUDES) + [
        r"^/opt/app$",
        r"^/srv/.*$",
        r"^/boot",
        r".*\.pyc$",
    ]
    CORPUS = [
        "/tmp", "/tmp/x", "/tmpfile", "/var/tmp/evil", "/var/tmpz",
        "/run/lock/f", "/var/log/syslog", "/usr/local/bin/tool",
        "/home/alice/.cache/x", "/home/alice/.cachet", "/home/.cache/x",
        "/opt/app", "/opt/app/bin", "/srv", "/srv/www/a", "/boot/vmlinuz",
        "/bootstrap", "/usr/lib/mod.pyc", "/usr/bin/ls", "boot_aggregate",
    ]

    def test_matches_re_match_semantics_exactly(self):
        import re

        from repro.keylime.policy import ExcludeIndex

        index = ExcludeIndex(self.PATTERNS)
        compiled = [re.compile(p) for p in self.PATTERNS]
        for path in self.CORPUS:
            expected = any(regex.match(path) for regex in compiled)
            assert index.matches(path) == expected, path

    def test_fast_path_accounting(self):
        from repro.keylime.policy import ExcludeIndex

        index = ExcludeIndex(self.PATTERNS)
        # IBM set: 5 anchored-literal trees + 1 regex; extras: 3 fast + 1.
        assert index.fast_path_count == 8
        assert index.fallback_count == 2

    def test_rebuild_follows_mutation(self):
        policy = RuntimePolicy(excludes=[r"^/tmp(/.*)?$"])
        assert policy.is_excluded("/tmp/x")
        policy.remove_exclude(r"^/tmp(/.*)?$")
        assert not policy.is_excluded("/tmp/x")
        policy.add_exclude(r"^/data(/.*)?$")
        assert policy.is_excluded("/data/blob")


class TestGenerationStamp:
    def test_construction_is_generation_zero(self):
        policy = RuntimePolicy(
            digests={"/usr/bin/ls": [sha256_hex(b"ls")]},
            excludes=list(IBM_STYLE_EXCLUDES),
        )
        assert policy.generation == 0

    def test_mutations_bump(self, policy):
        generation = policy.generation
        policy.add_digest("/usr/bin/cp", sha256_hex(b"cp"))
        assert policy.generation == generation + 1
        policy.add_exclude(r"^/scratch(/.*)?$")
        assert policy.generation == generation + 2
        policy.remove_exclude(r"^/scratch(/.*)?$")
        assert policy.generation == generation + 3

    def test_duplicate_digest_does_not_bump(self, policy):
        policy.add_digest("/usr/bin/cp", sha256_hex(b"cp"))
        generation = policy.generation
        assert policy.add_digest("/usr/bin/cp", sha256_hex(b"cp")) is False
        assert policy.generation == generation

    def test_uids_are_distinct(self):
        assert RuntimePolicy().uid != RuntimePolicy().uid


class TestVerdictCache:
    def test_miss_then_hit(self, policy):
        from repro.keylime.policy import VerdictCache

        cache = VerdictCache()
        entry = _entry("/usr/bin/ls", b"ls-v1")
        first = cache.evaluate(policy, entry)
        second = cache.evaluate(policy, entry)
        assert first == second == (EntryVerdict.ACCEPT, None)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_ratio == 0.5

    def test_generation_bump_invalidates(self, policy):
        from repro.keylime.policy import VerdictCache

        cache = VerdictCache()
        entry = _entry("/usr/bin/new", b"new")
        verdict, _ = cache.evaluate(policy, entry)
        assert verdict is EntryVerdict.NOT_IN_POLICY
        policy.add_digest("/usr/bin/new", sha256_hex(b"new"))
        verdict, _ = cache.evaluate(policy, entry)
        assert verdict is EntryVerdict.ACCEPT  # stale verdict not served
        assert cache.misses == 2

    def test_distinct_policies_do_not_collide(self, policy):
        from repro.keylime.policy import VerdictCache

        cache = VerdictCache()
        other = RuntimePolicy()  # same generation (0), different uid
        entry = _entry("/usr/bin/ls", b"ls-v1")
        assert cache.evaluate(policy, entry)[0] is EntryVerdict.ACCEPT
        assert cache.evaluate(other, entry)[0] is EntryVerdict.NOT_IN_POLICY

    def test_fifo_eviction_bounds_size(self, policy):
        from repro.keylime.policy import VerdictCache

        cache = VerdictCache(max_entries=2)
        for index in range(4):
            cache.evaluate(policy, _entry(f"/usr/bin/t{index}", b"x"))
        assert len(cache) == 2
        assert cache.evictions == 2

    def test_clear_keeps_stats(self, policy):
        from repro.keylime.policy import VerdictCache

        cache = VerdictCache()
        cache.evaluate(policy, _entry("/usr/bin/ls", b"ls-v1"))
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1

    def test_zero_slots_rejected(self):
        from repro.keylime.policy import VerdictCache

        with pytest.raises(ConfigurationError):
            VerdictCache(max_entries=0)
