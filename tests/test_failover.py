"""Failover equivalence: kill a verifier anywhere, verdicts unchanged.

The sharded fleet's tentpole property, proven chaos-style: a seeded
3-verifier/30-agent run is killed (or partitioned) at *every* round
boundary, and each degraded run must be indistinguishable from the
unfailed baseline --

* per-shard verdict histories and hash-chained audit logs bit-identical
  (the adopter resumes the dead host's checkpoint mid-round, RNG
  streams included);
* zero re-enrollments (failover moves *hosting*, never registrar
  records);
* the coverage-gap detector silent (the probe adopts before the tick's
  polls, so no agent misses a single round -- the anti-P2 guarantee
  extended to verifier churn);
* the federation dashboard showing the adoption, not hiding it.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.experiments.shardfleet import run_shard_fleet
from repro.keylime.faults import VerifierOutage
from repro.obs.dashboard import top_frame_record

sys.path.insert(0, os.path.dirname(__file__))

from resume_helpers import (  # noqa: E402
    assert_fingerprints_equal,
    enrollment_events,
    vfleet_fingerprint,
)

SEED = "failover-chaos"
N_NODES = 30
N_VERIFIERS = 3
N_ROUNDS = 4
INTERVAL = 1800.0
BOUNDARIES = tuple(range(N_ROUNDS))


def _victim(boundary: int) -> str:
    """Rotate the killed member so every shard plays the victim."""
    return f"verifier-{boundary % N_VERIFIERS}"


def _run(**kwargs):
    return run_shard_fleet(
        seed=SEED, n_nodes=N_NODES, n_verifiers=N_VERIFIERS,
        fillers=2, rounds=N_ROUNDS, poll_interval=INTERVAL, **kwargs,
    )


@pytest.fixture(scope="module")
def baseline():
    """The unfailed run every chaos variant must reproduce exactly."""
    result = _run()
    return {
        "fingerprint": vfleet_fingerprint(result.vfleet),
        "enrollments": len(enrollment_events(result.fleet.events)),
        "result": result,
    }


class TestKillAtEveryBoundary:
    @pytest.mark.parametrize("boundary", BOUNDARIES)
    def test_failover_run_is_bit_identical(self, baseline, boundary):
        victim = _victim(boundary)
        result = _run(kill={boundary: victim})

        # The kill actually happened and was adopted that same round.
        assert boundary in result.failovers
        assert victim not in result.vfleet.live_members()
        assert result.vfleet.shards[victim].host != victim

        assert_fingerprints_equal(
            vfleet_fingerprint(result.vfleet), baseline["fingerprint"]
        )
        for shard_id in result.vfleet.shard_ids:
            result.vfleet.shards[shard_id].audit.verify_chain()

    @pytest.mark.parametrize("boundary", BOUNDARIES)
    def test_zero_reenrollments_and_no_coverage_gap(self, baseline, boundary):
        result = _run(kill={boundary: _victim(boundary)})
        assert (
            len(enrollment_events(result.fleet.events))
            == baseline["enrollments"]
        )
        assert result.gap_alerts() == []
        states = result.vfleet.status()
        assert all(state == "attesting" for state in states.values())


class TestPartitionWindow:
    def test_transient_partition_adopts_once_and_stays_identical(
        self, baseline
    ):
        """A partition spanning exactly one probe: the shard is adopted
        for that tick, the member returns next tick, and -- since a
        lasting adoption beats state ping-pong -- hosting stays with
        the adopter.  Output still bit-identical, gap detector still
        silent."""
        boundary = 1
        victim = _victim(boundary)
        at = (boundary + 1) * INTERVAL
        outage = VerifierOutage(victim, start=at - 1.0, end=at + 1.0)
        result = _run(outages=(outage,))

        assert boundary in result.failovers
        # The member recovered (no kill flag) but the shard stayed put.
        assert victim in result.vfleet.live_members()
        assert result.vfleet.shards[victim].host != victim

        assert_fingerprints_equal(
            vfleet_fingerprint(result.vfleet), baseline["fingerprint"]
        )
        assert result.gap_alerts() == []
        assert (
            len(enrollment_events(result.fleet.events))
            == baseline["enrollments"]
        )


class TestObservatorySeesTheFailover:
    def test_shard_panel_reports_the_adoption(self, baseline):
        """The federation hub's view after a failover names the adopter
        and counts the handoff -- observability is part of the failover
        contract, not an afterthought."""
        boundary = 2
        victim = _victim(boundary)
        result = _run(kill={boundary: victim})
        frame = top_frame_record(
            result.hub.store, result.end_time,
            result.hub.staleness(result.end_time), INTERVAL,
        )
        assert frame["shard_failovers"] >= 1
        assert frame["shards"][victim]["host"] != victim
        assert frame["shards"][victim]["host"] in result.vfleet.live_members()
        assert sum(s["agents"] for s in frame["shards"].values()) == N_NODES
        # The dead member shows up stale on the hub, not absent.
        staleness = result.hub.staleness(result.end_time)
        assert staleness[victim] is not None and staleness[victim] > INTERVAL

    def test_balance_rule_records_on_the_hub(self, baseline):
        store = baseline["result"].hub.store
        balance = store.instant(
            "fleet:shard_balance", None, baseline["result"].end_time
        )
        assert balance is not None
        assert 0.0 < balance <= 1.0
