"""Tests for the table/figure renderers."""

import pytest

from repro.analysis import (
    render_fig3,
    render_fig4,
    render_fig5,
    render_fp_week,
    render_problem_demos,
    render_series,
    render_table1,
    render_table2,
)
from repro.attacks import AttackMode
from repro.experiments.fn_matrix import AttackTrial, FnMatrixResult
from repro.experiments.fp_week import FpRecord, FpWeekResult
from repro.experiments.longrun import LongRunResult
from repro.experiments.problems import ProblemDemo
from repro.dynpolicy.generator import PolicyUpdateReport
from repro.dynpolicy.orchestrator import UpdateCycleReport
from repro.distro.apt import UpdateReport


def _cycle(day: int, minutes: float, high: int, low: int, entries: int) -> UpdateCycleReport:
    return UpdateCycleReport(
        day=day,
        policy_report=PolicyUpdateReport(
            time=day * 86400.0, duration_seconds=minutes * 60.0,
            packages_high=high, packages_low=low,
            entries_added=entries, bytes_added=entries * 100,
            policy_lines_after=1000 + entries,
        ),
        apt_report=UpdateReport(time=day * 86400.0),
        rebooted=False, deduped_digests=0, source="mirror",
    )


@pytest.fixture()
def longrun() -> LongRunResult:
    return LongRunResult(
        n_days=3, cadence_days=1,
        cycles=[_cycle(1, 2.0, 1, 10, 900), _cycle(2, 1.0, 0, 5, 300),
                _cycle(3, 8.0, 2, 30, 2400)],
        total_polls=100, ok_polls=100,
        initial_policy_lines=1000, final_policy_lines=4600,
    )


class TestFigures:
    def test_render_series_contains_values(self):
        out = render_series([1.0, 2.0], "T", "u")
        assert "T" in out
        assert "1.00 u" in out
        assert "mean=1.50" in out

    def test_render_series_empty(self):
        out = render_series([], "Empty", "u")
        assert "n=0" in out

    def test_fig3(self, longrun):
        out = render_fig3(longrun)
        assert "Fig 3" in out
        assert "2.00 min" in out

    def test_fig4_has_both_series(self, longrun):
        out = render_fig4(longrun)
        assert "Fig 4" in out
        assert "high-priority" in out

    def test_fig5(self, longrun):
        out = render_fig5(longrun)
        assert "Fig 5" in out
        assert "900.00 entries" in out


class TestTables:
    def test_table1(self):
        rows = [
            {"experiment": "Daily Update", "low_priority_packages": 15.6,
             "high_priority_packages": 0.9, "files_updated": 1271.0,
             "time_minutes": 2.36},
            {"experiment": "Weekly Update", "low_priority_packages": 76.4,
             "high_priority_packages": 2.6, "files_updated": 5513.0,
             "time_minutes": 7.50},
        ]
        out = render_table1(rows)
        assert "Daily Update" in out
        assert "2.36" in out
        assert "5513" in out

    def _matrix(self, ruleset: str, adaptive_live: bool, mitig_reboot: bool) -> FnMatrixResult:
        from repro.attacks import all_attacks

        result = FnMatrixResult(ruleset=ruleset)
        for sample in all_attacks():
            for mode in (AttackMode.BASIC, AttackMode.ADAPTIVE):
                detected_live = mode is AttackMode.BASIC or adaptive_live
                if sample.name == "Aoyama" and ruleset == "mitigated":
                    detected_live = mode is AttackMode.BASIC
                result.trials.append(AttackTrial(
                    name=sample.name, category=sample.category, mode=mode,
                    ruleset=ruleset, detected_live=detected_live,
                    detected_after_reboot=mitig_reboot and detected_live,
                    failing_paths=(), problems_used=(),
                ))
        return result

    def test_table2_renders_all_samples(self):
        stock = self._matrix("stock", adaptive_live=False, mitig_reboot=False)
        mitigated = self._matrix("mitigated", adaptive_live=True, mitig_reboot=True)
        out = render_table2(stock, mitigated)
        for name in ("AvosLocker", "Diamorphine", "Mirai", "Aoyama"):
            assert name in out
        assert "Ransomware:" in out
        assert "Botnet:" in out

    def test_table2_marks(self):
        stock = self._matrix("stock", adaptive_live=False, mitig_reboot=False)
        mitigated = self._matrix("mitigated", adaptive_live=True, mitig_reboot=True)
        out = render_table2(stock, mitigated)
        aoyama_line = [line for line in out.splitlines() if line.startswith("Aoyama")][0]
        assert aoyama_line.rstrip().endswith("N")


class TestOtherRenderers:
    def test_fp_week(self):
        result = FpWeekResult(
            n_days=7, total_polls=300, failed_polls=12,
            records=[
                FpRecord(time=1.0, cause="update_hash_mismatch", path="/usr/bin/a", digest="x"),
                FpRecord(time=2.0, cause="snap_truncation", path="/usr/bin/b", digest="y"),
            ],
        )
        out = render_fp_week(result)
        assert "update_hash_mismatch" in out
        assert "snap_truncation" in out
        assert "distinct_FPs=2" in out

    def test_problem_demos(self):
        demos = [ProblemDemo(problem="P1", claim="c", ima_measured=True,
                             verifier_alerted=False, details={"k": "v"})]
        out = render_problem_demos(demos)
        assert "P1" in out
        assert "verifier alerted: False" in out
