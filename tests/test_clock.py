"""Tests for the simulated clock and discrete-event scheduler."""

import pytest

from repro.common.clock import (
    Scheduler,
    SimClock,
    days,
    hours,
    minutes,
)
from repro.common.errors import SimulationError


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(100.0).now == 100.0

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(50.0)
        assert clock.now == 50.0

    def test_advance_by(self):
        clock = SimClock(10.0)
        clock.advance_by(5.0)
        assert clock.now == 15.0

    def test_cannot_rewind(self):
        clock = SimClock(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(5.0)

    def test_cannot_advance_negative(self):
        with pytest.raises(SimulationError):
            SimClock().advance_by(-1.0)

    def test_day_index(self):
        clock = SimClock(days(3) + hours(12))
        assert clock.day_index() == 3

    def test_time_of_day(self):
        clock = SimClock(days(2) + hours(5))
        assert clock.time_of_day() == pytest.approx(hours(5))

    def test_now_minutes_and_days(self):
        clock = SimClock(minutes(90))
        assert clock.now_minutes == pytest.approx(90.0)
        assert clock.now_days == pytest.approx(90.0 / (24 * 60))


class TestUnits:
    def test_minutes(self):
        assert minutes(2) == 120.0

    def test_hours(self):
        assert hours(1.5) == 5400.0

    def test_days(self):
        assert days(2) == 172800.0


class TestScheduler:
    def test_events_run_in_time_order(self):
        sched = Scheduler()
        order = []
        sched.call_at(20.0, lambda: order.append("b"))
        sched.call_at(10.0, lambda: order.append("a"))
        sched.call_at(30.0, lambda: order.append("c"))
        sched.run_all()
        assert order == ["a", "b", "c"]

    def test_same_time_runs_in_schedule_order(self):
        sched = Scheduler()
        order = []
        for label in "abc":
            sched.call_at(5.0, lambda label=label: order.append(label))
        sched.run_all()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sched = Scheduler()
        seen = []
        sched.call_at(42.0, lambda: seen.append(sched.clock.now))
        sched.run_all()
        assert seen == [42.0]

    def test_call_in_relative(self):
        sched = Scheduler()
        sched.clock.advance_to(100.0)
        seen = []
        sched.call_in(10.0, lambda: seen.append(sched.clock.now))
        sched.run_all()
        assert seen == [110.0]

    def test_cannot_schedule_in_past(self):
        sched = Scheduler()
        sched.clock.advance_to(100.0)
        with pytest.raises(SimulationError):
            sched.call_at(50.0, lambda: None)

    def test_cancel_prevents_run(self):
        sched = Scheduler()
        fired = []
        handle = sched.call_at(10.0, lambda: fired.append(1))
        handle.cancel()
        sched.run_all()
        assert fired == []
        assert handle.cancelled

    def test_run_until_respects_deadline(self):
        sched = Scheduler()
        fired = []
        sched.call_at(10.0, lambda: fired.append(10))
        sched.call_at(20.0, lambda: fired.append(20))
        dispatched = sched.run_until(15.0)
        assert dispatched == 1
        assert fired == [10]
        assert sched.clock.now == 15.0

    def test_run_until_finishes_at_deadline_even_when_idle(self):
        sched = Scheduler()
        sched.run_until(99.0)
        assert sched.clock.now == 99.0

    def test_run_for(self):
        sched = Scheduler()
        sched.clock.advance_to(10.0)
        fired = []
        sched.call_at(15.0, lambda: fired.append(1))
        sched.run_for(10.0)
        assert fired == [1]
        assert sched.clock.now == 20.0

    def test_every_repeats(self):
        sched = Scheduler()
        ticks = []
        sched.every(10.0, lambda: ticks.append(sched.clock.now))
        sched.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_every_stop(self):
        sched = Scheduler()
        ticks = []
        stop = sched.every(10.0, lambda: ticks.append(sched.clock.now))
        sched.run_until(25.0)
        stop()
        sched.run_until(100.0)
        assert ticks == [10.0, 20.0]

    def test_every_with_start(self):
        sched = Scheduler()
        ticks = []
        sched.every(10.0, lambda: ticks.append(sched.clock.now), start=5.0)
        sched.run_until(26.0)
        assert ticks == [5.0, 15.0, 25.0]

    def test_every_rejects_nonpositive_interval(self):
        with pytest.raises(SimulationError):
            Scheduler().every(0.0, lambda: None)

    def test_step_returns_false_when_idle(self):
        assert Scheduler().step() is False

    def test_run_all_detects_runaway(self):
        sched = Scheduler()

        def reschedule() -> None:
            sched.call_in(1.0, reschedule)

        sched.call_in(1.0, reschedule)
        with pytest.raises(SimulationError):
            sched.run_all(max_events=100)

    def test_len_counts_pending(self):
        sched = Scheduler()
        sched.call_at(1.0, lambda: None)
        handle = sched.call_at(2.0, lambda: None)
        handle.cancel()
        assert len(sched) == 1

    def test_handle_exposes_when_and_label(self):
        sched = Scheduler()
        handle = sched.call_at(7.0, lambda: None, label="poll")
        assert handle.when == 7.0
        assert handle.label == "poll"


class TestRepeatingHandle:
    def test_exposes_timer_metadata_and_fire_bookkeeping(self):
        sched = Scheduler()
        handle = sched.every(10.0, lambda: None, label="fleet-poll-batch")
        assert handle.label == "fleet-poll-batch"
        assert handle.interval == 10.0
        assert handle.fires == 0 and handle.last_fired_at is None
        sched.run_until(35.0)
        assert handle.fires == 3
        assert handle.last_fired_at == 30.0
        assert not handle.stopped

    def test_stop_method_and_call_are_equivalent(self):
        sched = Scheduler()
        ticks = []
        handle = sched.every(10.0, lambda: ticks.append(sched.clock.now))
        sched.run_until(15.0)
        handle.stop()
        assert handle.stopped
        handle.stop()  # idempotent
        sched.run_until(100.0)
        assert ticks == [10.0]
        # Back-compat: the handle is also callable-as-stop.
        other = sched.every(10.0, lambda: ticks.append(sched.clock.now))
        other()
        assert other.stopped
        sched.run_until(200.0)
        assert ticks == [10.0]

    def test_stopped_handle_never_reschedules(self):
        sched = Scheduler()
        handle = sched.every(10.0, lambda: None)
        handle.stop()
        sched.run_until(100.0)
        assert handle.fires == 0
        assert len(sched) == 0
