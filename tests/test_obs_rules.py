"""Tests for recording rules, TSDB SLO trackers and the observatory."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.alerts import SloTracker
from repro.obs.metrics import MetricsRegistry
from repro.obs.rules import (
    AggregateRule,
    IncreaseRule,
    Observatory,
    QuantileOverTimeRule,
    RateRule,
    RatioRule,
    RuleEngine,
    TsdbSampleSource,
    TsdbSloTracker,
    histogram_quantile,
    standard_recording_rules,
    tsdb_slos,
)
from repro.obs.tsdb import TsdbStore

HOUR = 3600.0


class TestHistogramQuantile:
    def test_linear_interpolation(self):
        # 10 obs <= 1, 10 more in (1, 2].
        buckets = [(1.0, 10.0), (2.0, 20.0), (float("inf"), 20.0)]
        assert histogram_quantile(0.5, buckets) == pytest.approx(1.0)
        assert histogram_quantile(0.75, buckets) == pytest.approx(1.5)

    def test_inf_bucket_degrades_to_highest_finite_bound(self):
        buckets = [(1.0, 5.0), (float("inf"), 10.0)]
        assert histogram_quantile(0.99, buckets) == pytest.approx(1.0)

    def test_empty_window_is_none(self):
        assert histogram_quantile(0.5, []) is None
        assert histogram_quantile(0.5, [(1.0, 0.0)]) is None

    def test_quantile_validated(self):
        with pytest.raises(ConfigurationError):
            histogram_quantile(1.5, [(1.0, 1.0)])


def _counter_series(store, name, labels, step, n, interval=60.0):
    value = 0.0
    for i in range(n):
        value += step
        store.append(name, labels, value, i * interval, kind="counter")
    return (n - 1) * interval


class TestRecordingRules:
    def test_rate_rule_collapses_sources(self):
        store = TsdbStore()
        end = _counter_series(store, "polls", {"source": "a"}, 2.0, 61)
        _counter_series(store, "polls", {"source": "b"}, 1.0, 61)
        RateRule("fleet:pr", "polls", window=HOUR).evaluate(store, end)
        # 2/min + 1/min = 3/min = 0.05/s... per-source increase over the
        # hour is 2*60=120 and 60, integrated with the strictly-before
        # base sample: 61 deltas each.
        value = store.instant("fleet:pr", None, end)
        assert value == pytest.approx((61 * 2 + 61 * 1) / HOUR)

    def test_rate_rule_grouped_by_label(self):
        store = TsdbStore()
        end = _counter_series(store, "polls", {"result": "ok"}, 1.0, 61)
        _counter_series(store, "polls", {"result": "failed"}, 3.0, 61)
        RateRule("pr_by", "polls", HOUR, by=("result",)).evaluate(store, end)
        ok = store.instant("pr_by", {"result": "ok"}, end)
        failed = store.instant("pr_by", {"result": "failed"}, end)
        assert failed == pytest.approx(3 * ok)

    def test_increase_rule(self):
        store = TsdbStore()
        end = _counter_series(store, "faults", None, 1.0, 10)
        IncreaseRule("fleet:faults", "faults", window=HOUR).evaluate(store, end)
        assert store.instant("fleet:faults", None, end) == pytest.approx(10.0)

    def test_ratio_rule_skips_zero_denominator(self):
        store = TsdbStore()
        end = _counter_series(store, "lat_sum", None, 0.5, 10)
        _counter_series(store, "lat_count", None, 1.0, 10)
        store.append("lat_sum", {"g": "idle"}, 0.0, 0.0, kind="counter")
        store.append("lat_count", {"g": "idle"}, 0.0, 0.0, kind="counter")
        RatioRule(
            "lat_mean", "lat_sum", "lat_count", window=HOUR, by=("g",)
        ).evaluate(store, end)
        assert store.instant("lat_mean", {"g": ""}, end) == pytest.approx(0.5)
        assert store.instant("lat_mean", {"g": "idle"}, end) is None

    def test_quantile_over_time_rule(self):
        store = TsdbStore()
        # 30 fast (<=0.1s) then 10 slow (<=1s) observations.
        for i in range(40):
            at = float(i)
            fast = min(i + 1, 30)
            total = i + 1
            store.append("lat_bucket", {"le": "0.1"}, fast, at, kind="counter")
            store.append("lat_bucket", {"le": "1"}, total, at, kind="counter")
            store.append(
                "lat_bucket", {"le": "+Inf"}, total, at, kind="counter")
        QuantileOverTimeRule("lat_p95", "lat", 0.95, window=100.0).evaluate(
            store, 39.0)
        value = store.instant("lat_p95", None, 39.0)
        # p95 of 40 obs lands in the (0.1, 1] bucket.
        assert 0.1 < value <= 1.0

    def test_aggregate_rule_all_aggs(self):
        store = TsdbStore()
        for i, v in enumerate((1.0, 5.0, 3.0)):
            store.append("ages", {"agent": f"a{i}"}, v, 0.0)
        for agg, expected in (
            ("sum", 9.0), ("avg", 3.0), ("min", 1.0), ("max", 5.0),
            ("count", 3.0),
        ):
            AggregateRule(f"r_{agg}", "ages", agg).evaluate(store, 0.0)
            assert store.instant(f"r_{agg}", None, 0.0) == expected
        with pytest.raises(ConfigurationError):
            AggregateRule("r", "ages", "median")

    def test_engine_counts_evaluations(self):
        store = TsdbStore()
        engine = RuleEngine(store, [AggregateRule("r", "missing", "sum")])
        engine.add(AggregateRule("r2", "missing", "max"))
        assert engine.evaluate(0.0) == 0
        assert engine.evaluations == 1
        assert len(engine.rules) == 2

    def test_standard_rules_evaluate_cleanly_on_sparse_store(self):
        store = TsdbStore()
        store.append("verifier_polls_total", {"result": "ok"}, 5.0, 0.0,
                     kind="counter")
        engine = RuleEngine(store, standard_recording_rules(1800.0))
        written = engine.evaluate(1800.0)
        assert written > 0
        assert store.instant("fleet:poll_rate", None, 1800.0) is not None


class TestTsdbSampleSource:
    def test_reads_mirror_store_instants(self):
        store = TsdbStore()
        store.append("c", {"agent": "a"}, 5.0, 10.0, kind="counter")
        store.append("h_count", None, 3.0, 10.0, kind="counter")
        store.append("h_sum", None, 1.5, 10.0, kind="counter")
        source = TsdbSampleSource(store)
        assert source.counter_value("c", {"agent": "a"}, 10.0) == 5.0
        assert source.counter_value("missing", {}, 10.0) is None
        assert source.histogram_totals("h", 10.0) == (3.0, 1.5)
        assert source.histogram_totals("missing", 10.0) is None


class TestTsdbSloTracker:
    def test_window_counts_match_seed_tracker_exactly(self):
        """The equivalence the whole PR hinges on: TSDB-backed SLO
        window math must agree with the deque implementation
        sample-for-sample, at any window."""
        import random

        rng = random.Random(42)
        store = TsdbStore(max_samples=100_000)
        seed = SloTracker("s", 0.99)
        mirrored = TsdbSloTracker(store, "s", 0.99)
        now = 0.0
        for _ in range(200):
            now += rng.uniform(1.0, 20.0)
            good = rng.random() > 0.2
            seed.record(now, good)
            mirrored.record(now, good)
        for window in (10.0, 100.0, 500.0, 1999.0, now, 10 * now):
            assert mirrored.window_counts(window, now) == \
                seed.window_counts(window, now), f"window={window}"

    def test_registry_mirror_series(self):
        registry = MetricsRegistry()
        store = TsdbStore()
        tracker = TsdbSloTracker(store, "s", 0.99, registry=registry)
        tracker.record(1.0, True)
        tracker.record(2.0, False)
        family = registry.get("slo_events_total")
        assert family.labels(slo="s", outcome="good").value == 1.0
        assert family.labels(slo="s", outcome="bad").value == 1.0
        # The exact-time series live under the un-scrapable slo: prefix.
        assert store.instant("slo:s:total", None, 2.0) == 2.0
        assert store.instant("slo:s:bad", None, 2.0) == 1.0

    def test_tsdb_slos_builds_the_standard_set(self):
        store = TsdbStore()
        slos = tsdb_slos(store)
        assert all(
            isinstance(tracker, TsdbSloTracker) for tracker in slos.all()
        )


class TestObservatory:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("verifier_polls_total", "", ("result",)).labels(
            result="ok").inc(10)
        return registry

    def test_collect_is_idempotent_per_timestamp(self):
        observatory = Observatory(registry=self._registry())
        assert observatory.collect(100.0) > 0
        assert observatory.collect(100.0) == 0
        assert observatory.collections == 1
        assert observatory.collect(200.0) > 0

    def test_unbound_observatory_is_inert(self):
        observatory = Observatory()
        assert not observatory.bound
        assert observatory.collect(100.0) == 0

    def test_bind_wires_the_reset_meta_counter(self):
        registry = self._registry()
        observatory = Observatory(registry=registry)
        store = observatory.store
        store.append("x", None, 5.0, 0.0, kind="counter")
        store.append("x", None, 1.0, 1.0, kind="counter")
        from repro.obs.tsdb import COUNTER_RESETS_METRIC

        assert registry.get(COUNTER_RESETS_METRIC) is not None

    def test_schedule_collects_on_cadence(self):
        from repro.common.clock import Scheduler

        scheduler = Scheduler()
        observatory = Observatory(
            registry=self._registry(), poll_interval=60.0)
        stop = observatory.schedule(scheduler)
        scheduler.run_until(300.0)
        assert observatory.collections == 5
        stop()
        scheduler.run_until(600.0)
        assert observatory.collections == 5
