"""Round-trip tests for the Prometheus, JSONL and console exporters."""

from repro.obs.exporters import (
    console_summary,
    jsonl_dump,
    load_jsonl,
    parse_prometheus_text,
    prometheus_text,
    write_text_atomic,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanTracer


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    polls = registry.counter("polls_total", "polls", ("result",))
    polls.labels(result="ok").inc(7)
    polls.labels(result="failed").inc(2)
    registry.gauge("nodes", "fleet size").set(3)
    hist = registry.histogram("latency_seconds", "poll latency", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    return registry


class TestPrometheus:
    def test_help_and_type_lines(self):
        text = prometheus_text(_populated_registry())
        assert "# HELP polls_total polls" in text
        assert "# TYPE polls_total counter" in text
        assert "# TYPE nodes gauge" in text
        assert "# TYPE latency_seconds histogram" in text

    def test_round_trip_values(self):
        text = prometheus_text(_populated_registry())
        samples = parse_prometheus_text(text)
        assert samples[("polls_total", (("result", "ok"),))] == 7
        assert samples[("polls_total", (("result", "failed"),))] == 2
        assert samples[("nodes", ())] == 3

    def test_histogram_exposition(self):
        samples = parse_prometheus_text(prometheus_text(_populated_registry()))
        assert samples[("latency_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("latency_seconds_bucket", (("le", "1"),))] == 2
        assert samples[("latency_seconds_bucket", (("le", "+Inf"),))] == 3
        assert samples[("latency_seconds_count", ())] == 3
        assert abs(samples[("latency_seconds_sum", ())] - 5.55) < 1e-9

    def test_label_value_escaping_round_trips(self):
        registry = MetricsRegistry()
        tricky = 'quoted "path", with\nnewline\\slash'
        registry.counter("c", "h", ("path",)).labels(path=tricky).inc()
        samples = parse_prometheus_text(prometheus_text(registry))
        assert samples[("c", (("path", tricky),))] == 1


class TestExemplarExposition:
    def _registry_with_exemplar(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "latency_seconds", "poll latency", buckets=(0.1, 1.0)
        )
        hist.observe(0.5, exemplar={"trace_id": 258, "span_id": 16})
        hist.observe(5.0)
        return registry

    def test_bucket_line_carries_the_exemplar_suffix(self):
        text = prometheus_text(self._registry_with_exemplar())
        line = next(
            l for l in text.splitlines()
            if l.startswith('latency_seconds_bucket{le="1"')
        )
        sample, _, suffix = line.partition(" # ")
        assert sample.endswith(" 1")
        assert 'trace_id="' + "0" * 29 + '102"' in suffix
        assert 'span_id="' + "0" * 14 + '10"' in suffix
        assert suffix.endswith(" 0.5")
        # Buckets without an exemplar stay plain.
        assert 'le="+Inf"} 2\n' in text or text.endswith('le="+Inf"} 2')

    def test_parse_strips_exemplar_suffixes(self):
        registry = self._registry_with_exemplar()
        parsed = parse_prometheus_text(prometheus_text(registry))
        assert parsed[("latency_seconds_bucket", (("le", "1"),))] == 1.0
        assert parsed[("latency_seconds_bucket", (("le", "+Inf"),))] == 2.0

    def test_jsonl_metric_records_carry_exemplars(self):
        records = jsonl_dump(registry=self._registry_with_exemplar())
        metric = next(
            r for r in load_jsonl(records) if r["name"] == "latency_seconds"
        )
        assert metric["exemplars"]["1"]["trace_id"] == 258
        assert metric["exemplars"]["1"]["value"] == 0.5

    def test_span_records_carry_status(self):
        tracer = SpanTracer()
        try:
            with tracer.span("poll"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        records = load_jsonl(jsonl_dump(MetricsRegistry(), tracer=tracer))
        span = next(r for r in records if r.get("type") == "span")
        assert span["status"] == "error"


class TestJsonl:
    def test_metric_records_round_trip(self):
        records = load_jsonl(jsonl_dump(_populated_registry()))
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        ok = next(
            r for r in by_name["polls_total"] if r["labels"] == {"result": "ok"}
        )
        assert ok["kind"] == "counter" and ok["value"] == 7
        hist = by_name["latency_seconds"][0]
        assert hist["count"] == 3
        assert hist["buckets"][-1] == ["+Inf", 3]
        assert set(hist["quantiles"]) == {"0.5", "0.9", "0.99"}

    def test_span_records_preserve_the_tree(self):
        tracer = SpanTracer()
        with tracer.span("poll", agent="a1"):
            with tracer.span("challenge"):
                pass
        records = load_jsonl(jsonl_dump(MetricsRegistry(), tracer))
        spans = {record["name"]: record for record in records}
        assert spans["poll"]["parent_id"] is None
        assert spans["challenge"]["parent_id"] == spans["poll"]["span_id"]
        assert spans["challenge"]["trace_id"] == spans["poll"]["trace_id"]
        assert spans["poll"]["attributes"] == {"agent": "a1"}
        assert spans["poll"]["wall_ms"] >= 0.0

    def test_empty_dump_is_empty(self):
        assert jsonl_dump(MetricsRegistry()) == ""
        assert load_jsonl("") == []


class TestConsoleSummary:
    def test_lists_metrics_and_spans(self):
        tracer = SpanTracer()
        with tracer.span("poll"):
            pass
        text = console_summary(_populated_registry(), tracer)
        assert 'polls_total{result="ok"}: 7' in text
        assert "latency_seconds" in text and "p50=" in text
        assert "-- spans (per name) --" in text
        assert "-- last trace --" in text

    def test_empty_registry(self):
        assert "(no metrics recorded)" in console_summary(MetricsRegistry())


class TestHelpEscaping:
    def test_newlines_and_backslashes_in_help(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "line one\nline two \\ done").inc()
        text = prometheus_text(registry)
        assert "# HELP x_total line one\\nline two \\\\ done" in text
        # The exposition stays one-line-per-record parseable.
        assert parse_prometheus_text(text)[("x_total", ())] == 1

    def test_overflow_counter_is_exposed(self):
        registry = MetricsRegistry(max_label_sets=1)
        family = registry.counter("polls_total", "polls", ("agent",))
        family.labels(agent="a").inc()
        family.labels(agent="b").inc()
        samples = parse_prometheus_text(prometheus_text(registry))
        assert samples[(
            "telemetry_label_sets_overflowed_total", (("metric", "polls_total"),)
        )] == 1

    def test_no_overflow_counter_when_clean(self):
        text = prometheus_text(_populated_registry())
        assert "telemetry_label_sets_overflowed_total" not in text


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "out" / "metrics.prom"
        target.parent.mkdir()
        write_text_atomic(str(target), "first\n")
        assert target.read_text() == "first\n"
        write_text_atomic(str(target), "second\n")
        assert target.read_text() == "second\n"
        # No temp files left behind in the target directory.
        assert [p.name for p in target.parent.iterdir()] == ["metrics.prom"]

    def test_failed_write_leaves_no_temp(self, tmp_path):
        import pytest

        target = tmp_path / "metrics.prom"
        with pytest.raises(TypeError):
            write_text_atomic(str(target), None)
        assert list(tmp_path.iterdir()) == []


class TestEventAndAuditExport:
    def _full_dump(self) -> list[dict]:
        from repro.common.events import EventLog
        from repro.keylime.audit import AuditLog

        events = EventLog()
        events.emit(10.0, "keylime.verifier", "attestation.ok", agent="a")
        audit = AuditLog()
        audit.append(10.0, "a", True, {"kind": "poll"})
        extra = [{"type": "run_meta", "poll_interval": 1800.0}]
        return load_jsonl(jsonl_dump(
            _populated_registry(), events=events, audit=audit,
            extra_records=extra,
        ))

    def test_typed_records_present(self):
        records = self._full_dump()
        by_type = {}
        for record in records:
            by_type.setdefault(record.get("type", "metric"), []).append(record)
        assert len(by_type["event"]) == 1
        assert by_type["event"][0]["kind"] == "attestation.ok"
        assert len(by_type["audit"]) == 1
        assert by_type["audit"][0]["record_hash"]
        assert by_type["run_meta"][0]["poll_interval"] == 1800.0

    def test_audit_records_carry_the_chain_fields(self):
        [audit] = [r for r in self._full_dump() if r.get("type") == "audit"]
        assert set(audit) >= {
            "index", "time", "agent", "ok", "detail",
            "previous_hash", "record_hash",
        }


class TestStreamingJsonl:
    def test_jsonl_records_matches_jsonl_dump_exactly(self):
        import json

        from repro.common.events import EventLog
        from repro.obs.exporters import jsonl_records

        events = EventLog()
        events.emit(10.0, "keylime.verifier", "attestation.ok", agent="a")
        registry = _populated_registry()
        extra = [{"type": "run_meta", "seed": "x"}]
        dumped = jsonl_dump(registry, events=events, extra_records=extra)
        streamed = "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in jsonl_records(
                registry, events=events, extra_records=extra)
        )
        assert streamed == dumped

    def test_write_jsonl_atomic_streams_a_generator(self, tmp_path):
        from repro.obs.exporters import write_jsonl_atomic

        target = tmp_path / "out.jsonl"

        def records():
            for i in range(1000):
                yield {"type": "x", "i": i}

        assert write_jsonl_atomic(str(target), records()) == 1000
        loaded = load_jsonl(target.read_text())
        assert len(loaded) == 1000
        assert loaded[-1] == {"type": "x", "i": 999}
        assert list(tmp_path.iterdir()) == [target]  # no temp litter

    def test_crash_mid_stream_keeps_previous_file(self, tmp_path):
        import pytest

        from repro.obs.exporters import write_jsonl_atomic

        target = tmp_path / "out.jsonl"
        target.write_text('{"type": "old"}\n')

        def exploding():
            yield {"type": "new"}
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            write_jsonl_atomic(str(target), exploding())
        assert load_jsonl(target.read_text()) == [{"type": "old"}]
        assert list(tmp_path.iterdir()) == [target]

    def test_unserialisable_record_leaves_no_litter(self, tmp_path):
        import pytest

        from repro.obs.exporters import write_jsonl_atomic

        target = tmp_path / "out.jsonl"
        with pytest.raises(TypeError):
            write_jsonl_atomic(str(target), [{"bad": object()}])
        assert list(tmp_path.iterdir()) == []
