"""Tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_MAX_LABEL_SETS,
    MetricsRegistry,
    NULL_REGISTRY,
    OVERFLOW_LABEL_VALUE,
    RESERVOIR_SIZE,
)


class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("polls_total").inc()
        registry.counter("polls_total").inc(2.5)
        assert registry.counter("polls_total").value == 3.5

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("polls_total").inc(-1.0)

    def test_labeled_children_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("polls_total", "polls", ("result",))
        family.labels(result="ok").inc(3)
        family.labels(result="failed").inc()
        assert family.labels(result="ok").value == 3
        assert family.labels(result="failed").value == 1

    def test_wrong_labelnames_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("polls_total", "polls", ("result",))
        with pytest.raises(ConfigurationError):
            family.labels(outcome="ok")
        with pytest.raises(ConfigurationError):
            family.labels()

    def test_unlabeled_convenience_rejected_on_labeled_family(self):
        registry = MetricsRegistry()
        family = registry.counter("polls_total", "polls", ("result",))
        with pytest.raises(ConfigurationError):
            family.inc()


class TestGauges:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("fleet_nodes")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x", "help text")
        second = registry.counter("x")
        assert first is second
        assert len(registry) == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_labelname_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", "h", ("a",))
        with pytest.raises(ConfigurationError):
            registry.counter("x", "h", ("b",))

    def test_families_sorted_and_get(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.gauge("alpha")
        assert [family.name for family in registry.families()] == ["alpha", "zeta"]
        assert registry.get("alpha").kind == "gauge"
        assert registry.get("missing") is None
        assert "zeta" in registry


class TestHistogramBuckets:
    def test_boundary_value_lands_in_its_le_bucket(self):
        # Prometheus le semantics: an observation equal to a bound
        # belongs to that bound's bucket.
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 5.0))
        child = hist._default_child()
        hist.observe(1.0)
        assert child.bucket_counts == [1, 0, 0, 0]
        hist.observe(1.5)
        assert child.bucket_counts == [1, 1, 0, 0]
        hist.observe(5.0)
        assert child.bucket_counts == [1, 1, 1, 0]

    def test_overflow_goes_to_inf_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(99.0)
        child = hist._default_child()
        assert child.bucket_counts == [0, 0, 1]
        assert child.cumulative_buckets() == [(1.0, 0), (2.0, 0), (float("inf"), 1)]

    def test_cumulative_buckets_are_monotone_and_end_at_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        child = hist._default_child()
        cumulative = child.cumulative_buckets()
        counts = [count for _bound, count in cumulative]
        assert counts == sorted(counts)
        assert cumulative[-1] == (float("inf"), child.count) == (float("inf"), 5)

    def test_sum_and_mean(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        child = hist._default_child()
        assert child.sum == 6.0
        assert child.mean == 2.0

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestHistogramQuantiles:
    def test_exact_below_reservoir_size(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in range(100):
            hist.observe(float(value))
        child = hist._default_child()
        assert child.quantile(0.0) == 0.0
        assert child.quantile(0.5) == 50.0
        assert child.quantile(1.0) == 99.0

    def test_empty_histogram_quantile_is_zero(self):
        registry = MetricsRegistry()
        assert registry.histogram("h")._default_child().quantile(0.5) == 0.0

    def test_out_of_range_quantile_rejected(self):
        registry = MetricsRegistry()
        child = registry.histogram("h")._default_child()
        with pytest.raises(ConfigurationError):
            child.quantile(1.5)

    def test_reservoir_windows_recent_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for _ in range(RESERVOIR_SIZE):
            hist.observe(1.0)
        for _ in range(RESERVOIR_SIZE):
            hist.observe(100.0)
        child = hist._default_child()
        # The ring buffer now holds only the recent window.
        assert child.quantile(0.5) == 100.0
        assert child.count == 2 * RESERVOIR_SIZE


class TestExemplars:
    def _hist(self):
        registry = MetricsRegistry()
        return registry.histogram(
            "wall_seconds", buckets=(0.1, 1.0, 10.0)
        )._default_child()

    def test_latest_exemplar_wins_per_bucket(self):
        child = self._hist()
        child.observe(0.5, exemplar={"trace_id": 1, "span_id": 10})
        child.observe(0.6, exemplar={"trace_id": 2, "span_id": 20})
        child.observe(0.7)  # no exemplar: does not clobber
        assert child.exemplars == {
            1: {"trace_id": 2, "span_id": 20, "value": 0.6},
        }

    def test_bucket_bound(self):
        child = self._hist()
        assert child.bucket_bound(0) == 0.1
        assert child.bucket_bound(2) == 10.0
        assert child.bucket_bound(3) == float("inf")

    def test_exemplar_for_quantile_prefers_own_bucket(self):
        child = self._hist()
        for _ in range(99):
            child.observe(0.5, exemplar={"trace_id": 1, "span_id": 1})
        child.observe(5.0, exemplar={"trace_id": 2, "span_id": 2})
        # p99 lands in the (1, 10] bucket: its own exemplar wins.
        assert child.exemplar_for_quantile(0.99)["trace_id"] == 2
        # p50 lands in the (0.1, 1] bucket.
        assert child.exemplar_for_quantile(0.5)["trace_id"] == 1

    def test_exemplar_for_quantile_falls_back_above_then_below(self):
        child = self._hist()
        child.observe(0.5)  # p-anything bucket has no exemplar
        child.observe(5.0, exemplar={"trace_id": 9, "span_id": 9})
        assert child.exemplar_for_quantile(0.5)["trace_id"] == 9

        below = self._hist()
        below.observe(5.0)
        below.observe(0.05, exemplar={"trace_id": 7, "span_id": 7})
        assert below.exemplar_for_quantile(0.99)["trace_id"] == 7

    def test_empty_histogram_has_no_exemplar(self):
        assert self._hist().exemplar_for_quantile(0.99) is None

    def test_family_observe_passes_exemplar_through(self):
        registry = MetricsRegistry()
        family = registry.histogram("wall_seconds", buckets=(1.0,))
        family.observe(0.5, exemplar={"trace_id": 3, "span_id": 4})
        assert family._default_child().exemplars[0]["trace_id"] == 3


class TestNullRegistry:
    def test_absorbs_everything(self):
        NULL_REGISTRY.counter("x").labels(a="b").inc()
        NULL_REGISTRY.gauge("y").set(3)
        NULL_REGISTRY.histogram("z").observe(1.0)
        NULL_REGISTRY.histogram("z").observe(
            1.0, exemplar={"trace_id": 1, "span_id": 2}
        )
        assert NULL_REGISTRY.counter("x").value == 0.0
        assert NULL_REGISTRY.families() == []
        assert NULL_REGISTRY.get("x") is None
        assert len(NULL_REGISTRY) == 0
        assert "x" not in NULL_REGISTRY


class TestCardinalityGuard:
    def test_overflow_collapses_into_one_cell(self):
        registry = MetricsRegistry(max_label_sets=3)
        family = registry.counter("polls_total", "polls", ("agent",))
        for index in range(5):
            family.labels(agent=f"agent-{index}").inc()
        # Three real children plus the shared overflow cell.
        assert family.overflowed_label_sets == 2
        overflow = family.labels(agent=OVERFLOW_LABEL_VALUE)
        assert overflow.value == 2.0

    def test_existing_label_sets_keep_working_at_cap(self):
        registry = MetricsRegistry(max_label_sets=2)
        family = registry.counter("polls_total", "polls", ("agent",))
        family.labels(agent="a").inc()
        family.labels(agent="b").inc()
        family.labels(agent="a").inc(5)  # known set: unaffected by the cap
        assert family.labels(agent="a").value == 6.0
        assert family.overflowed_label_sets == 0

    def test_registry_reports_overflowing_families(self):
        registry = MetricsRegistry(max_label_sets=1)
        clean = registry.counter("ok_total", "ok", ("agent",))
        clean.labels(agent="a").inc()
        noisy = registry.gauge("age_seconds", "age", ("agent",))
        noisy.labels(agent="a").set(1)
        noisy.labels(agent="b").set(2)
        assert registry.label_overflow() == {"age_seconds": 1}

    def test_unlabeled_families_are_never_capped(self):
        registry = MetricsRegistry(max_label_sets=1)
        registry.counter("a_total").inc()
        registry.counter("b_total").inc()
        assert registry.label_overflow() == {}

    def test_null_registry_reports_no_overflow(self):
        assert NULL_REGISTRY.label_overflow() == {}

    def test_default_cap_is_generous(self):
        registry = MetricsRegistry()
        family = registry.counter("polls_total", "polls", ("agent",))
        assert family.max_label_sets == DEFAULT_MAX_LABEL_SETS
