"""Tests for span tracing against the simulated clock."""

import pytest

from repro.common.clock import SimClock
from repro.obs.tracing import NULL_TRACER, SpanTracer


class TestNesting:
    def test_parent_child_linkage(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.children == [inner]
        assert tracer.roots == [outer]

    def test_siblings_share_parent(self):
        tracer = SpanTracer()
        with tracer.span("poll"):
            with tracer.span("challenge"):
                pass
            with tracer.span("quote_verify"):
                pass
        root = tracer.last_trace()
        assert [child.name for child in root.children] == [
            "challenge", "quote_verify",
        ]

    def test_separate_roots_get_separate_traces(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        first, second = tracer.roots
        assert first.trace_id != second.trace_id

    def test_current_tracks_the_stack(self):
        tracer = SpanTracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_exception_still_closes_and_records(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.current is None
        root = tracer.last_trace()
        assert root.name == "outer"
        assert root.wall_end is not None
        assert root.children[0].wall_end is not None


class TestSimClock:
    def test_sim_duration_follows_bound_clock(self):
        clock = SimClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("work") as span:
            clock.advance_by(120.0)
        assert span.sim_start == 0.0
        assert span.sim_end == 120.0
        assert span.sim_duration == 120.0
        assert span.wall_duration >= 0.0

    def test_bind_clock_after_construction(self):
        tracer = SpanTracer()
        clock = SimClock()
        clock.advance_by(5.0)
        tracer.bind_clock(clock)
        with tracer.span("work") as span:
            pass
        assert span.sim_start == 5.0

    def test_unbound_clock_reads_zero(self):
        tracer = SpanTracer()
        with tracer.span("work") as span:
            pass
        assert span.sim_start == 0.0 and span.sim_end == 0.0


class TestAttributes:
    def test_constructor_and_set_attribute(self):
        tracer = SpanTracer()
        with tracer.span("poll", agent="a1") as span:
            span.set_attribute("ok", True)
        assert span.attributes == {"agent": "a1", "ok": True}

    def test_find_and_walk(self):
        tracer = SpanTracer()
        with tracer.span("poll"):
            with tracer.span("challenge"):
                with tracer.span("quote"):
                    pass
        root = tracer.last_trace()
        assert [span.name for span in root.walk()] == ["poll", "challenge", "quote"]
        assert root.find("quote").name == "quote"
        assert root.find("missing") is None


class TestAggregation:
    def test_aggregate_counts_per_name(self):
        tracer = SpanTracer()
        for _ in range(3):
            with tracer.span("poll"):
                with tracer.span("challenge"):
                    pass
        stats = tracer.aggregate()
        assert stats["poll"].count == 3
        assert stats["challenge"].count == 3
        assert stats["poll"].wall_total >= stats["poll"].wall_mean

    def test_root_cap_drops_oldest(self):
        tracer = SpanTracer(max_roots=2)
        for index in range(4):
            with tracer.span(f"r{index}"):
                pass
        assert [root.name for root in tracer.roots] == ["r2", "r3"]
        assert tracer.dropped_roots == 2


class TestNullTracer:
    def test_null_span_is_a_context_manager(self):
        with NULL_TRACER.span("anything", a=1) as span:
            span.set_attribute("b", 2)
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.last_trace() is None
        assert NULL_TRACER.aggregate() == {}
        assert list(NULL_TRACER.iter_spans()) == []
