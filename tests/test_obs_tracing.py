"""Tests for span tracing against the simulated clock."""

import pytest

from repro.common.clock import SimClock
from repro.obs.tracing import (
    NULL_TRACER,
    SpanTracer,
    exemplar_of,
    format_traceparent,
    parse_traceparent,
)


class TestNesting:
    def test_parent_child_linkage(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.children == [inner]
        assert tracer.roots == [outer]

    def test_siblings_share_parent(self):
        tracer = SpanTracer()
        with tracer.span("poll"):
            with tracer.span("challenge"):
                pass
            with tracer.span("quote_verify"):
                pass
        root = tracer.last_trace()
        assert [child.name for child in root.children] == [
            "challenge", "quote_verify",
        ]

    def test_separate_roots_get_separate_traces(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        first, second = tracer.roots
        assert first.trace_id != second.trace_id

    def test_current_tracks_the_stack(self):
        tracer = SpanTracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_exception_still_closes_and_records(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.current is None
        root = tracer.last_trace()
        assert root.name == "outer"
        assert root.wall_end is not None
        assert root.children[0].wall_end is not None


class TestSimClock:
    def test_sim_duration_follows_bound_clock(self):
        clock = SimClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("work") as span:
            clock.advance_by(120.0)
        assert span.sim_start == 0.0
        assert span.sim_end == 120.0
        assert span.sim_duration == 120.0
        assert span.wall_duration >= 0.0

    def test_bind_clock_after_construction(self):
        tracer = SpanTracer()
        clock = SimClock()
        clock.advance_by(5.0)
        tracer.bind_clock(clock)
        with tracer.span("work") as span:
            pass
        assert span.sim_start == 5.0

    def test_unbound_clock_reads_zero(self):
        tracer = SpanTracer()
        with tracer.span("work") as span:
            pass
        assert span.sim_start == 0.0 and span.sim_end == 0.0


class TestAttributes:
    def test_constructor_and_set_attribute(self):
        tracer = SpanTracer()
        with tracer.span("poll", agent="a1") as span:
            span.set_attribute("ok", True)
        assert span.attributes == {"agent": "a1", "ok": True}

    def test_find_and_walk(self):
        tracer = SpanTracer()
        with tracer.span("poll"):
            with tracer.span("challenge"):
                with tracer.span("quote"):
                    pass
        root = tracer.last_trace()
        assert [span.name for span in root.walk()] == ["poll", "challenge", "quote"]
        assert root.find("quote").name == "quote"
        assert root.find("missing") is None


class TestAggregation:
    def test_aggregate_counts_per_name(self):
        tracer = SpanTracer()
        for _ in range(3):
            with tracer.span("poll"):
                with tracer.span("challenge"):
                    pass
        stats = tracer.aggregate()
        assert stats["poll"].count == 3
        assert stats["challenge"].count == 3
        assert stats["poll"].wall_total >= stats["poll"].wall_mean

    def test_root_cap_drops_oldest(self):
        tracer = SpanTracer(max_roots=2)
        for index in range(4):
            with tracer.span(f"r{index}"):
                pass
        assert [root.name for root in tracer.roots] == ["r2", "r3"]
        assert tracer.dropped_roots == 2


class TestErrorStatus:
    def test_exception_marks_span_error(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("bad")
        root = tracer.last_trace()
        assert root.status == "error"
        assert root.attributes["error.type"] == "ValueError"
        inner = root.children[0]
        assert inner.status == "error"
        assert inner.attributes["error.type"] == "ValueError"

    def test_clean_exit_stays_ok(self):
        tracer = SpanTracer()
        with tracer.span("work"):
            pass
        assert tracer.last_trace().status == "ok"


class TestTraceparent:
    def test_format_parse_roundtrip(self):
        tracer = SpanTracer()
        with tracer.span("poll") as span:
            header = format_traceparent(span)
        assert header == f"00-{span.trace_id:032x}-{span.span_id:016x}-01"
        assert parse_traceparent(header) == (span.trace_id, span.span_id)

    def test_format_of_nothing_is_none(self):
        assert format_traceparent(None) is None
        with NULL_TRACER.span("x") as null_span:
            assert format_traceparent(null_span) is None

    @pytest.mark.parametrize("bad", [
        None, "", "garbage", "00-abc-def-01",
        "01-" + "0" * 31 + "1-" + "0" * 15 + "1-01",  # wrong version
        "00-" + "0" * 32 + "-" + "0" * 15 + "1-01",   # zero trace id
        "00-" + "0" * 31 + "1-" + "0" * 16 + "-01",   # zero span id
        "00-" + "z" * 32 + "-" + "0" * 15 + "1-01",   # non-hex
        "00-" + "0" * 30 + "1-" + "0" * 15 + "1-01",  # short trace id
    ])
    def test_malformed_traceparent_rejected(self, bad):
        assert parse_traceparent(bad) is None

    def test_exemplar_of(self):
        tracer = SpanTracer()
        with tracer.span("poll") as span:
            pass
        assert exemplar_of(span) == {
            "trace_id": span.trace_id, "span_id": span.span_id,
        }
        assert exemplar_of(None) is None
        with NULL_TRACER.span("x") as null_span:
            assert exemplar_of(null_span) is None


class TestRemoteContext:
    def test_honest_context_joins_the_open_trace(self):
        """A traceparent naming a live local span re-attaches to it."""
        tracer = SpanTracer()
        with tracer.span("verifier.challenge") as challenge:
            header = format_traceparent(challenge)
            with tracer.remote_context(header):
                with tracer.span("agent.attest") as attest:
                    pass
        assert attest.parent_id == challenge.span_id
        assert attest.trace_id == challenge.trace_id
        assert challenge.children == [attest]
        assert "traceparent.resolved" not in attest.attributes

    def test_boundary_hides_local_spans(self):
        """Inside a boundary, `current` is what a remote process sees."""
        tracer = SpanTracer()
        with tracer.span("verifier.challenge") as challenge:
            with tracer.remote_context(format_traceparent(challenge)):
                assert tracer.current is None
                with tracer.span("agent.attest") as attest:
                    assert tracer.current is attest
            assert tracer.current is challenge

    def test_forged_context_stays_detached(self):
        """A valid-shaped traceparent naming no live span never grafts."""
        tracer = SpanTracer()
        with tracer.span("victim") as victim:
            forged = f"00-{victim.trace_id:032x}-{9999:016x}-01"
            with tracer.remote_context(forged):
                with tracer.span("agent.attest") as attest:
                    pass
            assert victim.children == []
        assert attest.trace_id == victim.trace_id
        assert attest.parent_id == 9999
        assert attest.attributes["traceparent.resolved"] is False

    def test_absent_context_yields_fresh_flagged_trace(self):
        tracer = SpanTracer()
        with tracer.span("verifier.challenge") as challenge:
            with tracer.remote_context(None):
                with tracer.span("agent.attest") as attest:
                    pass
            assert challenge.children == []
        assert attest.trace_id != challenge.trace_id
        assert attest.parent_id is None
        assert attest.attributes["traceparent.resolved"] is False

    def test_detached_roots_are_recorded(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.remote_context("tampered-garbage"):
                with tracer.span("remote"):
                    pass
        names = [root.name for root in tracer.roots]
        assert names == ["remote", "outer"]


class TestStoreAndDropHooks:
    def test_finished_roots_feed_the_store(self):
        ingested = []

        class FakeStore:
            def ingest(self, root):
                ingested.append(root.name)

        tracer = SpanTracer(store=FakeStore())
        with tracer.span("poll"):
            with tracer.span("challenge"):
                pass
        assert ingested == ["poll"]

    def test_on_drop_fires_per_evicted_root(self):
        drops = []
        tracer = SpanTracer(max_roots=2, on_drop=lambda: drops.append(1))
        for index in range(5):
            with tracer.span(f"r{index}"):
                pass
        assert len(drops) == 3
        assert tracer.dropped_roots == 3


class TestNullTracer:
    def test_null_span_is_a_context_manager(self):
        with NULL_TRACER.span("anything", a=1) as span:
            span.set_attribute("b", 2)
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.last_trace() is None
        assert NULL_TRACER.aggregate() == {}
        assert list(NULL_TRACER.iter_spans()) == []

    def test_null_span_state_is_immutable(self):
        """The shared singleton cannot be cross-contaminated."""
        with NULL_TRACER.span("a") as span:
            with pytest.raises(TypeError):
                span.attributes["leak"] = 1
            with pytest.raises(AttributeError):
                span.children.append(object())
        assert span.attributes == {}
        assert span.children == ()
        assert span.status == "ok"

    def test_null_remote_context_is_a_noop(self):
        with NULL_TRACER.remote_context("00-" + "1" * 32 + "-" + "1" * 16 + "-01"):
            with NULL_TRACER.span("inside"):
                pass
        assert NULL_TRACER.roots == []
