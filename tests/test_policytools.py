"""Tests for the policy diff/statistics/lint tooling."""

from repro.common.hexutil import sha256_hex
from repro.keylime.policy import IBM_STYLE_EXCLUDES, RuntimePolicy
from repro.keylime.policytools import (
    diff_policies,
    lint_excludes,
    policy_statistics,
)


def _policy(entries: dict[str, bytes], excludes=()) -> RuntimePolicy:
    policy = RuntimePolicy(excludes=list(excludes))
    for path, content in entries.items():
        policy.add_digest(path, sha256_hex(content))
    return policy


class TestDiff:
    def test_identical_policies_empty_diff(self):
        a = _policy({"/usr/bin/ls": b"ls"})
        b = _policy({"/usr/bin/ls": b"ls"})
        diff = diff_policies(a, b)
        assert diff.is_empty

    def test_added_and_removed_paths(self):
        old = _policy({"/usr/bin/ls": b"ls", "/usr/bin/rm": b"rm"})
        new = _policy({"/usr/bin/ls": b"ls", "/usr/bin/cat": b"cat"})
        diff = diff_policies(old, new)
        assert diff.added_paths == ("/usr/bin/cat",)
        assert diff.removed_paths == ("/usr/bin/rm",)

    def test_changed_digests(self):
        old = _policy({"/usr/bin/ls": b"v1"})
        new = _policy({"/usr/bin/ls": b"v2"})
        diff = diff_policies(old, new)
        assert diff.changed_paths == ("/usr/bin/ls",)

    def test_update_window_digest_addition_is_a_change(self):
        old = _policy({"/usr/bin/ls": b"v1"})
        new = _policy({"/usr/bin/ls": b"v1"})
        new.add_digest("/usr/bin/ls", sha256_hex(b"v2"))
        diff = diff_policies(old, new)
        assert diff.changed_paths == ("/usr/bin/ls",)

    def test_exclude_changes(self):
        old = _policy({}, excludes=[r"^/tmp(/.*)?$"])
        new = _policy({}, excludes=[r"^/opt(/.*)?$"])
        diff = diff_policies(old, new)
        assert diff.added_excludes == (r"^/opt(/.*)?$",)
        assert diff.removed_excludes == (r"^/tmp(/.*)?$",)

    def test_summary_mentions_counts(self):
        old = _policy({"/a": b"1"})
        new = _policy({"/b": b"2"})
        assert "+1 paths" in diff_policies(old, new).summary()


class TestStatistics:
    def test_counts(self):
        policy = _policy({
            "/usr/bin/ls": b"ls",
            "/usr/bin/cat": b"cat",
            "/usr/sbin/sshd": b"sshd",
        }, excludes=[r"^/tmp(/.*)?$"])
        policy.add_digest("/usr/bin/ls", sha256_hex(b"ls-v2"))
        stats = policy_statistics(policy)
        assert stats.paths == 3
        assert stats.digests == 4
        assert stats.multi_digest_paths == 1
        assert stats.excludes == 1
        assert stats.size_bytes > 0

    def test_top_directories(self):
        policy = _policy({
            "/usr/bin/a": b"a", "/usr/bin/b": b"b", "/usr/sbin/c": b"c",
        })
        stats = policy_statistics(policy)
        assert stats.top_directories[0] == ("/usr/bin", 2)

    def test_empty_policy(self):
        stats = policy_statistics(RuntimePolicy())
        assert stats.paths == 0
        assert stats.top_directories == ()


class TestLint:
    def test_ibm_style_excludes_flagged(self):
        """The study's own policy trips the linter -- that is the point."""
        policy = RuntimePolicy(excludes=list(IBM_STYLE_EXCLUDES))
        warnings = lint_excludes(policy)
        flagged = {warning.target for warning in warnings}
        assert "/tmp" in flagged
        assert "/var/tmp" in flagged
        assert "/usr/local" in flagged

    def test_mitigated_policy_cleaner(self):
        from repro.mitigations import apply_m1_keylime_policy

        policy = RuntimePolicy(excludes=list(IBM_STYLE_EXCLUDES))
        apply_m1_keylime_policy(policy)
        flagged = {warning.target for warning in lint_excludes(policy)}
        assert "/tmp" not in flagged
        assert "/var/tmp" not in flagged

    def test_benign_excludes_not_flagged(self):
        policy = RuntimePolicy(excludes=[r"^/var/log(/.*)?$"])
        assert lint_excludes(policy) == []

    def test_invalid_regex_flagged(self):
        policy = RuntimePolicy()
        policy.excludes.append("([unclosed")  # bypass compile-on-add
        warnings = lint_excludes(policy)
        assert warnings and warnings[0].target == "<invalid>"

    def test_warning_describe(self):
        policy = RuntimePolicy(excludes=[r"^/tmp(/.*)?$"])
        warning = lint_excludes(policy)[0]
        assert "/tmp" in warning.describe()


class TestPolicyFromImaLog:
    def test_bootstrap_covers_measured_files(self, machine):
        from repro.keylime.policytools import policy_from_ima_log

        machine.install_file("/usr/bin/tool", b"tool", executable=True)
        machine.exec_file("/usr/bin/tool")
        policy = policy_from_ima_log(machine.require_booted().log)
        assert policy.covers_path("/usr/bin/tool")
        assert not policy.covers_path("boot_aggregate")

    def test_bootstrapped_policy_attests_green(self, machine):
        from repro.keylime.policytools import policy_from_ima_log

        machine.install_file("/usr/bin/tool", b"tool", executable=True)
        machine.exec_file("/usr/bin/tool")
        policy = policy_from_ima_log(machine.require_booted().log)
        from repro.keylime.policy import EntryVerdict

        for entry in machine.require_booted().log:
            verdict, failure = policy.evaluate_entry(entry)
            assert failure is None

    def test_violations_not_allowlisted(self, machine):
        from repro.keylime.policytools import policy_from_ima_log

        machine.require_booted().record_violation("/usr/bin/vi")
        policy = policy_from_ima_log(machine.require_booted().log)
        assert policy.line_count() == 0

    def test_excluded_paths_skipped(self, machine):
        from repro.keylime.policytools import policy_from_ima_log

        machine.install_file("/tmp/x", b"x", executable=True)
        machine.exec_file("/tmp/x")
        policy = policy_from_ima_log(
            machine.require_booted().log, excludes=(r"^/tmp(/.*)?$",)
        )
        assert not policy.covers_path("/tmp/x")

    def test_bootstrap_rots_after_update(self, machine):
        """The method's known limit: the paper's FP mechanism."""
        from repro.keylime.policy import EntryVerdict
        from repro.keylime.policytools import policy_from_ima_log

        machine.install_file("/usr/bin/tool", b"v1", executable=True)
        machine.exec_file("/usr/bin/tool")
        policy = policy_from_ima_log(machine.require_booted().log)
        machine.install_file("/usr/bin/tool", b"v2", executable=True)
        entry = machine.exec_file("/usr/bin/tool").entries[0]
        verdict, failure = policy.evaluate_entry(entry)
        assert verdict is EntryVerdict.HASH_MISMATCH


class TestFastPathLint:
    def test_wildcard_leading_pattern_flagged(self):
        policy = RuntimePolicy()
        policy.add_exclude(r".*\.cache$")
        warnings = [w for w in lint_excludes(policy) if w.target == "<fast-path>"]
        assert len(warnings) == 1
        assert "anywhere" in warnings[0].reason

    def test_anchored_wildcard_also_flagged(self):
        policy = RuntimePolicy()
        policy.add_exclude(r"^.*/tmp$")
        warnings = [w for w in lint_excludes(policy) if w.target == "<fast-path>"]
        assert len(warnings) == 1

    def test_unanchored_literal_flagged(self):
        policy = RuntimePolicy()
        policy.add_exclude(r"/var/log(/.*)?$")
        warnings = [w for w in lint_excludes(policy) if w.target == "<fast-path>"]
        assert len(warnings) == 1
        assert "anchor" in warnings[0].reason

    def test_anchored_literal_clean(self):
        policy = RuntimePolicy(excludes=[r"^/var/log(/.*)?$"])
        assert [w for w in lint_excludes(policy) if w.target == "<fast-path>"] == []

    def test_fast_path_coverage_on_ibm_policy(self):
        from repro.keylime.policytools import fast_path_coverage

        policy = RuntimePolicy(excludes=list(IBM_STYLE_EXCLUDES))
        fast, fallback = fast_path_coverage(policy)
        assert (fast, fallback) == (5, 1)  # only the /home regex falls back
