"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro.attacks import AttackMode
from repro.attacks.botnets import Mirai
from repro.common.clock import days, hours
from repro.experiments.testbed import build_testbed
from repro.keylime.verifier import AgentState
from repro.mitigations import apply_all

from tests.conftest import small_config


class TestContinuousAttestationLifecycle:
    def test_week_of_green_attestation(self):
        """Dynamic policy + controlled updates -> a week with zero FPs."""
        testbed = build_testbed(small_config("week"))
        for day in range(1, 6):
            testbed.stream.generate_day(day)
        testbed.orchestrator.schedule_cycles(start_day=1, n_cycles=5)
        testbed.verifier.start_polling(testbed.agent_id, 3600.0)
        testbed.scheduler.every(
            days(1), lambda: testbed.workload.daily(5), start=hours(12)
        )
        testbed.scheduler.run_until(days(6))
        results = testbed.verifier.results_of(testbed.agent_id)
        assert results and all(result.ok for result in results)
        assert testbed.verifier.state_of(testbed.agent_id) is AgentState.ATTESTING

    def test_tamper_detected_within_one_poll(self):
        testbed = build_testbed(small_config("tamper"))
        assert testbed.poll().ok
        testbed.machine.install_file("/usr/bin/ls", b"TROJAN", executable=True)
        testbed.machine.exec_file("/usr/bin/ls")
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].policy_failure.path == "/usr/bin/ls"

    def test_reboot_cycle_stays_green(self):
        testbed = build_testbed(small_config("reboot"))
        for _ in range(3):
            testbed.workload.daily(3)
            assert testbed.poll().ok
            testbed.machine.reboot()
            testbed.scheduler.clock.advance_by(60.0)
        assert testbed.poll().ok

    def test_kernel_update_end_to_end(self):
        """A new kernel flows: release -> mirror -> policy -> reboot -> green."""
        from repro.distro.workload import ReleaseStreamConfig

        config = small_config("kernel-e2e")
        config.stream = ReleaseStreamConfig(
            mean_packages_per_day=2.0, sd_packages_per_day=1.0,
            mean_exec_files_per_package=4.0, kernel_release_every_days=2,
        )
        testbed = build_testbed(config)
        old_kernel = testbed.machine.current_kernel
        for day in range(1, 4):
            testbed.stream.generate_day(day)
        testbed.orchestrator.schedule_cycles(start_day=1, n_cycles=3)
        testbed.verifier.start_polling(testbed.agent_id, 3600.0)
        testbed.scheduler.run_until(days(4))
        assert testbed.machine.current_kernel != old_kernel
        results = testbed.verifier.results_of(testbed.agent_id)
        assert all(result.ok for result in results)

    def test_static_policy_rots_dynamic_does_not(self):
        """The paper's core comparison on one identical update stream."""
        outcomes = {}
        for mode in ("static", "dynamic"):
            config = small_config("rot")
            config.policy_mode = mode
            config.continue_on_failure = True
            testbed = build_testbed(config)
            testbed.stream.generate_day(1)
            if mode == "dynamic":
                testbed.orchestrator.schedule_cycles(start_day=2, n_cycles=1)
            else:
                def unattended():
                    testbed.archive.apply_releases_until(testbed.scheduler.clock.now)
                    report = testbed.apt.upgrade_from(
                        testbed.archive.latest_index(), source="official"
                    )
                    if not report.is_empty:
                        testbed.workload.exec_updated_files(report)

                testbed.scheduler.call_at(days(2) + hours(5), unattended)
            testbed.verifier.start_polling(testbed.agent_id, 3600.0)
            testbed.scheduler.run_until(days(3))
            outcomes[mode] = sum(
                1 for result in testbed.verifier.results_of(testbed.agent_id)
                if not result.ok
            )
        assert outcomes["dynamic"] == 0
        assert outcomes["static"] > 0


class TestAttackDetectionEndToEnd:
    def test_attack_between_polls_detected(self):
        testbed = build_testbed(small_config("attack-e2e"))
        testbed.verifier.start_polling(testbed.agent_id, 600.0)
        testbed.scheduler.run_until(1800.0)
        Mirai().run(testbed.machine, AttackMode.BASIC)
        testbed.scheduler.run_until(3600.0)
        assert testbed.verifier.state_of(testbed.agent_id) is AgentState.FAILED
        failing = [
            failure.policy_failure.path
            for failure in testbed.verifier.failures_of(testbed.agent_id)
            if failure.policy_failure
        ]
        assert "/usr/bin/dvrHelper" in failing

    def test_adaptive_attack_invisible_end_to_end(self):
        testbed = build_testbed(small_config("evade-e2e"))
        testbed.verifier.start_polling(testbed.agent_id, 600.0)
        testbed.scheduler.run_until(1800.0)
        Mirai().run(testbed.machine, AttackMode.ADAPTIVE)
        testbed.scheduler.run_until(7200.0)
        assert testbed.verifier.state_of(testbed.agent_id) is AgentState.ATTESTING
        assert testbed.verifier.failures_of(testbed.agent_id) == []

    def test_mitigations_close_the_gap_live(self):
        testbed = build_testbed(small_config("mitigate-e2e"))
        apply_all(testbed.machine, testbed.verifier, testbed.policy)
        testbed.verifier.start_polling(testbed.agent_id, 600.0)
        testbed.scheduler.run_until(1800.0)
        Mirai().run(testbed.machine, AttackMode.ADAPTIVE)
        testbed.scheduler.run_until(3600.0)
        failing = [
            failure.policy_failure.path
            for failure in testbed.verifier.failures_of(testbed.agent_id)
            if failure.policy_failure
        ]
        assert "/dev/shm/dvrHelper" in failing

    def test_p2_exploit_end_to_end(self):
        """Self-induced FP halts polling; backdoor sails through."""
        from repro.attacks.problems import p2_blind_verifier

        testbed = build_testbed(small_config("p2-e2e"))
        testbed.verifier.start_polling(testbed.agent_id, 600.0)
        testbed.scheduler.run_until(1200.0)
        p2_blind_verifier(testbed.machine)
        testbed.scheduler.run_until(2400.0)  # verifier halts here
        assert testbed.verifier.state_of(testbed.agent_id) is AgentState.FAILED
        testbed.machine.install_file("/usr/bin/backdoor", b"bd", executable=True)
        testbed.machine.exec_file("/usr/bin/backdoor")
        testbed.scheduler.run_until(7200.0)
        failing = [
            failure.policy_failure.path
            for failure in testbed.verifier.failures_of(testbed.agent_id)
            if failure.policy_failure
        ]
        assert "/usr/bin/backdoor" not in failing


class TestSnapEndToEnd:
    def test_snap_fp_and_scrub_fix(self):
        from repro.distro.snap import install_snap
        from repro.dynpolicy.generator import DynamicPolicyGenerator
        from repro.keylime.policy import build_policy_from_machine

        testbed = build_testbed(small_config("snap-e2e"))
        snap = install_snap(testbed.machine, "core20", 1974, ["usr/bin/app"])
        policy = build_policy_from_machine(testbed.machine)
        testbed.tenant.push_policy(testbed.agent_id, policy)
        assert testbed.poll().ok

        snap.run(testbed.machine, "usr/bin/app")
        result = testbed.poll()
        assert not result.ok  # truncated path: the SNAP false positive

        # Fix: scrub prefixes, restart attestation.
        DynamicPolicyGenerator.scrub_snap_prefixes(policy)
        testbed.tenant.resolve_failure(testbed.agent_id, policy)
        assert testbed.poll().ok
