"""Tests for tick-budget accounting, saturation detection and the planner."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import Scheduler, days
from repro.common.events import EventLog
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import build_base_system
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.faults import chaos_profile
from repro.keylime.fleet import Fleet
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.obs import runtime as obs_runtime
from repro.obs.capacity import (
    SaturationDetector,
    TickBudgetAccountant,
    capacity_pairs_from_store,
    fit_capacity,
    model_from_store,
    plan_capacity,
    render_capacity_plan,
)
from repro.obs.health import HealthWatch
from repro.obs.metrics import MetricsRegistry
from repro.obs.rules import ShareRule
from repro.obs.tsdb import TsdbStore
from repro.tpm.device import TpmManufacturer

POLL = 600.0


@pytest.fixture
def fresh_runtime():
    previous = obs_runtime.get()
    telemetry = obs_runtime.activate(clock=None)
    yield telemetry
    if previous.enabled:
        obs_runtime.activate(previous)
    else:
        obs_runtime.deactivate()


class TestTickBudgetAccountant:
    def _tick(self, acct, registry, now, busy, n=3):
        return acct.observe_tick(
            now, wall_seconds=busy, registered=n, polled=n,
            registry=registry, injected_delay_seconds=0.0,
        )

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            TickBudgetAccountant(budget=0.0)
        acct = TickBudgetAccountant()
        with pytest.raises(ValueError):
            acct.configure(budget=-1.0)

    def test_budget_defaults_to_interval(self):
        acct = TickBudgetAccountant()
        acct.configure(interval=1800.0)
        assert acct.budget == 1800.0
        # An explicit budget is not overwritten by a later interval.
        acct2 = TickBudgetAccountant(budget=2.0)
        acct2.configure(interval=1800.0)
        assert acct2.budget == 2.0

    def test_no_budget_means_no_utilization_and_no_overruns(self):
        acct = TickBudgetAccountant()
        record = self._tick(acct, MetricsRegistry(), 0.0, busy=5.0)
        assert record.utilization is None
        assert not record.overrun
        assert acct.overruns == 0

    def test_saturation_fires_on_third_consecutive_overrun(self):
        events = EventLog()
        registry = MetricsRegistry()
        acct = TickBudgetAccountant(budget=1.0, events=events)
        acct.configure(interval=POLL)
        self._tick(acct, registry, 600.0, busy=0.5)
        for at in (1200.0, 1800.0, 2400.0):
            self._tick(acct, registry, at, busy=2.0)
        assert acct.overruns == 3
        assert acct.saturated and acct.saturated_since == 2400.0
        fired = [
            record for record in events.records_between(0.0, 1e9)
            if record.kind == "fleet.saturated"
        ]
        assert [record.time for record in fired] == [2400.0]
        assert fired[0].details["consecutive_overruns"] == 3
        assert registry.get("fleet_saturated").value == 1.0
        assert registry.get("fleet_tick_overruns_total").value == 3.0

        # One in-budget tick clears the state and says for how long.
        self._tick(acct, registry, 3000.0, busy=0.5)
        assert not acct.saturated
        cleared = [
            record for record in events.records_between(0.0, 1e9)
            if record.kind == "fleet.saturation_cleared"
        ]
        assert len(cleared) == 1
        assert cleared[0].details["saturated_seconds"] == 600.0
        assert registry.get("fleet_saturated").value == 0.0

    def test_interrupted_overrun_run_never_saturates(self):
        events = EventLog()
        registry = MetricsRegistry()
        acct = TickBudgetAccountant(budget=1.0, events=events)
        for index, busy in enumerate((2.0, 2.0, 0.5, 2.0, 2.0, 0.5)):
            self._tick(acct, registry, 600.0 * (index + 1), busy=busy)
        assert acct.overruns == 4
        assert not acct.saturated
        assert not [
            record for record in events.records_between(0.0, 1e9)
            if record.kind == "fleet.saturated"
        ]

    def test_metric_families_written(self):
        registry = MetricsRegistry()
        acct = TickBudgetAccountant(budget=1.0, timer="my-timer")
        acct.configure(interval=POLL)
        acct.observe_tick(
            600.0, wall_seconds=2.0, registered=5, polled=4, skipped=1,
            registry=registry, injected_delay_seconds=0.5,
        )
        assert registry.get("fleet_ticks_total").value == 1.0
        assert registry.get("fleet_tick_busy_seconds_total").value == 2.5
        assert registry.get("fleet_polled_agents_total").value == 4.0
        assert registry.get("fleet_tick_budget_seconds_total").value == 1.0
        assert registry.get("fleet_tick_utilization").value == 2.5
        depth = registry.get("fleet_tick_queue_depth")
        assert {
            labels["phase"]: child.value for labels, child in depth.samples()
        } == {"registered": 5.0, "polled": 4.0, "skipped": 1.0}
        timers = registry.get("fleet_timer_overruns_total")
        assert {
            labels["timer"]: child.value for labels, child in timers.samples()
        } == {"my-timer": 1.0}

    def test_lag_measured_against_interval(self):
        registry = MetricsRegistry()
        acct = TickBudgetAccountant(budget=10.0)
        acct.configure(interval=POLL)
        self._tick(acct, registry, 600.0, busy=0.1)
        record = self._tick(acct, registry, 1500.0, busy=0.1)
        assert record.lag_seconds == pytest.approx(300.0)

    def test_chaos_delay_folds_into_busy_time(self):
        registry = MetricsRegistry()
        registry.histogram(
            "transport_injected_delay_seconds", "injected",
        ).observe(3.0)
        acct = TickBudgetAccountant(budget=1.0)
        record = acct.observe_tick(
            600.0, wall_seconds=0.25, registered=2, polled=2,
            registry=registry,
        )
        assert record.delay_seconds == 3.0
        assert record.busy_seconds == 3.25
        assert record.overrun
        # Only the *delta* counts on the next tick.
        follow = acct.observe_tick(
            1200.0, wall_seconds=0.25, registered=2, polled=2,
            registry=registry,
        )
        assert follow.delay_seconds == 0.0

    def test_model_and_pairs_from_records(self):
        acct = TickBudgetAccountant(budget=10.0)
        registry = MetricsRegistry()
        for index, n in enumerate((2, 4, 8)):
            acct.observe_tick(
                600.0 * (index + 1), wall_seconds=0.01 * n,
                registered=n, polled=n, registry=registry,
                injected_delay_seconds=0.0,
            )
        assert acct.pairs() == [(2.0, 0.02), (4.0, 0.04), (8.0, 0.08)]
        model = acct.model()
        assert model.per_node_seconds == pytest.approx(0.01, rel=1e-6)


@given(
    wall=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    delay=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    budget=st.floats(min_value=1e-3, max_value=100.0, allow_nan=False),
)
@settings(max_examples=200, deadline=None)
def test_utilization_in_unit_interval_iff_no_overrun(wall, delay, budget):
    """The accounting invariant: overrun <=> utilization > 1."""
    acct = TickBudgetAccountant(budget=budget)
    record = acct.observe_tick(
        0.0, wall_seconds=wall, registered=1, polled=1,
        registry=MetricsRegistry(), injected_delay_seconds=delay,
    )
    assert record.busy_seconds == pytest.approx(wall + delay)
    if record.overrun:
        assert record.utilization > 1.0
    else:
        assert 0.0 <= record.utilization <= 1.0


class TestSaturationDetector:
    def test_silent_until_saturated(self):
        detector = SaturationDetector()
        assert detector.observe(600.0, saturated=False) is None

    def test_alert_shape(self):
        detector = SaturationDetector()
        alert = detector.observe(
            1800.0, saturated=True, utilization=1.8,
            overruns=3.0, ticks=3.0, budget=2.0,
        )
        assert alert.rule == "health.verifier_saturated"
        assert alert.severity == "critical"
        assert alert.detail["utilization"] == 1.8
        assert alert.detail["overruns_in_window"] == 3
        assert alert.detail["budget_seconds"] == 2.0


class TestCapacityModel:
    def test_fit_recovers_a_linear_cost(self):
        model = fit_capacity(
            (n, 0.005 + 0.002 * n) for n in (2, 4, 8, 16, 32)
        )
        assert model.fixed_seconds == pytest.approx(0.005, rel=1e-6)
        assert model.per_node_seconds == pytest.approx(0.002, rel=1e-6)
        assert model.r_squared == pytest.approx(1.0)
        assert model.max_nodes(0.025) == pytest.approx(10.0)

    def test_no_samples_yields_no_model(self):
        assert fit_capacity([]) is None

    def test_single_node_count_attributes_everything_marginal(self):
        model = fit_capacity([(4, 0.04), (4, 0.044), (4, 0.036)])
        assert model.fixed_seconds == 0.0
        assert model.per_node_seconds == pytest.approx(0.01)

    def test_negative_intercept_refits_through_origin(self):
        # Noisy measurements whose naive fit has fixed cost < 0.
        model = fit_capacity([(1, 0.0005), (2, 0.004), (3, 0.0075)])
        assert model.fixed_seconds == 0.0
        assert model.per_node_seconds > 0.0

    def test_what_if_answers(self):
        model = fit_capacity((n, 0.01 * n) for n in (1, 2, 4))
        assert model.max_nodes(1.0) == pytest.approx(100.0)
        assert model.max_nodes(0.0) == 0.0
        assert model.nodes_per_second(1.0, verifiers=2) == pytest.approx(200.0)
        assert model.verifiers_needed(400, 1.0) == 5  # 80 nodes/verifier @ 80%
        assert model.time_to_saturation(50.0, 10.0, 1.0) == pytest.approx(5.0)
        assert model.time_to_saturation(150.0, 10.0, 1.0) == 0.0
        assert math.isinf(model.time_to_saturation(50.0, 0.0, 1.0))

    def test_zero_marginal_cost_is_unbounded(self):
        model = fit_capacity((n, 0.01) for n in (1, 2, 4))
        assert math.isinf(model.max_nodes(1.0))
        assert model.verifiers_needed(10_000, 1.0) == 1

    def test_plan_record_is_json_shaped(self):
        import json

        model = fit_capacity((n, 0.01 * n) for n in (1, 2, 4))
        plan = plan_capacity(
            model, 1.0, verifiers=2, current_nodes=50.0,
            growth_per_day=10.0, target_nodes=400.0,
        )
        record = plan.to_record()
        assert record["type"] == "capacity_plan"
        assert record["fleet_capacity"] == pytest.approx(200.0)
        json.dumps(record)
        text = render_capacity_plan(plan)
        assert "max sustainable nodes/verifier" in text
        assert "time to saturation" in text


class TestStoreFit:
    def _store_with_ticks(self, per_node=0.01, source=None):
        """Scrape-shaped counters: 1 tick per scrape, n nodes per tick."""
        store = TsdbStore()
        labels = {"source": source} if source else None
        ticks = busy = polled = 0.0
        at = 0.0
        for n in (2, 4, 8, 4, 2):
            at += 600.0
            ticks += 1
            polled += n
            busy += per_node * n
            store.append("fleet_ticks_total", labels, ticks, at, kind="counter")
            store.append(
                "fleet_polled_agents_total", labels, polled, at, kind="counter"
            )
            store.append(
                "fleet_tick_busy_seconds_total", labels, busy, at,
                kind="counter",
            )
        return store

    def test_pairs_walk_scrape_increases(self):
        store = self._store_with_ticks()
        pairs = capacity_pairs_from_store(store)
        assert [n for n, _ in pairs] == [4.0, 8.0, 4.0, 2.0]
        assert [busy for _, busy in pairs] == pytest.approx(
            [0.04, 0.08, 0.04, 0.02]
        )

    def test_model_from_store(self):
        model = model_from_store(self._store_with_ticks(per_node=0.02))
        assert model.per_node_seconds == pytest.approx(0.02, rel=1e-6)
        assert model.max_nodes(1.0) == pytest.approx(50.0)

    def test_sources_fit_independently_then_pool(self):
        store = self._store_with_ticks(source="shard-0")
        other = self._store_with_ticks(source="shard-1")
        for series in other.series():
            for at, value in series.raw:
                store.append(
                    series.name, dict(series.labels), value, at,
                    kind=series.kind,
                )
        pairs = capacity_pairs_from_store(store)
        assert len(pairs) == 8  # 4 per federated source

    def test_store_without_tick_series_has_no_pairs(self):
        assert capacity_pairs_from_store(TsdbStore()) == []


class TestShareRule:
    def test_shares_sum_to_one_over_positive_groups(self):
        store = TsdbStore()
        for at, (replay, quote) in ((600.0, (3.0, 1.0)), (1200.0, (9.0, 3.0))):
            store.append(
                "verifier_stage_wall_seconds_sum", {"stage": "log_replay"},
                replay, at, kind="counter",
            )
            store.append(
                "verifier_stage_wall_seconds_sum", {"stage": "quote_verify"},
                quote, at, kind="counter",
            )
        rule = ShareRule(
            "fleet:stage_cost_share", "verifier_stage_wall_seconds_sum",
            window=3600.0, by=("stage",),
        )
        assert rule.evaluate(store, 1200.0) == 2
        shares = {
            series.label("stage"): series.instant(1200.0)
            for series in store.select("fleet:stage_cost_share")
        }
        assert shares["log_replay"] == pytest.approx(0.75)
        assert shares["quote_verify"] == pytest.approx(0.25)

    def test_idle_window_writes_nothing(self):
        store = TsdbStore()
        rule = ShareRule(
            "fleet:stage_cost_share", "verifier_stage_wall_seconds_sum",
            window=3600.0, by=("stage",),
        )
        assert rule.evaluate(store, 1200.0) == 0
        assert store.select("fleet:stage_cost_share") == []


def _delay_saturated_fleet(n_nodes=3, tick_budget=2.0):
    """A small fleet whose every batch tick overruns its budget.

    The ``delay`` chaos profile injects 0.6-1.8s per wire leg with
    probability 1 (always under the 2s attempt timeout, so every
    delivery succeeds).  With 3 nodes x 2 legs x >=0.6s a tick's
    injected delay alone is >=3.6s against a 2s budget -- saturation by
    construction, deterministic in sim-time.
    """
    rng = SeededRng("saturation-e2e")
    scheduler = Scheduler()
    events = EventLog()
    telemetry = obs_runtime.get()
    telemetry.bind_clock(scheduler.clock)
    archive = UbuntuArchive()
    base = build_base_system(
        rng.fork("base"), n_filler_packages=6, mean_exec_files=3,
    )
    archive.seed(base)
    mirror = LocalMirror(archive, events=events)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, events=events, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(
        list(IBM_STYLE_EXCLUDES), {"5.15.0-91-generic"}
    )
    plan = chaos_profile("delay", rng.fork("chaos"))
    fleet = Fleet(
        n_nodes, mirror, TpmManufacturer("Sat", rng.fork("tpm")),
        scheduler, rng.fork("fleet"), policy,
        events=events, fault_plan=plan, tick_budget=tick_budget,
    )
    return fleet, scheduler


class TestChaosDelaySaturation:
    """End to end: injected wire latency saturates the batch scheduler,
    the accountant flags it, the health stack alerts and burns the
    freshness-headroom SLO, and the incident correlator files it."""

    @pytest.fixture(scope="class")
    def run(self):
        previous = obs_runtime.get()
        obs_runtime.activate(clock=None)
        try:
            fleet, scheduler = _delay_saturated_fleet()
            watch = HealthWatch(tick_interval=POLL)
            fleet.start_polling(POLL)
            fleet.watch_health(watch, POLL)
            scheduler.run_until(days(1))
            end = scheduler.clock.now
            watch.finalize(end)
            yield fleet, watch, end
        finally:
            if previous.enabled:
                obs_runtime.activate(previous)
            else:
                obs_runtime.deactivate()

    def test_nodes_stay_green_through_the_delays(self, run):
        fleet, _, _ = run
        assert set(fleet.status().values()) == {"attesting"}

    def test_every_tick_overran(self, run):
        fleet, _, _ = run
        acct = fleet.poll_scheduler.accounting
        assert acct.ticks > 0
        assert acct.overruns == acct.ticks
        assert all(record.overrun for record in acct.records)
        assert all(
            record.delay_seconds >= 3.6 for record in acct.records
        )

    def test_saturation_event_at_the_deterministic_tick(self, run):
        fleet, _, end = run
        fired = [
            record
            for record in fleet.events.records_between(0.0, end)
            if record.kind == "fleet.saturated"
        ]
        # Overrun ticks at 600/1200/1800 => detector (3 consecutive)
        # fires exactly at the third tick, once for the whole run.
        assert [record.time for record in fired] == [3 * POLL]
        assert fired[0].details["timer"] == "fleet-poll-batch"
        assert fleet.poll_scheduler.accounting.saturated

    def test_health_alert_and_incident(self, run):
        _, watch, _ = run
        rules = [alert.rule for alert in watch.engine.history]
        assert "health.verifier_saturated" in rules
        first = next(
            alert for alert in watch.engine.history
            if alert.rule == "health.verifier_saturated"
        )
        assert first.time == 3 * POLL  # same monitor tick the gauge rose
        assert any(
            report.alert["rule"] == "health.verifier_saturated"
            for report in watch.incidents
        )

    def test_freshness_headroom_slo_burns(self, run):
        _, watch, _ = run
        headroom = watch.monitor.slos.freshness_headroom
        assert headroom is not None
        assert headroom.total > 0
        assert headroom.total_bad == headroom.total  # every tick overran
        assert "slo.freshness_headroom.burn" in {
            alert.rule for alert in watch.engine.history
        }

    def test_accounting_metrics_reached_the_registry(self, run):
        fleet, watch, _ = run
        registry = watch.monitor.registry
        assert registry.get("fleet_saturated").value == 1.0
        ticks = registry.get("fleet_ticks_total").value
        assert ticks == fleet.poll_scheduler.accounting.ticks
        assert registry.get("fleet_tick_utilization").value > 1.0
