"""Tests for the verifier's attestation loop."""

import pytest

from repro.common.clock import Scheduler
from repro.common.rng import SeededRng
from repro.keylime.agent import KeylimeAgent
from repro.keylime.policy import build_policy_from_machine
from repro.keylime.registrar import KeylimeRegistrar
from repro.keylime.verifier import (
    AgentState,
    FailureKind,
    KeylimeVerifier,
)
from repro.kernelsim.kernel import Machine
from repro.tpm.device import TpmManufacturer


@pytest.fixture()
def rig(machine: Machine, manufacturer: TpmManufacturer):
    scheduler = Scheduler(machine.clock)
    registrar = KeylimeRegistrar([manufacturer.root_certificate])
    verifier = KeylimeVerifier(registrar, scheduler, SeededRng("verifier-tests"))
    agent = KeylimeAgent("a1", machine)
    registrar.register(agent)
    machine.install_file("/usr/bin/tool", b"tool-v1", executable=True)
    policy = build_policy_from_machine(machine)
    verifier.add_agent(agent, policy)
    return machine, agent, verifier, policy, scheduler


class TestHappyPath:
    def test_clean_poll(self, rig):
        machine, agent, verifier, policy, _ = rig
        result = verifier.poll("a1")
        assert result.ok
        assert result.entries_processed == 1  # boot aggregate

    def test_incremental_polls(self, rig):
        machine, agent, verifier, policy, _ = rig
        verifier.poll("a1")
        machine.exec_file("/usr/bin/tool")
        result = verifier.poll("a1")
        assert result.ok
        assert result.entries_processed == 1  # only the new entry

    def test_no_new_entries(self, rig):
        machine, agent, verifier, policy, _ = rig
        verifier.poll("a1")
        result = verifier.poll("a1")
        assert result.ok
        assert result.entries_processed == 0

    def test_unknown_agent_rejected(self, rig):
        _, _, verifier, _, _ = rig
        from repro.common.errors import NotFoundError

        with pytest.raises(NotFoundError):
            verifier.poll("ghost")


class TestPolicyFailures:
    def test_unknown_executable_fails(self, rig):
        machine, agent, verifier, policy, _ = rig
        machine.install_file("/usr/bin/evil", b"evil", executable=True)
        machine.exec_file("/usr/bin/evil")
        result = verifier.poll("a1")
        assert not result.ok
        assert result.failures[0].kind is FailureKind.POLICY
        assert result.failures[0].policy_failure.path == "/usr/bin/evil"

    def test_hash_mismatch_fails(self, rig):
        machine, agent, verifier, policy, _ = rig
        machine.install_file("/usr/bin/tool", b"tool-v2", executable=True)
        machine.exec_file("/usr/bin/tool")
        result = verifier.poll("a1")
        assert not result.ok
        assert "hash mismatch" in result.failures[0].detail

    def test_failure_halts_agent(self, rig):
        machine, agent, verifier, policy, _ = rig
        machine.install_file("/usr/bin/evil", b"x", executable=True)
        machine.exec_file("/usr/bin/evil")
        verifier.poll("a1")
        assert verifier.state_of("a1") is AgentState.FAILED

    def test_halt_skips_rest_of_batch(self, rig):
        """P2: evaluation stops at the first failing entry."""
        machine, agent, verifier, policy, _ = rig
        machine.install_file("/usr/bin/evil1", b"1", executable=True)
        machine.install_file("/usr/bin/evil2", b"2", executable=True)
        machine.exec_file("/usr/bin/evil1")
        machine.exec_file("/usr/bin/evil2")
        result = verifier.poll("a1")
        assert not result.ok
        assert len(result.failures) == 1
        assert result.entries_skipped == 1

    def test_continue_on_failure_sees_everything(self, rig):
        """M2: the whole batch is evaluated and polling continues."""
        machine, agent, verifier, policy, _ = rig
        verifier.continue_on_failure = True
        machine.install_file("/usr/bin/evil1", b"1", executable=True)
        machine.install_file("/usr/bin/evil2", b"2", executable=True)
        machine.exec_file("/usr/bin/evil1")
        machine.exec_file("/usr/bin/evil2")
        result = verifier.poll("a1")
        assert not result.ok
        assert len(result.failures) == 2
        assert verifier.state_of("a1") is AgentState.ATTESTING

    def test_restart_replays_from_scratch(self, rig):
        """An unresolved failure halts the restarted attestation again."""
        machine, agent, verifier, policy, _ = rig
        machine.install_file("/usr/bin/evil", b"x", executable=True)
        machine.exec_file("/usr/bin/evil")
        verifier.poll("a1")
        verifier.restart_attestation("a1")
        result = verifier.poll("a1")
        assert not result.ok
        assert verifier.state_of("a1") is AgentState.FAILED

    def test_excluded_paths_do_not_fail(self, rig):
        machine, agent, verifier, policy, _ = rig
        machine.install_file("/tmp/whatever", b"x", executable=True)
        machine.exec_file("/tmp/whatever")
        assert verifier.poll("a1").ok


class TestLogIntegrity:
    def test_tampered_log_line_detected(self, rig, monkeypatch):
        machine, agent, verifier, policy, _ = rig
        machine.exec_file("/usr/bin/tool")
        real_attest = agent.attest

        def tampered_attest(nonce, offset=0, **kwargs):
            evidence = real_attest(nonce, offset, **kwargs)
            lines = list(evidence.ima_log_lines)
            if lines:
                # Swap the recorded path on the last entry.
                lines[-1] = lines[-1].rsplit(" ", 1)[0] + " /usr/bin/benign"
            return type(evidence)(
                quote=evidence.quote, ima_log_lines=tuple(lines),
                offset=evidence.offset, total_entries=evidence.total_entries,
            )

        monkeypatch.setattr(agent, "attest", tampered_attest)
        result = verifier.poll("a1")
        assert not result.ok
        assert result.failures[0].kind is FailureKind.LOG_TAMPERED

    def test_dropped_log_entry_detected(self, rig, monkeypatch):
        machine, agent, verifier, policy, _ = rig
        machine.exec_file("/usr/bin/tool")
        real_attest = agent.attest

        def truncating_attest(nonce, offset=0, **kwargs):
            evidence = real_attest(nonce, offset, **kwargs)
            return type(evidence)(
                quote=evidence.quote,
                ima_log_lines=evidence.ima_log_lines[:-1],
                offset=evidence.offset,
                total_entries=evidence.total_entries - 1,
            )

        monkeypatch.setattr(agent, "attest", truncating_attest)
        result = verifier.poll("a1")
        assert not result.ok
        assert result.failures[0].kind is FailureKind.PCR_MISMATCH

    def test_malformed_log_line_detected(self, rig, monkeypatch):
        machine, agent, verifier, policy, _ = rig
        real_attest = agent.attest

        def garbage_attest(nonce, offset=0, **kwargs):
            evidence = real_attest(nonce, offset, **kwargs)
            return type(evidence)(
                quote=evidence.quote,
                ima_log_lines=("garbage line",),
                offset=evidence.offset,
                total_entries=evidence.total_entries,
            )

        monkeypatch.setattr(agent, "attest", garbage_attest)
        result = verifier.poll("a1")
        assert not result.ok
        assert result.failures[0].kind is FailureKind.LOG_TAMPERED


class TestRebootHandling:
    def test_reboot_resets_replay(self, rig):
        machine, agent, verifier, policy, _ = rig
        machine.exec_file("/usr/bin/tool")
        assert verifier.poll("a1").ok
        machine.reboot()
        machine.exec_file("/usr/bin/tool")
        result = verifier.poll("a1")
        assert result.ok
        # boot aggregate + tool re-measured after reboot
        assert result.entries_processed == 2

    def test_multiple_reboots(self, rig):
        machine, agent, verifier, policy, _ = rig
        for _ in range(3):
            assert verifier.poll("a1").ok
            machine.reboot()
        assert verifier.poll("a1").ok


class TestPolling:
    def test_periodic_polling(self, rig):
        machine, agent, verifier, policy, scheduler = rig
        verifier.start_polling("a1", 10.0)
        scheduler.run_until(machine.clock.now + 35.0)
        assert len(verifier.results_of("a1")) == 3

    def test_polling_stops_after_failure(self, rig):
        """P2's operational half: no polls happen after the halt."""
        machine, agent, verifier, policy, scheduler = rig
        machine.install_file("/usr/bin/evil", b"x", executable=True)
        machine.exec_file("/usr/bin/evil")
        verifier.start_polling("a1", 10.0)
        scheduler.run_until(machine.clock.now + 55.0)
        results = verifier.results_of("a1")
        assert len(results) == 1  # the failing one; then silence
        assert not results[0].ok

    def test_stop_polling(self, rig):
        machine, agent, verifier, policy, scheduler = rig
        verifier.start_polling("a1", 10.0)
        scheduler.run_until(machine.clock.now + 15.0)
        verifier.stop_polling("a1")
        scheduler.run_until(machine.clock.now + 50.0)
        assert len(verifier.results_of("a1")) == 1
        assert verifier.state_of("a1") is AgentState.STOPPED

    def test_update_policy_applies_to_new_entries(self, rig):
        machine, agent, verifier, policy, _ = rig
        verifier.poll("a1")
        machine.install_file("/usr/bin/newtool", b"new", executable=True)
        machine.exec_file("/usr/bin/newtool")
        updated = build_policy_from_machine(machine)
        verifier.update_policy("a1", updated)
        assert verifier.poll("a1").ok
