"""Federated observatory runs and the seed-vs-TSDB equivalence proof."""

import pytest

from repro.common.clock import Scheduler, days, hours
from repro.common.events import EventLog
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import (
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
)
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.experiments.fleet_run import DEFAULT_KERNEL, ChaosInjection
from repro.experiments.observatory import run_federated_observatory
from repro.keylime.fleet import Fleet
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.obs import runtime as obs_runtime
from repro.obs.dashboard import render_top, top_frame_record
from repro.obs.health import HealthWatch
from repro.obs.rules import Observatory
from repro.tpm.device import TpmManufacturer

POLL = 1800.0


@pytest.fixture
def fresh_runtime():
    """Run each test under its own telemetry, restoring the previous."""
    previous = obs_runtime.get()
    yield
    if previous.enabled:
        obs_runtime.activate(previous)
    else:
        obs_runtime.deactivate()


class TestFederatedObservatory:
    @pytest.fixture(scope="class")
    def result(self):
        previous = obs_runtime.get()
        try:
            yield run_federated_observatory(
                seed="test-fed", n_shards=2, nodes_per_shard=2, n_days=1,
                n_filler_packages=8,
            )
        finally:
            if previous.enabled:
                obs_runtime.activate(previous)
            else:
                obs_runtime.deactivate()

    def test_two_independent_telemetry_runtimes(self, result):
        shard_a, shard_b = result.shards
        assert shard_a.telemetry is not shard_b.telemetry
        assert shard_a.telemetry.registry is not shard_b.telemetry.registry
        # Both registries actually recorded their own fleet's activity.
        for shard in result.shards:
            family = shard.telemetry.registry.get("verifier_polls_total")
            assert family is not None

    def test_snapshots_flow_through_the_json_wire(self, result):
        shard_a, shard_b = result.shards
        assert shard_a.snapshots_sent > shard_b.snapshots_sent > 0
        assert result.hub.source("shard-0").snapshots == shard_a.snapshots_sent
        assert result.hub.source("shard-1").snapshots == shard_b.snapshots_sent

    def test_hub_store_holds_both_sources(self, result):
        store = result.hub.store
        end = result.end_time
        for source in ("shard-0", "shard-1"):
            series = store.select("verifier_polls_total", source=source)
            assert series, f"no federated series for {source}"
            assert any(s.instant(end) for s in series)
        # Fleet-level recording rules collapse the source label.
        assert store.instant("fleet:poll_rate", None, end) is not None
        nodes = store.select("fleet:nodes", state="attesting")
        assert nodes and nodes[0].instant(end) == 4.0

    def test_staleness_reflects_staggered_cadence(self, result):
        ages = result.hub.staleness(result.end_time)
        assert set(ages) == {"shard-0", "shard-1"}
        assert all(age is not None for age in ages.values())

    def test_dashboard_renders_rollups_from_both_registries(self, result):
        frame = render_top(
            result.hub.store, result.end_time,
            result.hub.staleness(result.end_time), poll_interval=POLL,
        )
        assert "sources: 2 federated" in frame
        assert "shard-0" in frame and "shard-1" in frame
        assert "fleet: 4 nodes" in frame
        assert "shard-0/agent-node-000" in frame
        assert "shard-1/agent-node-000" in frame
        assert "tsdb:" in frame

    def test_top_frame_record_is_json_shaped(self, result):
        import json

        record = top_frame_record(
            result.hub.store, result.end_time,
            result.hub.staleness(result.end_time), POLL,
        )
        assert record["type"] == "top_frame"
        assert record["fleet_nodes"].get("attesting") == 4
        assert set(record["sources"]) == {"shard-0", "shard-1"}
        assert len(record["attestation_age_seconds"]) == 4
        json.dumps(record)  # must be serialisable as exported

    def test_shard_health_watches_ran_on_tsdb(self, result):
        for shard in result.shards:
            assert shard.observatory.collections > 0
            assert shard.watch.monitor.last_check is not None
            # The watch's SLO trackers are the TSDB-backed kind.
            from repro.obs.rules import TsdbSloTracker

            assert isinstance(
                shard.watch.monitor.slos.freshness, TsdbSloTracker)

    def test_previous_runtime_restored(self, result):
        assert obs_runtime.get() is not result.shards[0].telemetry


def _dual_watch_fleet_run(n_nodes=3, n_days=2, chaos=None):
    """One fleet run observed by BOTH monitor stacks simultaneously.

    The seed watch samples the live registry; the TSDB watch scrapes
    the same registry into a store at the top of the same tick and
    reads instants back.  One timeline, two evaluation paths -- any
    divergence in alert history is a real equivalence break, not run
    noise (wall-clock latencies differ between runs, so two separate
    runs could never prove this).
    """
    rng = SeededRng("equivalence")
    scheduler = Scheduler()
    events = EventLog()
    telemetry = obs_runtime.activate(clock=None)
    telemetry.bind_clock(scheduler.clock)

    archive = UbuntuArchive()
    base = build_base_system(
        rng.fork("base"), n_filler_packages=8, mean_exec_files=4.0,
        kernel_version=DEFAULT_KERNEL,
    )
    archive.seed(base)
    stream = SyntheticReleaseStream(
        archive, base, rng.fork("stream"),
        ReleaseStreamConfig(
            mean_packages_per_day=2.0, sd_packages_per_day=1.0,
            mean_exec_files_per_package=4.0, kernel_release_every_days=0,
        ),
    )
    mirror = LocalMirror(archive, events=events)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, events=events, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(list(IBM_STYLE_EXCLUDES), {DEFAULT_KERNEL})

    fault_plan = None
    retry_policy = None
    quarantine_after = 3
    if chaos is not None:
        node_ids = [f"agent-node-{i:03d}" for i in range(n_nodes)]
        fault_plan = chaos.build_plan(node_ids)
        retry_policy = chaos.build_retry_policy()
        quarantine_after = chaos.quarantine_after
    fleet = Fleet(
        n_nodes, mirror, TpmManufacturer("Infineon", rng.fork("tpm")),
        scheduler, rng.fork("fleet"), policy,
        events=events, kernel_version=DEFAULT_KERNEL,
        fault_plan=fault_plan, retry_policy=retry_policy,
        quarantine_after=quarantine_after,
    )

    seed_watch = HealthWatch(tick_interval=POLL)
    tsdb_watch = HealthWatch(tick_interval=POLL, observatory=Observatory())
    fleet.start_polling(POLL)
    # Registration order => tick order: polls, seed check, TSDB check.
    fleet.watch_health(seed_watch, POLL)
    fleet.watch_health(tsdb_watch, POLL)

    for day in range(1, n_days + 1):
        stream.generate_day(day - 1)
        scheduler.call_at(
            days(day) + hours(5.0),
            lambda: fleet.run_update_cycle(),
            label=f"update-day{day}",
        )
    scheduler.run_until(days(n_days + 1))
    end = scheduler.clock.now
    seed_watch.finalize(end)
    tsdb_watch.finalize(end)
    return seed_watch, tsdb_watch, end


class TestSeedVsTsdbEquivalence:
    """THE acceptance proof: detectors and SLO burn evaluated from TSDB
    recording-rule windows fire the same alerts -- same sim-times, same
    payload fields -- as the seed ad-hoc implementations."""

    @pytest.fixture(scope="class")
    def watches(self):
        previous = obs_runtime.get()
        try:
            yield _dual_watch_fleet_run(
                chaos=ChaosInjection(
                    profile="partition", chaos_seed="eq-chaos",
                    node_indices=(0,),
                ),
            )
        finally:
            if previous.enabled:
                obs_runtime.activate(previous)
            else:
                obs_runtime.deactivate()

    def test_alert_histories_identical(self, watches):
        seed_watch, tsdb_watch, _ = watches
        seed_alerts = [a.to_record() for a in seed_watch.engine.history]
        tsdb_alerts = [a.to_record() for a in tsdb_watch.engine.history]
        assert len(seed_alerts) > 0, "scenario must actually alert"
        assert seed_alerts == tsdb_alerts

    def test_gap_and_burn_rules_both_fired(self, watches):
        seed_watch, _, _ = watches
        rules = {a.rule for a in seed_watch.engine.history}
        assert "health.coverage_gap" in rules
        # The partitioned node burns poll-success budget, so at least
        # one SLO burn-rate rule fired through both stacks.
        assert any(rule.startswith("slo.") for rule in rules)

    def test_slo_window_counts_identical(self, watches):
        seed_watch, tsdb_watch, end = watches
        for seed_tracker, tsdb_tracker in zip(
            seed_watch.monitor.slos.all(), tsdb_watch.monitor.slos.all()
        ):
            assert seed_tracker.name == tsdb_tracker.name
            for window in (POLL, 6 * POLL, 86400.0, 7 * 86400.0):
                assert tsdb_tracker.window_counts(window, end) == \
                    seed_tracker.window_counts(window, end), \
                    f"{seed_tracker.name} window={window}"

    def test_active_alert_sets_identical(self, watches):
        seed_watch, tsdb_watch, _ = watches
        assert [a.key for a in seed_watch.engine.active()] == \
            [a.key for a in tsdb_watch.engine.active()]

    def test_incident_count_identical(self, watches):
        seed_watch, tsdb_watch, _ = watches
        assert len(seed_watch.incidents) == len(tsdb_watch.incidents)
