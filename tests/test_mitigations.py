"""Tests for mitigations M1-M4."""

import pytest

from repro.keylime.policy import IBM_STYLE_EXCLUDES, RuntimePolicy
from repro.kernelsim.ima import ImaPolicy
from repro.kernelsim.vfs import FilesystemType
from repro.mitigations import (
    MitigationSet,
    apply_all,
    apply_m1_keylime_policy,
    apply_m2_continue_polling,
    apply_m3_reevaluation,
    apply_m4_script_exec_control,
    mitigated_ima_policy,
)


class TestM1:
    def test_removes_tmp_excludes(self):
        policy = RuntimePolicy(excludes=list(IBM_STYLE_EXCLUDES))
        removed = apply_m1_keylime_policy(policy)
        assert r"^/tmp(/.*)?$" in removed
        assert not policy.is_excluded("/tmp/payload")

    def test_keeps_benign_excludes(self):
        policy = RuntimePolicy(excludes=list(IBM_STYLE_EXCLUDES))
        apply_m1_keylime_policy(policy)
        assert policy.is_excluded("/var/log/syslog")

    def test_idempotent(self):
        policy = RuntimePolicy(excludes=list(IBM_STYLE_EXCLUDES))
        apply_m1_keylime_policy(policy)
        assert apply_m1_keylime_policy(policy) == []

    def test_mitigated_ima_measures_tmpfs(self):
        policy = mitigated_ima_policy()
        assert not policy.excludes_fstype(FilesystemType.TMPFS)
        assert not policy.excludes_fstype(FilesystemType.PROC)
        assert not policy.excludes_fstype(FilesystemType.OVERLAYFS)

    def test_mitigated_ima_keeps_pure_pseudo_fs(self):
        policy = mitigated_ima_policy()
        assert policy.excludes_fstype(FilesystemType.SYSFS)
        assert policy.excludes_fstype(FilesystemType.SECURITYFS)

    def test_mitigated_ima_preserves_other_settings(self):
        base = ImaPolicy(re_evaluate_on_path_change=True)
        assert mitigated_ima_policy(base).re_evaluate_on_path_change


class TestM2M3M4:
    def test_m2_flips_verifier(self, small_testbed):
        apply_m2_continue_polling(small_testbed.verifier)
        assert small_testbed.verifier.continue_on_failure

    def test_m3_flips_machine_policy(self, machine):
        apply_m3_reevaluation(machine)
        assert machine.ima_policy.re_evaluate_on_path_change
        # The live engine consults the same object.
        assert machine.require_booted().policy.re_evaluate_on_path_change

    def test_m4_opts_in_interpreters(self, machine):
        apply_m4_script_exec_control(machine)
        assert machine.script_exec_control_enabled
        assert "/usr/bin/python3" in machine.opted_in_interpreters


class TestApplyAll:
    def test_apply_all_returns_full_set(self, small_testbed):
        mitigations = apply_all(
            small_testbed.machine, small_testbed.verifier, small_testbed.policy
        )
        assert mitigations == MitigationSet(
            m1_policy=True, m1_ima=True, m2_continue=True,
            m3_reevaluate=True, m4_script_control=True,
        )
        assert mitigations.describe() == "M1+M2+M3+M4"

    def test_describe_empty(self):
        assert MitigationSet().describe() == "none"

    def test_apply_all_takes_effect_on_live_engine(self, small_testbed):
        apply_all(small_testbed.machine, small_testbed.verifier, small_testbed.policy)
        machine = small_testbed.machine
        machine.install_file("/dev/shm/x", b"x", executable=True)
        result = machine.exec_file("/dev/shm/x")
        assert result.measured  # tmpfs now measured
