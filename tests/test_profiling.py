"""Tests for critical-path and self-time analysis over traces."""

from repro.obs.profiling import (
    SELF_LABEL,
    attribution,
    collapsed_stacks,
    collapsed_text,
    coverage,
    critical_path,
    diff_profiles,
    profile,
    render_critical_path,
    render_diff,
    render_profile,
    self_wall,
)
from repro.obs.tracing import Span


def _span(name, wall, children=(), trace_id=1, parent=None):
    span = Span(
        name=name, span_id=id(name) % 100_000, trace_id=trace_id,
        parent_id=parent, sim_start=0.0, wall_start=0.0,
        sim_end=0.0, wall_end=wall,
    )
    span.children = list(children)
    return span


def _poll_tree():
    """A poll whose wall time decomposes 10 = 6 + 3 + 1(self)."""
    challenge = _span("challenge", 6.0, [_span("agent.attest", 5.0)])
    replay = _span("log_replay", 3.0)
    return _span("verifier.poll", 10.0, [challenge, replay])


class TestSelfWall:
    def test_self_is_wall_minus_children(self):
        root = _poll_tree()
        assert self_wall(root) == 1.0
        assert self_wall(root.children[0]) == 1.0
        assert self_wall(root.children[1]) == 3.0

    def test_clamped_at_zero(self):
        over = _span("parent", 1.0, [_span("child", 2.0)])
        assert self_wall(over) == 0.0


class TestCriticalPath:
    def test_heaviest_child_chain(self):
        path = critical_path(_poll_tree())
        assert [step.name for step in path] == [
            "verifier.poll", "challenge", "agent.attest",
        ]
        assert path[0].share == 1.0
        assert path[1].share == 0.6
        assert path[2].share == 0.5

    def test_leaf_root_is_its_own_path(self):
        path = critical_path(_span("solo", 2.0))
        assert [step.name for step in path] == ["solo"]


class TestAttribution:
    def test_stages_plus_self_cover_the_root(self):
        root = _poll_tree()
        stages = attribution(root)
        assert stages == {"challenge": 6.0, "log_replay": 3.0, SELF_LABEL: 1.0}
        assert sum(stages.values()) == root.wall_duration
        assert coverage(root) == 1.0

    def test_repeated_stage_names_are_summed(self):
        root = _span(
            "poll", 10.0, [_span("challenge", 2.0), _span("challenge", 3.0)]
        )
        assert attribution(root)["challenge"] == 5.0

    def test_coverage_meets_the_95_percent_bar(self):
        """The acceptance criterion: >=95% of poll wall attributed."""
        assert coverage(_poll_tree()) >= 0.95


class TestProfile:
    def test_per_name_totals_and_critical_hits(self):
        entries = profile([_poll_tree(), _poll_tree()])
        assert entries["verifier.poll"].count == 2
        assert entries["verifier.poll"].total_wall == 20.0
        assert entries["verifier.poll"].self_wall == 2.0
        assert entries["verifier.poll"].on_critical_path == 2
        assert entries["agent.attest"].on_critical_path == 2
        assert entries["log_replay"].on_critical_path == 0
        assert entries["challenge"].mean_wall == 6.0

    def test_diff_sorted_by_self_time_movement(self):
        a = profile([_poll_tree()])
        slow_replay = _span("verifier.poll", 14.0, [
            _span("challenge", 6.0, [_span("agent.attest", 5.0)]),
            _span("log_replay", 7.0),
        ])
        b = profile([slow_replay])
        deltas = diff_profiles(a, b)
        assert deltas[0].name == "log_replay"
        assert deltas[0].delta_self == 4.0
        assert deltas[0].delta_total == 4.0
        by_name = {d.name: d for d in deltas}
        assert by_name["agent.attest"].delta_self == 0.0

    def test_diff_handles_one_sided_names(self):
        a = profile([_span("only.a", 1.0)])
        b = profile([_span("only.b", 2.0)])
        by_name = {d.name: d for d in diff_profiles(a, b)}
        assert by_name["only.a"].delta_self == -1.0
        assert by_name["only.b"].delta_self == 2.0


class TestCollapsedStacks:
    def test_folds_accumulate_self_micros(self):
        folds = collapsed_stacks([_poll_tree()])
        assert folds["verifier.poll"] == 1_000_000
        assert folds["verifier.poll;challenge"] == 1_000_000
        assert folds["verifier.poll;challenge;agent.attest"] == 5_000_000
        assert folds["verifier.poll;log_replay"] == 3_000_000

    def test_text_format(self):
        lines = collapsed_text([_poll_tree()]).splitlines()
        assert "verifier.poll;challenge;agent.attest 5000000" in lines
        assert all(len(line.rsplit(" ", 1)) == 2 for line in lines)

    def test_zero_self_spans_are_omitted(self):
        root = _span("parent", 1.0, [_span("child", 1.0)])
        assert "parent" not in collapsed_stacks([root])


class TestRendering:
    def test_render_critical_path_mentions_coverage(self):
        text = render_critical_path(_poll_tree())
        assert "coverage 100.0%" in text
        assert "agent.attest" in text
        assert SELF_LABEL in text

    def test_render_profile_and_diff(self):
        entries = profile([_poll_tree()])
        assert "verifier.poll" in render_profile(entries)
        deltas = diff_profiles(entries, entries)
        text = render_diff(deltas, a_label="before", b_label="after")
        assert "before" in text and "after" in text
        assert render_profile({}).endswith("(no spans)")
        assert render_diff([]).endswith("(no spans on either side)")
