"""Property tests for the consistent-hash ring and fleet rebalancing.

The ring's contract is what makes multi-verifier attestation safe to
reason about:

* **Determinism** -- placement is a pure function of ``(seed, members,
  key)``; same inputs, same ring fingerprint, zero RNG draws.
* **Totality** -- every key has exactly one live owner, always.
* **Minimal movement** -- a join moves only keys the new member
  attracts (every move targets the joiner); a leave moves only the
  leaver's range.  Movement stays within twice the fair share plus a
  small vnode-variance slack.
* **No coverage gap** -- a :class:`~repro.keylime.fleet.VerifierFleet`
  polls every agent exactly once per tick, before, during and after
  rebalancing, and the shared verdict cache keeps migrated agents warm
  (a rebalance adds zero cache misses).

Hypothesis drives the ring properties across seeds, membership sizes
and key sets; the fleet-level checks run on the small deterministic
rig from :mod:`repro.experiments.shardfleet`.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StateError
from repro.keylime.sharding import (
    ConsistentHashRing,
    shard_balance,
)
from repro.obs.capacity import CapacityModel

seeds = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=12
)
member_counts = st.integers(min_value=1, max_value=8)
key_counts = st.integers(min_value=0, max_value=40)


def _ring(seed: str, n_members: int) -> ConsistentHashRing:
    ring = ConsistentHashRing(seed)
    for index in range(n_members):
        ring.add(f"verifier-{index}")
    return ring


def _keys(count: int) -> list[str]:
    return [f"agent-node-{index:03d}" for index in range(count)]


class TestRingDeterminism:
    @given(seeds, member_counts, key_counts)
    def test_same_inputs_same_assignment_and_fingerprint(
        self, seed, n_members, n_keys
    ):
        keys = _keys(n_keys)
        first, second = _ring(seed, n_members), _ring(seed, n_members)
        assert first.assignment(keys) == second.assignment(keys)
        assert first.fingerprint(keys) == second.fingerprint(keys)

    @given(seeds, member_counts, key_counts)
    def test_membership_order_is_irrelevant(self, seed, n_members, n_keys):
        keys = _keys(n_keys)
        forward = _ring(seed, n_members)
        reversed_ring = ConsistentHashRing(seed)
        for index in reversed(range(n_members)):
            reversed_ring.add(f"verifier-{index}")
        assert forward.assignment(keys) == reversed_ring.assignment(keys)

    @given(seeds, key_counts)
    def test_different_seeds_differ(self, seed, n_keys):
        """Two seeds agreeing everywhere would mean the seed is dead
        weight; at 30+ keys a full collision is astronomically
        unlikely, so demand at least one difference."""
        keys = _keys(max(n_keys, 30))
        a = _ring(seed, 4).assignment(keys)
        b = _ring(seed + "-other", 4).assignment(keys)
        assert a != b or seed == seed + "-other"


class TestRingTotality:
    @given(seeds, member_counts, key_counts)
    def test_every_key_has_exactly_one_live_owner(
        self, seed, n_members, n_keys
    ):
        ring = _ring(seed, n_members)
        keys = _keys(n_keys)
        assignment = ring.assignment(keys)
        assert set(assignment) == set(keys)
        assert all(owner in ring.members for owner in assignment.values())
        assert sum(ring.shard_sizes(keys).values()) == len(keys)

    @given(seeds, key_counts)
    def test_owner_respects_among_restriction(self, seed, n_keys):
        ring = _ring(seed, 4)
        live = {"verifier-1", "verifier-3"}
        for key in _keys(max(n_keys, 1)):
            assert ring.owner(key, among=live) in live

    def test_empty_ring_refuses(self):
        ring = ConsistentHashRing("empty")
        with pytest.raises(StateError):
            ring.owner("agent-node-000")

    def test_membership_errors(self):
        ring = _ring("members", 2)
        with pytest.raises(StateError):
            ring.add("verifier-0")
        with pytest.raises(StateError):
            ring.remove("verifier-9")
        with pytest.raises(StateError):
            ring.owner("agent-node-000", among={"verifier-9"})


class TestMinimalMovement:
    @given(seeds, member_counts, key_counts)
    def test_join_moves_only_keys_landing_on_the_joiner(
        self, seed, n_members, n_keys
    ):
        keys = _keys(n_keys)
        ring = _ring(seed, n_members)
        before = ring.assignment(keys)
        plan = ring.plan_join(keys, "joiner")
        after = ring.assignment(keys)
        for move in plan.moves:
            assert move.target == "joiner"
            assert move.source == before[move.key]
        untouched = set(keys) - set(plan.moved_keys)
        for key in untouched:
            assert after[key] == before[key]
        # Twice the fair share plus vnode-variance slack (empirically
        # the worst over 40k seed/size combinations is under +5).
        assert len(plan.moves) <= 2.0 * len(keys) / (n_members + 1) + 6

    @given(seeds, st.integers(min_value=2, max_value=8), key_counts)
    def test_leave_moves_only_the_leavers_range(
        self, seed, n_members, n_keys
    ):
        keys = _keys(n_keys)
        ring = _ring(seed, n_members)
        before = ring.assignment(keys)
        leaver = "verifier-0"
        plan = ring.plan_leave(keys, leaver)
        after = ring.assignment(keys)
        assert set(plan.moved_keys) == {
            key for key, owner in before.items() if owner == leaver
        }
        for move in plan.moves:
            assert move.source == leaver
            assert move.target != leaver
        for key in set(keys) - set(plan.moved_keys):
            assert after[key] == before[key]

    @given(seeds, member_counts, key_counts)
    def test_join_then_leave_round_trips(self, seed, n_members, n_keys):
        keys = _keys(n_keys)
        ring = _ring(seed, n_members)
        fingerprint = ring.fingerprint(keys)
        ring.plan_join(keys, "joiner")
        ring.plan_leave(keys, "joiner")
        assert ring.fingerprint(keys) == fingerprint


class TestShardBalance:
    def test_even_split_is_one(self):
        assert shard_balance({"a": 5, "b": 5}) == 1.0

    def test_skew_drops_below_one(self):
        assert shard_balance({"a": 9, "b": 3}) == pytest.approx(6.0 / 9.0)

    def test_degenerate_inputs(self):
        assert shard_balance({}) == 0.0
        assert shard_balance({"a": 0, "b": 0}) == 0.0

    @given(st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(min_value=0, max_value=100),
        min_size=1,
    ))
    def test_bounded_in_unit_interval(self, sizes):
        value = shard_balance(sizes)
        assert 0.0 <= value <= 1.0


class TestCapacityIntegration:
    MODEL = CapacityModel(
        fixed_seconds=0.5, per_node_seconds=0.1, samples=10, r_squared=0.99
    )

    def test_sharded_tick_cost_is_the_largest_shard(self):
        cost = self.MODEL.sharded_tick_cost({"a": 10, "b": 4})
        assert cost == pytest.approx(self.MODEL.tick_cost(10))

    def test_sharded_max_nodes_scales_by_balance(self):
        base = self.MODEL.max_nodes(60.0)
        assert self.MODEL.sharded_max_nodes(60.0, 4) == pytest.approx(4 * base)
        assert self.MODEL.sharded_max_nodes(60.0, 4, balance=0.5) == (
            pytest.approx(2 * base)
        )
        assert self.MODEL.sharded_max_nodes(60.0, 0) == 0.0

    def test_sharded_speedup_caps_balance_at_one(self):
        assert self.MODEL.sharded_speedup(4, balance=2.0) == 4.0
        assert self.MODEL.sharded_speedup(3, balance=0.5) == 1.5


@pytest.fixture(scope="module")
def rig():
    from repro.experiments.shardfleet import build_shard_fleet

    return build_shard_fleet("sharding-props", 9, 3, fillers=2)


INTERVAL = 1800.0


def _tick(fleet, vfleet):
    fleet.scheduler.clock.advance_by(INTERVAL)
    return vfleet.poll_all()


class TestFleetNeverUnassigned:
    """Every tick polls every agent exactly once -- through joins,
    leaves and the shared-cache regression check.  Ordered steps on one
    module rig (each builds on the previous state)."""

    def test_initial_tick_covers_the_fleet(self, rig):
        fleet, vfleet = rig
        results = _tick(fleet, vfleet)
        assert sorted(results) == sorted(vfleet.agent_ids)
        assert all(result.ok for result in results.values())

    def test_join_keeps_every_agent_assigned(self, rig):
        fleet, vfleet = rig
        plan = vfleet.join("verifier-3")
        # The ring's authority and the shards' bookkeeping agree.
        for agent_id in vfleet.agent_ids:
            shard = vfleet.shard_of(agent_id)
            assert agent_id in vfleet.shards[shard].agents
        assert all(move.target == "verifier-3" for move in plan.moves)
        results = _tick(fleet, vfleet)
        assert sorted(results) == sorted(vfleet.agent_ids)

    def test_rebalance_adds_zero_verdict_cache_misses(self, rig):
        """The fleet-wide cache is generation-stamped, not per-shard:
        an agent migrated to a different verifier re-evaluates nothing
        the fleet already proved -- the regression that motivated
        sharing one cache across shards.  Forcing a full log re-replay
        on a migrated agent (restart_attestation resets its offset)
        must be all hits, zero new misses."""
        fleet, vfleet = rig
        _tick(fleet, vfleet)  # every entry warm in the shared cache
        cache = fleet.verdict_cache
        misses_before = cache.misses
        # Pick a joiner that actually attracts keys (a 9-key ring may
        # hand a given new member nothing): probe scratch copies.
        for index in range(4, 32):
            scratch = ConsistentHashRing(vfleet.ring.seed)
            for member in vfleet.ring.members:
                scratch.add(member)
            joiner = f"verifier-{index}"
            if scratch.plan_join(vfleet.agent_ids, joiner).moved_keys:
                break
        plan = vfleet.join(joiner)
        assert plan.moved_keys, "join must migrate at least one agent"
        results = _tick(fleet, vfleet)
        assert sorted(results) == sorted(vfleet.agent_ids)
        # Migration carried the replay offset: nothing re-evaluated.
        assert cache.misses == misses_before

        migrated = plan.moved_keys[0]
        verifier = vfleet.verifier_for(migrated)
        verifier.restart_attestation(migrated)
        hits_before = cache.hits
        results = _tick(fleet, vfleet)
        assert results[migrated].ok
        assert results[migrated].entries_processed > 0
        assert cache.misses == misses_before
        assert cache.hits > hits_before

    def test_leave_keeps_every_agent_assigned(self, rig):
        fleet, vfleet = rig
        plan = vfleet.leave("verifier-0")
        assert all(move.source == "verifier-0" for move in plan.moves)
        assert "verifier-0" not in vfleet.shards
        results = _tick(fleet, vfleet)
        assert sorted(results) == sorted(vfleet.agent_ids)
        assert all(result.ok for result in results.values())

    def test_balance_matches_the_module_function(self, rig):
        _, vfleet = rig
        sizes = vfleet.shard_sizes()
        assert vfleet.balance() == shard_balance(sizes)
        assert math.isclose(sum(sizes.values()), len(vfleet.agent_ids))
