"""Tests for the TPM device, EK/AK lifecycle, and quotes."""

import pytest

from repro.common.errors import StateError
from repro.common.hexutil import sha256_hex, zero_digest
from repro.crypto.certs import verify_chain
from repro.tpm.device import Tpm, TpmManufacturer
from repro.tpm.quote import QuoteVerificationError, pcr_selection_digest, verify_quote


@pytest.fixture()
def ak(tpm: Tpm):
    return tpm.create_ak()


class TestManufacturing:
    def test_devices_get_unique_names(self, manufacturer: TpmManufacturer):
        a = manufacturer.manufacture()
        b = manufacturer.manufacture()
        assert a.name != b.name

    def test_ek_certificate_chains_to_root(self, manufacturer: TpmManufacturer, tpm: Tpm):
        verify_chain([tpm.ek_certificate], [manufacturer.root_certificate])

    def test_ek_certificate_binds_ek_key(self, tpm: Tpm):
        assert tpm.ek_certificate.public_key.fingerprint() == tpm.ek_public.fingerprint()


class TestAttestationKeys:
    def test_ak_binding_verifies_with_ek(self, tpm: Tpm, ak):
        assert ak.verify_binding(tpm.ek_public)

    def test_ak_binding_fails_with_other_ek(self, manufacturer: TpmManufacturer, ak):
        other = manufacturer.manufacture()
        assert not ak.verify_binding(other.ek_public)

    def test_multiple_aks_are_distinct(self, tpm: Tpm):
        a = tpm.create_ak()
        b = tpm.create_ak()
        assert a.public.fingerprint() != b.public.fingerprint()


class TestQuoting:
    def test_quote_verifies(self, tpm: Tpm, ak):
        quote = tpm.quote(ak.public.fingerprint(), "nonce-1", [10])
        verify_quote(quote, ak.public, "nonce-1")

    def test_quote_covers_pcr_values(self, tpm: Tpm, ak):
        tpm.extend(10, sha256_hex(b"measurement"))
        quote = tpm.quote(ak.public.fingerprint(), "n", [10])
        assert quote.pcr_values[10] == tpm.read_pcr(10)
        assert quote.pcr_digest == pcr_selection_digest("sha256", quote.pcr_values)

    def test_wrong_nonce_rejected(self, tpm: Tpm, ak):
        quote = tpm.quote(ak.public.fingerprint(), "nonce-a", [10])
        with pytest.raises(QuoteVerificationError, match="nonce"):
            verify_quote(quote, ak.public, "nonce-b")

    def test_wrong_ak_rejected(self, tpm: Tpm, ak):
        other = tpm.create_ak()
        quote = tpm.quote(ak.public.fingerprint(), "n", [10])
        with pytest.raises(QuoteVerificationError, match="attestation key"):
            verify_quote(quote, other.public, "n")

    def test_tampered_pcr_value_rejected(self, tpm: Tpm, ak):
        quote = tpm.quote(ak.public.fingerprint(), "n", [10])
        tampered = type(quote)(
            bank_algorithm=quote.bank_algorithm,
            pcr_selection=quote.pcr_selection,
            pcr_values={10: "f" * 64},
            pcr_digest=quote.pcr_digest,
            nonce=quote.nonce,
            clock=quote.clock,
            reset_count=quote.reset_count,
            restart_count=quote.restart_count,
            ak_fingerprint=quote.ak_fingerprint,
            signature=quote.signature,
        )
        with pytest.raises(QuoteVerificationError, match="digest"):
            verify_quote(tampered, ak.public, "n")

    def test_unknown_ak_cannot_quote(self, tpm: Tpm):
        with pytest.raises(StateError, match="no attestation key"):
            tpm.quote("0" * 64, "n", [10])

    def test_quote_multiple_pcrs(self, tpm: Tpm, ak):
        quote = tpm.quote(ak.public.fingerprint(), "n", [0, 7, 10])
        assert quote.pcr_selection == (0, 7, 10)
        verify_quote(quote, ak.public, "n")

    def test_quote_includes_clock(self, tpm: Tpm, ak):
        tpm.tick(5000)
        quote = tpm.quote(ak.public.fingerprint(), "n", [10])
        assert quote.clock == 5000

    def test_clock_cannot_go_backwards(self, tpm: Tpm):
        with pytest.raises(StateError):
            tpm.tick(-1)


class TestReset:
    def test_reset_clears_pcrs(self, tpm: Tpm):
        tpm.extend(10, sha256_hex(b"m"))
        tpm.reset()
        assert tpm.read_pcr(10) == zero_digest("sha256")

    def test_reset_bumps_counter(self, tpm: Tpm, ak):
        before = tpm.quote(ak.public.fingerprint(), "n", [10]).reset_count
        tpm.reset()
        after = tpm.quote(ak.public.fingerprint(), "n2", [10]).reset_count
        assert after == before + 1

    def test_keys_survive_reset(self, tpm: Tpm, ak):
        tpm.reset()
        quote = tpm.quote(ak.public.fingerprint(), "n", [10])
        verify_quote(quote, ak.public, "n")

    def test_reset_zeroes_clock(self, tpm: Tpm, ak):
        tpm.tick(1000)
        tpm.reset()
        assert tpm.quote(ak.public.fingerprint(), "n", [10]).clock == 0

    def test_unknown_bank_rejected(self, tpm: Tpm):
        with pytest.raises(StateError):
            tpm.read_pcr(10, algorithm="sha384")
