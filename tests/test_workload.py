"""Tests for the synthetic release stream and benign workload."""

import pytest

from repro.common.clock import days
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.package import is_kernel_package
from repro.distro.workload import (
    BenignWorkload,
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
    essential_packages,
)


class TestBaseSystem:
    def test_essentials_include_interpreters(self):
        paths = {
            pf.path
            for pkg in essential_packages()
            for pf in pkg.files
        }
        assert "/usr/bin/python3" in paths
        assert "/bin/bash" in paths
        assert "/bin/sh" in paths

    def test_base_system_size_scales(self):
        rng = SeededRng(0)
        small = build_base_system(rng.fork("a"), n_filler_packages=10)
        large = build_base_system(rng.fork("b"), n_filler_packages=50)
        assert len(large) > len(small)

    def test_base_system_includes_kernel(self):
        base = build_base_system(SeededRng(0), n_filler_packages=5)
        assert any(is_kernel_package(pkg) for pkg in base)

    def test_base_system_deterministic(self):
        a = build_base_system(SeededRng(1), n_filler_packages=10)
        b = build_base_system(SeededRng(1), n_filler_packages=10)
        assert [pkg.key for pkg in a] == [pkg.key for pkg in b]

    def test_unique_package_names(self):
        base = build_base_system(SeededRng(0), n_filler_packages=50)
        names = [pkg.name for pkg in base]
        assert len(names) == len(set(names))


class TestReleaseStream:
    def _stream(self, config: ReleaseStreamConfig | None = None):
        archive = UbuntuArchive()
        base = build_base_system(SeededRng("base"), n_filler_packages=20)
        archive.seed(base)
        return archive, SyntheticReleaseStream(
            archive, base, SeededRng("stream"),
            config or ReleaseStreamConfig(
                mean_packages_per_day=5.0, sd_packages_per_day=5.0,
                mean_exec_files_per_package=6.0,
            ),
        )

    def test_release_scheduled_on_archive(self):
        archive, stream = self._stream()
        release = stream.generate_day(1)
        assert archive.releases_between(0.0, days(2)) == [release]

    def test_release_time_within_day(self):
        _, stream = self._stream()
        release = stream.generate_day(3)
        assert days(3) <= release.time < days(4)

    def test_deterministic(self):
        _, a = self._stream()
        _, b = self._stream()
        ra = a.generate_day(1)
        rb = b.generate_day(1)
        assert [p.key for p in ra.packages] == [p.key for p in rb.packages]

    def test_kernel_release_cadence(self):
        config = ReleaseStreamConfig(
            mean_packages_per_day=2.0, sd_packages_per_day=2.0,
            mean_exec_files_per_package=4.0, kernel_release_every_days=3,
        )
        _, stream = self._stream(config)
        releases = stream.generate_days(1, 6)
        kernel_days = [
            index + 1 for index, release in enumerate(releases)
            if any(is_kernel_package(pkg) for pkg in release.packages)
        ]
        assert kernel_days == [3, 6]

    def test_kernel_release_disabled(self):
        config = ReleaseStreamConfig(
            mean_packages_per_day=2.0, sd_packages_per_day=2.0,
            mean_exec_files_per_package=4.0, kernel_release_every_days=0,
        )
        _, stream = self._stream(config)
        releases = stream.generate_days(1, 6)
        assert not any(
            is_kernel_package(pkg) for release in releases for pkg in release.packages
        )

    def test_calibration_approaches_paper_stats(self):
        """With paper defaults, the long-run means land near Fig 4's."""
        archive = UbuntuArchive()
        base = build_base_system(SeededRng("cal"), n_filler_packages=60)
        archive.seed(base)
        stream = SyntheticReleaseStream(
            archive, base, SeededRng("cal-stream"), ReleaseStreamConfig()
        )
        releases = stream.generate_days(1, 200)
        counts = [len(release.packages_with_executables) for release in releases]
        mean = sum(counts) / len(counts)
        assert 10 < mean < 25  # paper: 16.5

    def test_updated_packages_change_version(self):
        _, stream = self._stream()
        release = stream.generate_day(1)
        for package in release.packages:
            if not package.name.startswith("new") and not is_kernel_package(package):
                assert "+u1." in package.version


class TestBenignWorkload:
    def test_daily_runs_clean_on_fresh_machine(self, small_testbed):
        results = small_testbed.workload.daily(5)
        assert results
        poll = small_testbed.poll()
        assert poll.ok

    def test_run_session_executes_existing_binaries(self, small_testbed):
        results = small_testbed.workload.run_session(3)
        assert len(results) == 3

    def test_scripts_run_both_ways(self, small_testbed):
        results = small_testbed.workload.run_scripts()
        assert len(results) == 2

    def test_exec_updated_files(self, small_testbed):
        testbed = small_testbed
        testbed.stream.generate_day(1)
        testbed.archive.apply_releases_until(days(2))
        report = testbed.apt.upgrade_from(testbed.archive.latest_index())
        results = testbed.workload.exec_updated_files(report)
        assert len(results) == sum(len(p.executables) for p in report.packages)
