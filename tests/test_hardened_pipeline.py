"""Tests for the hardened end-to-end pipeline.

"Hardened" = the orchestrator with both optional trust anchors pinned:
the archive's InRelease key (verified syncs) and the maintainer
manifest key (signed-hash policy generation).  These tests prove the
integrated pipeline stays green under normal operation, produces
policies identical to the hashing pipeline, and fails closed when
either anchor is violated.
"""

import pytest

from repro.common.clock import days
from repro.common.rng import SeededRng
from repro.distro.release_signing import ArchiveSigner
from repro.dynpolicy.signedhashes import ManifestAuthority
from repro.experiments.testbed import build_testbed

from tests.conftest import small_config


@pytest.fixture()
def hardened():
    testbed = build_testbed(small_config("hardened"))
    rng = SeededRng("hardened-keys")
    signer = ArchiveSigner("Archive", rng.fork("release"))
    authority = ManifestAuthority("Maintainers", rng.fork("manifests"))
    testbed.archive.enable_signing(signer)
    testbed.archive.enable_manifests(authority)
    testbed.orchestrator.archive_release_key = signer.public_key
    testbed.orchestrator.manifest_key = authority.public_key
    return testbed, signer, authority


class TestHardenedCycle:
    def test_cycle_green_with_both_anchors(self, hardened):
        testbed, _, _ = hardened
        testbed.stream.generate_day(1)
        testbed.scheduler.clock.advance_to(days(2))
        report = testbed.orchestrator.run_cycle()
        assert report.policy_report.entries_added >= 0
        testbed.workload.daily(5)
        assert testbed.poll().ok

    def test_manifest_policy_equals_hashing_policy(self, hardened):
        testbed, _, authority = hardened
        testbed.stream.generate_day(1)
        testbed.scheduler.clock.advance_to(days(2))
        testbed.orchestrator.run_cycle()
        manifest_digests = testbed.policy.digests

        plain = build_testbed(small_config("hardened"))
        plain.stream.generate_day(1)
        plain.scheduler.clock.advance_to(days(2))
        plain.orchestrator.run_cycle()
        assert manifest_digests == plain.policy.digests

    def test_manifest_generation_is_cheaper(self, hardened):
        testbed, _, _ = hardened
        testbed.stream.generate_day(1)
        testbed.scheduler.clock.advance_to(days(2))
        report = testbed.orchestrator.run_cycle()

        plain = build_testbed(small_config("hardened"))
        plain.stream.generate_day(1)
        plain.scheduler.clock.advance_to(days(2))
        plain_report = plain.orchestrator.run_cycle()
        if report.policy_report.packages_total > 0:
            assert (
                report.policy_report.duration_seconds
                < plain_report.policy_report.duration_seconds
            )

    def test_unsigned_package_falls_back_to_hashing(self, hardened):
        testbed, _, _ = hardened
        testbed.stream.generate_day(1)
        testbed.scheduler.clock.advance_to(days(2))
        # Drop manifests for everything published by day 1's release.
        testbed.archive._manifests.clear()
        report = testbed.orchestrator.run_cycle()
        testbed.workload.daily(3)
        assert testbed.poll().ok  # fallback hashing kept the fleet green

    def test_rogue_manifest_key_falls_back_not_poisons(self, hardened):
        """A wrong pinned key means every manifest is rejected; the
        generator falls back to hashing and the policy stays correct."""
        testbed, _, _ = hardened
        rogue = ManifestAuthority("Rogue", SeededRng("rogue"))
        testbed.orchestrator.manifest_key = rogue.public_key
        testbed.stream.generate_day(1)
        testbed.scheduler.clock.advance_to(days(2))
        testbed.orchestrator.run_cycle()
        testbed.workload.daily(3)
        assert testbed.poll().ok

    def test_tampered_sync_aborts_cycle(self, hardened, monkeypatch):
        from repro.common.errors import IntegrityError

        testbed, signer, _ = hardened
        stale = testbed.archive.inrelease_for(testbed.mirror.repositories, 0.0)
        testbed.stream.generate_day(1)
        monkeypatch.setattr(
            testbed.archive, "inrelease_for", lambda repos, now: stale
        )
        testbed.scheduler.clock.advance_to(days(2))
        with pytest.raises(IntegrityError):
            testbed.orchestrator.run_cycle()
        # Nothing was adopted or pushed; the machine still attests green.
        assert testbed.poll().ok
