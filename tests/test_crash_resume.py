"""Crash-resume property: kill the verifier anywhere, lose nothing.

The tentpole guarantee of the durable state store, exercised at fleet
scale: snapshot a seeded 10-node push-mode run at *every* round
boundary, rebuild the rig from scratch, restore, run the remainder --
and the verdict history and hash-chained audit trail must be
bit-identical to the uninterrupted run.  The restart must also be
invisible to the anti-P2 machinery: no coverage-gap alert, no
re-enrollment, every agent resuming at its exact replay offset.

The multi-verifier handoff suite extends the same property to shard
adoption: a failover restore must carry the departed host's RNG stream
positions and open push sessions onto the adopter byte-exactly, so the
adopter is indistinguishable from a verifier that never died.
"""

import os
import sys

import pytest

from repro.cli import _build_state_fleet, _drive_state_rounds
from repro.common.errors import IntegrityError
from repro.keylime.statestore import restore_from_file, write_snapshot
from repro.obs.health import HealthWatch

sys.path.insert(0, os.path.dirname(__file__))

from resume_helpers import fleet_fingerprint as _fingerprint  # noqa: E402

N_NODES = 10
N_ROUNDS = 5
INTERVAL = 1800.0
FILLERS = 4
SEED = "crash-resume"


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One uninterrupted run, snapshotted at every round boundary."""
    directory = tmp_path_factory.mktemp("snapshots")
    fleet = _build_state_fleet(SEED, N_NODES, FILLERS, push_mode=True)
    snapshots = {}
    for boundary in range(1, N_ROUNDS):
        _drive_state_rounds(fleet, 1, INTERVAL)
        snapshots[boundary] = directory / f"round-{boundary}.snap"
        write_snapshot(snapshots[boundary], fleet.verifier)
    _drive_state_rounds(fleet, 1, INTERVAL)
    return {"fingerprint": _fingerprint(fleet), "snapshots": snapshots}


def _resume(
    snapshot_path, rounds_remaining, push_mode=True, watch=None,
    n_nodes=N_NODES,
):
    fleet = _build_state_fleet(SEED, n_nodes, FILLERS, push_mode=push_mode)
    events_before = len(fleet.events)
    restore_from_file(fleet.verifier, snapshot_path)
    # A restore is bookkeeping, not attestation: it emits no events and
    # touches no registrar record (no re-enrollment).
    assert len(fleet.events) == events_before
    from repro.keylime.statestore import read_snapshot

    fleet.scheduler.clock.advance_to(
        float(read_snapshot(snapshot_path)["created_at"])
    )
    if watch is not None:
        fleet.watch_health(watch, INTERVAL)
    for _ in range(rounds_remaining):
        fleet.scheduler.clock.advance_by(INTERVAL)
        fleet.poll_scheduler.poll_batch()
        if watch is not None:
            watch.tick(fleet.scheduler.clock.now)
    if watch is not None:
        watch.finalize(fleet.scheduler.clock.now)
    return fleet


class TestEveryRoundBoundary:
    @pytest.mark.parametrize("boundary", range(1, N_ROUNDS))
    def test_resume_is_bit_identical(self, baseline, boundary):
        resumed = _resume(
            baseline["snapshots"][boundary], N_ROUNDS - boundary
        )
        fingerprint = _fingerprint(resumed)
        assert fingerprint["results"] == baseline["fingerprint"]["results"]
        assert fingerprint["offsets"] == baseline["fingerprint"]["offsets"]
        assert fingerprint["status"] == baseline["fingerprint"]["status"]
        assert fingerprint["audit"] == baseline["fingerprint"]["audit"]
        assert (
            fingerprint["audit_head"] == baseline["fingerprint"]["audit_head"]
        )
        resumed.verifier.audit.verify_chain()

    def test_restart_is_invisible_to_the_gap_detector(self, baseline):
        """Anti-P2: the kill/restore opens no coverage gap -- the watch
        attached to the resumed run stays silent."""
        watch = HealthWatch(tick_interval=INTERVAL)
        _resume(baseline["snapshots"][2], N_ROUNDS - 2, watch=watch)
        gap_alerts = [
            alert for alert in watch.engine.history
            if alert.rule == "health.coverage_gap"
        ]
        assert gap_alerts == []
        assert watch.incidents == []

    def test_corrupted_snapshot_fails_loudly_not_quietly(
        self, baseline, tmp_path
    ):
        source = baseline["snapshots"][1]
        raw = source.read_bytes()
        corrupt = tmp_path / "corrupt.snap"
        mutated = bytearray(raw)
        mutated[len(raw) // 2] ^= 0xFF
        corrupt.write_bytes(bytes(mutated))
        fleet = _build_state_fleet(SEED, N_NODES, FILLERS, push_mode=True)
        with pytest.raises(IntegrityError):
            restore_from_file(fleet.verifier, corrupt)
        # The rejected restore left the fresh verifier untouched.
        for node in fleet.nodes:
            assert fleet.verifier.results_of(node.agent.agent_id) == []

    def test_pull_mode_resumes_identically_too(self, tmp_path):
        """The state store is mode-blind: a pull fleet killed at round 2
        resumes bit-identical as well."""
        uninterrupted = _build_state_fleet(
            SEED, 3, FILLERS, push_mode=False
        )
        _drive_state_rounds(uninterrupted, N_ROUNDS, INTERVAL)
        expected = _fingerprint(uninterrupted)

        crashed = _build_state_fleet(SEED, 3, FILLERS, push_mode=False)
        _drive_state_rounds(crashed, 2, INTERVAL)
        snapshot = tmp_path / "pull.snap"
        write_snapshot(snapshot, crashed.verifier)
        resumed = _resume(snapshot, N_ROUNDS - 2, push_mode=False, n_nodes=3)
        assert _fingerprint(resumed) == expected


class TestMultiVerifierHandoff:
    """Failover must hand the adopter the dead host's *exact* state:
    RNG stream positions and open push sessions included."""

    SEED = "handoff"
    NODES = 6
    VERIFIERS = 2

    def _sharded(self, push_mode=False):
        from repro.experiments.shardfleet import build_shard_fleet

        return build_shard_fleet(
            self.SEED, self.NODES, self.VERIFIERS,
            fillers=2, push_mode=push_mode,
        )

    @staticmethod
    def _drive(fleet, vfleet, rounds):
        for _ in range(rounds):
            fleet.scheduler.clock.advance_by(INTERVAL)
            vfleet.poll_all()

    def test_failover_restores_rng_stream_positions(self):
        """The adopter's three RNG streams resume exactly where the
        dead host's left off -- nonces after the failover match a twin
        that never saw a failure, draw for draw."""
        from resume_helpers import assert_fingerprints_equal, vfleet_fingerprint

        twin_fleet, twin = self._sharded()
        self._drive(twin_fleet, twin, 4)

        fleet, vfleet = self._sharded()
        self._drive(fleet, vfleet, 2)
        victim = vfleet.shard_of("agent-node-000")
        vfleet.kill(victim)
        self._drive(fleet, vfleet, 2)

        assert vfleet.shards[victim].host != victim
        for shard_id in vfleet.shard_ids:
            survivor = vfleet.shards[shard_id].verifier
            reference = twin.shards[shard_id].verifier
            assert survivor.rng.getstate() == reference.rng.getstate()
            assert (
                survivor._retry_rng.getstate()
                == reference._retry_rng.getstate()
            )
            assert (
                survivor._session_rng.getstate()
                == reference._session_rng.getstate()
            )
        assert_fingerprints_equal(
            vfleet_fingerprint(vfleet), vfleet_fingerprint(twin)
        )

    def test_failover_preserves_open_push_sessions(self):
        """A session negotiated before the crash is still open on the
        adopter, nonce and all -- the submission lands there and
        verifies (contrast: *migration* discards open sessions)."""
        from repro.keylime.transport import (
            negotiation_reply_from_json,
            negotiation_to_json,
            submission_to_json,
        )

        fleet, vfleet = self._sharded(push_mode=True)
        self._drive(fleet, vfleet, 1)

        agent_id = "agent-node-000"
        victim = vfleet.shard_of(agent_id)
        host = vfleet.shards[victim]
        agent = host.agents[agent_id]
        reply = negotiation_reply_from_json(
            host.verifier.negotiate_push(
                negotiation_to_json(agent_id, agent.capabilities())
            )
        )
        assert host.verifier.open_push_session_of(agent_id) is not None

        vfleet.checkpoint()
        vfleet.kill(victim)
        adopted = vfleet.probe()
        assert victim in adopted

        adopter = vfleet.shards[victim].verifier
        assert adopter is not host.verifier
        session = adopter.open_push_session_of(agent_id)
        assert session is not None
        assert session.session_id == reply.session_id
        assert session.nonce == reply.nonce

        evidence = agent.attest(
            reply.nonce,
            offset=reply.offset,
            pcr_selection=list(reply.pcr_selection),
        )
        verdict_blob = adopter.submit_push(
            submission_to_json(reply.session_id, agent_id, evidence)
        )
        assert verdict_blob
        assert adopter.open_push_session_of(agent_id) is None

    def test_migration_discards_open_push_sessions(self):
        """The rebalancing contrast case: a session open at migration
        time is closed at the source and absent at the target, so the
        pre-move evidence verifies on *neither* verifier."""
        from repro.keylime.transport import (
            negotiation_reply_from_json,
            negotiation_to_json,
            submission_to_json,
        )

        fleet, vfleet = self._sharded(push_mode=True)
        self._drive(fleet, vfleet, 1)

        joiner = f"verifier-{self.VERIFIERS}"
        # Find an agent that WILL move when the joiner arrives, without
        # mutating the live ring: probe a scratch copy.
        from repro.keylime.sharding import ConsistentHashRing

        scratch = ConsistentHashRing(vfleet.ring.seed, vnodes=vfleet.ring.vnodes)
        for member in vfleet.ring.members:
            scratch.add(member)
        moving = scratch.plan_join(vfleet.agent_ids, joiner).moved_keys
        assert moving, "seed must move at least one agent on join"
        agent_id = moving[0]

        source = vfleet.shards[vfleet.shard_of(agent_id)]
        agent = source.agents[agent_id]
        reply = negotiation_reply_from_json(
            source.verifier.negotiate_push(
                negotiation_to_json(agent_id, agent.capabilities())
            )
        )
        evidence = agent.attest(
            reply.nonce,
            offset=reply.offset,
            pcr_selection=list(reply.pcr_selection),
        )

        vfleet.join(joiner)
        target = vfleet.shards[vfleet.shard_of(agent_id)]
        assert target.shard_id == joiner
        assert target.verifier.open_push_session_of(agent_id) is None
        blob = submission_to_json(reply.session_id, agent_id, evidence)
        with pytest.raises(IntegrityError):
            target.verifier.submit_push(blob)
        with pytest.raises(IntegrityError):
            source.verifier.submit_push(blob)
