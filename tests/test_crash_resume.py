"""Crash-resume property: kill the verifier anywhere, lose nothing.

The tentpole guarantee of the durable state store, exercised at fleet
scale: snapshot a seeded 10-node push-mode run at *every* round
boundary, rebuild the rig from scratch, restore, run the remainder --
and the verdict history and hash-chained audit trail must be
bit-identical to the uninterrupted run.  The restart must also be
invisible to the anti-P2 machinery: no coverage-gap alert, no
re-enrollment, every agent resuming at its exact replay offset.
"""

import pytest

from repro.cli import _build_state_fleet, _drive_state_rounds
from repro.common.errors import IntegrityError
from repro.keylime.statestore import restore_from_file, write_snapshot
from repro.obs.health import HealthWatch

N_NODES = 10
N_ROUNDS = 5
INTERVAL = 1800.0
FILLERS = 4
SEED = "crash-resume"


def _fingerprint(fleet):
    """Everything the run produced, bit-for-bit comparable."""
    return {
        "results": {
            node.agent.agent_id: fleet.verifier.results_of(node.agent.agent_id)
            for node in fleet.nodes
        },
        "offsets": {
            node.agent.agent_id: fleet.verifier.verified_entries_of(
                node.agent.agent_id
            )
            for node in fleet.nodes
        },
        "status": fleet.status(),
        "audit": fleet.verifier.audit.export_records(),
        "audit_head": fleet.verifier.audit.head_hash,
    }


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One uninterrupted run, snapshotted at every round boundary."""
    directory = tmp_path_factory.mktemp("snapshots")
    fleet = _build_state_fleet(SEED, N_NODES, FILLERS, push_mode=True)
    snapshots = {}
    for boundary in range(1, N_ROUNDS):
        _drive_state_rounds(fleet, 1, INTERVAL)
        snapshots[boundary] = directory / f"round-{boundary}.snap"
        write_snapshot(snapshots[boundary], fleet.verifier)
    _drive_state_rounds(fleet, 1, INTERVAL)
    return {"fingerprint": _fingerprint(fleet), "snapshots": snapshots}


def _resume(
    snapshot_path, rounds_remaining, push_mode=True, watch=None,
    n_nodes=N_NODES,
):
    fleet = _build_state_fleet(SEED, n_nodes, FILLERS, push_mode=push_mode)
    events_before = len(fleet.events)
    restore_from_file(fleet.verifier, snapshot_path)
    # A restore is bookkeeping, not attestation: it emits no events and
    # touches no registrar record (no re-enrollment).
    assert len(fleet.events) == events_before
    from repro.keylime.statestore import read_snapshot

    fleet.scheduler.clock.advance_to(
        float(read_snapshot(snapshot_path)["created_at"])
    )
    if watch is not None:
        fleet.watch_health(watch, INTERVAL)
    for _ in range(rounds_remaining):
        fleet.scheduler.clock.advance_by(INTERVAL)
        fleet.poll_scheduler.poll_batch()
        if watch is not None:
            watch.tick(fleet.scheduler.clock.now)
    if watch is not None:
        watch.finalize(fleet.scheduler.clock.now)
    return fleet


class TestEveryRoundBoundary:
    @pytest.mark.parametrize("boundary", range(1, N_ROUNDS))
    def test_resume_is_bit_identical(self, baseline, boundary):
        resumed = _resume(
            baseline["snapshots"][boundary], N_ROUNDS - boundary
        )
        fingerprint = _fingerprint(resumed)
        assert fingerprint["results"] == baseline["fingerprint"]["results"]
        assert fingerprint["offsets"] == baseline["fingerprint"]["offsets"]
        assert fingerprint["status"] == baseline["fingerprint"]["status"]
        assert fingerprint["audit"] == baseline["fingerprint"]["audit"]
        assert (
            fingerprint["audit_head"] == baseline["fingerprint"]["audit_head"]
        )
        resumed.verifier.audit.verify_chain()

    def test_restart_is_invisible_to_the_gap_detector(self, baseline):
        """Anti-P2: the kill/restore opens no coverage gap -- the watch
        attached to the resumed run stays silent."""
        watch = HealthWatch(tick_interval=INTERVAL)
        _resume(baseline["snapshots"][2], N_ROUNDS - 2, watch=watch)
        gap_alerts = [
            alert for alert in watch.engine.history
            if alert.rule == "health.coverage_gap"
        ]
        assert gap_alerts == []
        assert watch.incidents == []

    def test_corrupted_snapshot_fails_loudly_not_quietly(
        self, baseline, tmp_path
    ):
        source = baseline["snapshots"][1]
        raw = source.read_bytes()
        corrupt = tmp_path / "corrupt.snap"
        mutated = bytearray(raw)
        mutated[len(raw) // 2] ^= 0xFF
        corrupt.write_bytes(bytes(mutated))
        fleet = _build_state_fleet(SEED, N_NODES, FILLERS, push_mode=True)
        with pytest.raises(IntegrityError):
            restore_from_file(fleet.verifier, corrupt)
        # The rejected restore left the fresh verifier untouched.
        for node in fleet.nodes:
            assert fleet.verifier.results_of(node.agent.agent_id) == []

    def test_pull_mode_resumes_identically_too(self, tmp_path):
        """The state store is mode-blind: a pull fleet killed at round 2
        resumes bit-identical as well."""
        uninterrupted = _build_state_fleet(
            SEED, 3, FILLERS, push_mode=False
        )
        _drive_state_rounds(uninterrupted, N_ROUNDS, INTERVAL)
        expected = _fingerprint(uninterrupted)

        crashed = _build_state_fleet(SEED, 3, FILLERS, push_mode=False)
        _drive_state_rounds(crashed, 2, INTERVAL)
        snapshot = tmp_path / "pull.snap"
        write_snapshot(snapshot, crashed.verifier)
        resumed = _resume(snapshot, N_ROUNDS - 2, push_mode=False, n_nodes=3)
        assert _fingerprint(resumed) == expected
