"""Tests for the dynamic policy generator, cost model, orchestrator."""

import pytest

from repro.common.clock import days, hours
from repro.common.rng import SeededRng
from repro.distro.archive import Release, UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.package import (
    Package,
    PackageFile,
    Priority,
    make_kernel_package,
)
from repro.dynpolicy.costmodel import CostModelConfig, GeneratorCostModel
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.policy import IBM_STYLE_EXCLUDES, RuntimePolicy


def _pkg(name: str, version: str, priority=Priority.OPTIONAL, repo="main") -> Package:
    return Package(
        name=name, version=version, priority=priority,
        files=(
            PackageFile(f"/usr/bin/{name}", True, 10_000),
            PackageFile(f"/usr/share/doc/{name}", False, 1_000),
        ),
        repository=repo,
    )


@pytest.fixture()
def world():
    archive = UbuntuArchive()
    archive.seed([_pkg("a", "1.0"), _pkg("b", "1.0", priority=Priority.REQUIRED)])
    mirror = LocalMirror(archive)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror)
    return archive, mirror, generator


class TestCostModel:
    def test_deterministic_without_rng(self):
        model = GeneratorCostModel()
        package = _pkg("a", "1.0")
        assert model.package_seconds(package) == model.package_seconds(package)

    def test_batch_includes_refresh(self):
        model = GeneratorCostModel()
        assert model.batch_seconds([]) == model.config.mirror_refresh_seconds
        assert model.batch_seconds([], include_refresh=False) == 0.0

    def test_more_packages_cost_more(self):
        model = GeneratorCostModel()
        one = model.batch_seconds([_pkg("a", "1")])
        two = model.batch_seconds([_pkg("a", "1"), _pkg("b", "1")])
        assert two > one

    def test_bigger_payload_costs_more(self):
        model = GeneratorCostModel()
        small = Package(
            name="s", version="1", priority=Priority.OPTIONAL,
            files=(PackageFile("/usr/bin/s", True, 1_000),),
        )
        big = Package(
            name="b", version="1", priority=Priority.OPTIONAL,
            files=(PackageFile("/usr/bin/b", True, 100_000_000),),
        )
        assert model.package_seconds(big) > model.package_seconds(small)

    def test_jitter_applied_with_rng(self):
        model = GeneratorCostModel(rng=SeededRng("jitter"))
        base = GeneratorCostModel()
        package = _pkg("a", "1")
        jittered = {model.batch_seconds([package]) for _ in range(5)}
        assert len(jittered) > 1  # varies run to run
        assert all(value > 0 for value in jittered)

    def test_config_override(self):
        config = CostModelConfig(mirror_refresh_seconds=0.0, jitter_sigma=0.0)
        model = GeneratorCostModel(config)
        assert model.batch_seconds([]) == 0.0


class TestGenerator:
    def test_full_generation_covers_mirror_executables(self, world):
        _, mirror, generator = world
        policy, report = generator.generate_full(
            list(IBM_STYLE_EXCLUDES), {"5.15.0-91-generic"}
        )
        assert policy.covers_path("/usr/bin/a")
        assert policy.covers_path("/usr/bin/b")
        assert not policy.covers_path("/usr/share/doc/a")
        assert report.packages_total == 2
        assert report.packages_high == 1

    def test_update_appends_only_changed(self, world):
        archive, mirror, generator = world
        policy, _ = generator.generate_full(list(IBM_STYLE_EXCLUDES), set())
        lines_before = policy.line_count()
        archive.schedule_release(Release(time=10.0, packages=(_pkg("a", "2.0", repo="updates"),)))
        sync = mirror.sync(20.0)
        report = generator.generate_update(
            policy, list(sync.changed_packages), set()
        )
        assert report.entries_added == 1
        assert policy.line_count() == lines_before + 1
        # Both versions acceptable during the update window.
        assert len(policy.digests_for("/usr/bin/a")) == 2

    def test_update_report_counts_priorities(self, world):
        archive, mirror, generator = world
        policy = RuntimePolicy()
        batch = [
            _pkg("x", "1", priority=Priority.IMPORTANT),
            _pkg("y", "1", priority=Priority.OPTIONAL),
            _pkg("z", "1", priority=Priority.EXTRA),
        ]
        report = generator.generate_update(policy, batch, set())
        assert report.packages_high == 1
        assert report.packages_low == 2

    def test_kernel_modules_deferred(self, world):
        _, mirror, generator = world
        kernel = make_kernel_package("6.0.0-new", module_count=3)
        policy = RuntimePolicy()
        report = generator.generate_update(
            policy, [kernel.package], allowed_kernels={"5.15.0-old"}
        )
        assert report.kernels_deferred == ("6.0.0-new",)
        assert not any(
            path.startswith("/lib/modules/6.0.0-new") for path in policy.digests
        )

    def test_current_kernel_modules_admitted(self, world):
        _, mirror, generator = world
        kernel = make_kernel_package("5.15.0-old", module_count=3)
        policy = RuntimePolicy()
        report = generator.generate_update(
            policy, [kernel.package], allowed_kernels={"5.15.0-old"}
        )
        assert report.kernels_deferred == ()
        assert any(
            path.startswith("/lib/modules/5.15.0-old") for path in policy.digests
        )

    def test_prepare_for_reboot_admits_new_kernel(self, world):
        archive, mirror, generator = world
        kernel = make_kernel_package("6.0.0-new", module_count=3)
        archive.schedule_release(Release(time=10.0, packages=(kernel.package,)))
        mirror.sync(20.0)
        policy = RuntimePolicy()
        added = generator.prepare_for_reboot(policy, "6.0.0-new")
        assert added > 0
        assert any(
            path.startswith("/lib/modules/6.0.0-new") for path in policy.digests
        )

    def test_dedupe_removes_superseded(self, world):
        archive, mirror, generator = world
        policy, _ = generator.generate_full(list(IBM_STYLE_EXCLUDES), set())
        new_a = _pkg("a", "2.0", repo="updates")
        archive.schedule_release(Release(time=10.0, packages=(new_a,)))
        sync = mirror.sync(20.0)
        generator.generate_update(policy, list(sync.changed_packages), set())
        removed = generator.dedupe(policy, {"a": new_a})
        assert removed == 1
        assert policy.digests_for("/usr/bin/a") == (new_a.sha256_of("/usr/bin/a"),)

    def test_scrub_snap_prefixes(self):
        policy = RuntimePolicy()
        digest = "ab" * 32
        policy.add_digest("/snap/core20/1974/usr/bin/tool", digest)
        added = DynamicPolicyGenerator.scrub_snap_prefixes(policy)
        assert added == 1
        assert policy.digests_for("/usr/bin/tool") == (digest,)

    def test_scrub_ignores_non_snap_paths(self):
        policy = RuntimePolicy()
        policy.add_digest("/usr/bin/tool", "ab" * 32)
        assert DynamicPolicyGenerator.scrub_snap_prefixes(policy) == 0


class TestOrchestrator:
    def test_cycle_keeps_machine_in_policy(self, small_testbed):
        testbed = small_testbed
        testbed.stream.generate_day(1)
        testbed.scheduler.clock.advance_to(days(2))
        testbed.orchestrator.run_cycle()
        testbed.workload.daily(5)
        assert testbed.poll().ok

    def test_policy_pushed_before_upgrade(self, small_testbed):
        """The ordering invariant: generate+push precedes apt."""
        testbed = small_testbed
        testbed.stream.generate_day(1)
        testbed.scheduler.clock.advance_to(days(2))
        order = []
        original_push = testbed.tenant.push_policy
        original_upgrade = testbed.apt.upgrade_from

        def spy_push(agent_id, policy):
            order.append("push")
            return original_push(agent_id, policy)

        def spy_upgrade(*args, **kwargs):
            order.append("upgrade")
            return original_upgrade(*args, **kwargs)

        testbed.tenant.push_policy = spy_push
        testbed.apt.upgrade_from = spy_upgrade
        testbed.orchestrator.run_cycle()
        assert order.index("push") < order.index("upgrade")

    def test_official_source_bypasses_mirror(self, small_testbed):
        testbed = small_testbed
        testbed.stream.generate_day(1)
        testbed.scheduler.clock.advance_to(days(1) + hours(5))
        report = testbed.orchestrator.run_cycle(from_official=True)
        assert report.source == "official"

    def test_reports_accumulate(self, small_testbed):
        testbed = small_testbed
        for day in (1, 2):
            testbed.stream.generate_day(day)
        testbed.orchestrator.schedule_cycles(start_day=1, n_cycles=2)
        testbed.scheduler.run_until(days(3))
        assert len(testbed.orchestrator.reports) == 2
        assert [report.day for report in testbed.orchestrator.reports] == [1, 2]
