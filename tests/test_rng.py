"""Tests for the seeded RNG and its named sub-streams."""

from repro.common.rng import SeededRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = SeededRng(42)
        b = SeededRng(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeededRng(1)
        b = SeededRng(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_string_seeds_supported(self):
        a = SeededRng("experiment-1")
        b = SeededRng("experiment-1")
        assert a.randint(0, 10**9) == b.randint(0, 10**9)


class TestFork:
    def test_fork_is_deterministic(self):
        a = SeededRng(7).fork("stream")
        b = SeededRng(7).fork("stream")
        assert a.random() == b.random()

    def test_forks_are_independent(self):
        parent = SeededRng(7)
        child = parent.fork("child")
        before = child.random()
        # Drawing from the parent must not perturb the child stream.
        parent2 = SeededRng(7)
        _ = [parent2.random() for _ in range(100)]
        child2 = parent2.fork("child")
        assert child2.random() == before

    def test_different_names_different_streams(self):
        parent = SeededRng(7)
        assert parent.fork("a").random() != parent.fork("b").random()

    def test_nested_forks(self):
        a = SeededRng(1).fork("x").fork("y")
        b = SeededRng(1).fork("x").fork("y")
        assert a.hexid() == b.hexid()


class TestDraws:
    def test_uniform_bounds(self):
        rng = SeededRng(0)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_randint_bounds(self):
        rng = SeededRng(0)
        values = {rng.randint(1, 3) for _ in range(100)}
        assert values == {1, 2, 3}

    def test_choice_and_sample(self):
        rng = SeededRng(0)
        items = ["a", "b", "c", "d"]
        assert rng.choice(items) in items
        sample = rng.sample(items, 2)
        assert len(sample) == 2
        assert len(set(sample)) == 2

    def test_shuffle_preserves_elements(self):
        rng = SeededRng(0)
        items = list(range(20))
        rng.shuffle(items)
        assert sorted(items) == list(range(20))

    def test_poisson_mean(self):
        rng = SeededRng(0)
        draws = [rng.poisson(4.0) for _ in range(3000)]
        mean = sum(draws) / len(draws)
        assert 3.7 < mean < 4.3

    def test_poisson_zero_mean(self):
        assert SeededRng(0).poisson(0.0) == 0

    def test_poisson_large_mean_uses_normal_approx(self):
        rng = SeededRng(0)
        value = rng.poisson(1000.0)
        assert 800 < value < 1200

    def test_lognormal_positive(self):
        rng = SeededRng(0)
        assert all(rng.lognormal(0.0, 1.0) > 0 for _ in range(50))

    def test_bernoulli_extremes(self):
        rng = SeededRng(0)
        assert not any(rng.bernoulli(0.0) for _ in range(20))
        assert all(rng.bernoulli(1.0) for _ in range(20))

    def test_token_length(self):
        assert len(SeededRng(0).token(24)) == 24

    def test_hexid_format(self):
        hexid = SeededRng(0).hexid(8)
        assert len(hexid) == 16
        int(hexid, 16)  # parses as hex

    def test_expovariate_positive(self):
        rng = SeededRng(0)
        assert all(rng.expovariate(2.0) >= 0 for _ in range(50))
