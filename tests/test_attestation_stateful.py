"""Stateful property test of the whole attestation loop.

Hypothesis drives random interleavings of benign machine activity
(executions, updates, reboots, in-policy installs) with verifier polls.
The invariant is the system's core promise: **benign activity never
fails attestation** -- no false positives, no PCR mismatches, no replay
divergence -- regardless of interleaving.  Most bugs in the verifier's
incremental-replay/offset/reboot bookkeeping would surface here.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.common.hexutil import sha256_hex
from repro.experiments.testbed import build_testbed
from repro.keylime.verifier import AgentState

from tests.conftest import small_config

_NAMES = st.sampled_from([f"tool{i}" for i in range(8)])
_PAYLOADS = st.binary(min_size=1, max_size=12)


class AttestationLoop(RuleBasedStateMachine):
    """Random benign walks over the prover + verifier."""

    def __init__(self) -> None:
        super().__init__()
        self.testbed = build_testbed(small_config("stateful-attest"))
        self.results = []

    @rule(name=_NAMES)
    def exec_known_binary(self, name: str) -> None:
        """Run something already in policy (or skip if not present)."""
        path = f"/usr/bin/{name}"
        if not self.testbed.machine.vfs.exists(path):
            return
        self.testbed.machine.exec_file(path)

    @rule(name=_NAMES, payload=_PAYLOADS)
    def install_in_policy_then_exec(self, name: str, payload: bytes) -> None:
        """A controlled update: policy first, then the file, then exec."""
        path = f"/usr/bin/{name}"
        self.testbed.policy.add_digest(path, sha256_hex(payload))
        self.testbed.machine.install_file(path, payload, executable=True)
        self.testbed.machine.exec_file(path)

    @rule(name=_NAMES, payload=_PAYLOADS)
    def stage_in_excluded_dir(self, name: str, payload: bytes) -> None:
        """Activity under /tmp: measured but excluded -- never a failure."""
        path = f"/tmp/{name}"
        self.testbed.machine.install_file(path, payload, executable=True)
        self.testbed.machine.exec_file(path)

    @rule()
    def poll(self) -> None:
        self.results.append(self.testbed.poll())

    @rule()
    def double_poll(self) -> None:
        """Back-to-back polls (zero new entries on the second)."""
        self.results.append(self.testbed.poll())
        self.results.append(self.testbed.poll())

    @rule()
    def reboot(self) -> None:
        self.testbed.machine.reboot()

    @rule()
    def benign_session(self) -> None:
        self.testbed.workload.run_session(3)

    @invariant()
    def never_a_false_positive(self) -> None:
        for result in self.results:
            assert result.ok, [failure.detail for failure in result.failures]
        assert (
            self.testbed.verifier.state_of(self.testbed.agent_id)
            is AgentState.ATTESTING
        )


TestAttestationLoop = AttestationLoop.TestCase
TestAttestationLoop.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
