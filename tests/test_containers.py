"""Tests for containerised execution and its attestation blind spots."""

import pytest

from repro.common.errors import NotFoundError, StateError
from repro.kernelsim.containers import ContainerRuntime, scrub_container_prefixes
from repro.kernelsim.vfs import FilesystemType
from repro.keylime.policy import build_policy_from_machine
from repro.mitigations import mitigated_ima_policy

from tests.conftest import small_config
from repro.experiments.testbed import build_testbed


@pytest.fixture()
def runtime(machine):
    return ContainerRuntime(machine)


class TestRuntime:
    def test_run_mounts_overlayfs(self, machine, runtime):
        container = runtime.run("nginx", ["usr/sbin/nginx"])
        stat = machine.vfs.stat(container.host_path("usr/sbin/nginx"))
        assert stat.fstype is FilesystemType.OVERLAYFS
        assert stat.executable

    def test_container_ids_unique(self, runtime):
        a = runtime.run("a", ["bin/a"])
        b = runtime.run("b", ["bin/b"])
        assert a.container_id != b.container_id
        assert len(runtime) == 2

    def test_unknown_binary_rejected(self, runtime):
        container = runtime.run("nginx", ["usr/sbin/nginx"])
        with pytest.raises(NotFoundError):
            container.host_path("bin/sh")

    def test_stopped_container_cannot_exec(self, runtime):
        container = runtime.run("nginx", ["usr/sbin/nginx"])
        runtime.stop(container.container_id)
        with pytest.raises(StateError):
            runtime.exec_in_container(container.container_id, "usr/sbin/nginx")

    def test_unknown_container(self, runtime):
        with pytest.raises(NotFoundError):
            runtime.get("ctr-9999")


class TestBlindSpots:
    def test_stock_ima_never_measures_overlayfs(self, machine, runtime):
        """P3 flavour: the whole container is invisible to stock IMA."""
        container = runtime.run("nginx", ["usr/sbin/nginx"])
        result = runtime.exec_in_container(container.container_id, "usr/sbin/nginx")
        assert not result.measured

    def test_mitigated_ima_measures_truncated_path(self, manufacturer):
        """SNAP flavour: measured, but under the confined path."""
        from repro.kernelsim.kernel import Machine

        machine = Machine(
            "ctr-box", manufacturer.manufacture(), ima_policy=mitigated_ima_policy()
        )
        machine.boot()
        runtime = ContainerRuntime(machine)
        container = runtime.run("nginx", ["usr/sbin/nginx"])
        result = runtime.exec_in_container(container.container_id, "usr/sbin/nginx")
        assert result.measured
        assert result.entries[0].path == "/usr/sbin/nginx"

    def test_host_view_records_full_path(self, manufacturer):
        from repro.kernelsim.kernel import Machine

        machine = Machine(
            "ctr-box2", manufacturer.manufacture(), ima_policy=mitigated_ima_policy()
        )
        machine.boot()
        runtime = ContainerRuntime(machine)
        container = runtime.run("nginx", ["usr/sbin/nginx"])
        result = runtime.exec_host_escape(container.container_id, "usr/sbin/nginx")
        assert result.measured
        assert result.entries[0].path.startswith("/var/lib/containers/")


class TestPolicyFix:
    def test_container_fp_and_scrub_fix_end_to_end(self):
        """The full SNAP-style FP cycle, but for a container."""
        config = small_config("container-e2e")
        config.ima_policy = mitigated_ima_policy()
        testbed = build_testbed(config)
        runtime = ContainerRuntime(testbed.machine)
        container = runtime.run("webapp", ["usr/bin/webapp"])

        policy = build_policy_from_machine(testbed.machine)
        testbed.tenant.push_policy(testbed.agent_id, policy)
        assert policy.covers_path(container.host_path("usr/bin/webapp"))
        assert testbed.poll().ok

        runtime.exec_in_container(container.container_id, "usr/bin/webapp")
        result = testbed.poll()
        assert not result.ok  # the container false positive
        assert result.failures[0].policy_failure.path == "/usr/bin/webapp"

        added = scrub_container_prefixes(policy)
        assert added >= 1
        testbed.tenant.resolve_failure(testbed.agent_id, policy)
        assert testbed.poll().ok

    def test_scrub_ignores_host_paths(self):
        from repro.keylime.policy import RuntimePolicy

        policy = RuntimePolicy()
        policy.add_digest("/usr/bin/host-tool", "ab" * 32)
        assert scrub_container_prefixes(policy) == 0

    def test_attacker_in_container_hidden_from_stock_keylime(self):
        """The adaptive consequence: a containerised payload is silent."""
        testbed = build_testbed(small_config("container-attack"))
        runtime = ContainerRuntime(testbed.machine)
        assert testbed.poll().ok
        container = runtime.run("attacker-image", ["opt/cryptominer"])
        runtime.exec_in_container(container.container_id, "opt/cryptominer")
        result = testbed.poll()
        assert result.ok  # stock IMA excludes overlayfs: nothing to judge
