"""Tests for packages, priorities, and deterministic contents."""

from repro.distro.package import (
    Package,
    PackageFile,
    Priority,
    file_content,
    file_sha256,
    is_kernel_package,
    kernel_version_of,
    make_kernel_package,
)


def _package(**overrides) -> Package:
    defaults = dict(
        name="coreutils",
        version="1.0",
        priority=Priority.REQUIRED,
        files=(
            PackageFile("/usr/bin/ls", True, 1000),
            PackageFile("/usr/share/doc/coreutils/readme", False, 100),
        ),
    )
    defaults.update(overrides)
    return Package(**defaults)


class TestPriority:
    def test_high_priorities(self):
        for priority in (Priority.ESSENTIAL, Priority.REQUIRED,
                         Priority.IMPORTANT, Priority.STANDARD):
            assert priority.is_high

    def test_low_priorities(self):
        for priority in (Priority.OPTIONAL, Priority.EXTRA):
            assert not priority.is_high


class TestContent:
    def test_deterministic(self):
        assert file_content("p", "1.0", "/a") == file_content("p", "1.0", "/a")

    def test_version_changes_content(self):
        assert file_content("p", "1.0", "/a") != file_content("p", "1.1", "/a")

    def test_path_changes_content(self):
        assert file_content("p", "1.0", "/a") != file_content("p", "1.0", "/b")

    def test_sha256_matches_content(self):
        import hashlib

        assert file_sha256("p", "1.0", "/a") == hashlib.sha256(
            file_content("p", "1.0", "/a")
        ).hexdigest()


class TestPackage:
    def test_key(self):
        assert _package().key == ("coreutils", "1.0")

    def test_executables_filter(self):
        package = _package()
        assert [pf.path for pf in package.executables] == ["/usr/bin/ls"]
        assert package.has_executables

    def test_no_executables(self):
        package = _package(files=(PackageFile("/usr/share/doc/x", False),))
        assert not package.has_executables

    def test_measurements_cover_executables_only(self):
        measurements = _package().measurements()
        assert set(measurements) == {"/usr/bin/ls"}
        assert measurements["/usr/bin/ls"] == _package().sha256_of("/usr/bin/ls")

    def test_bump_version_same_files_new_hashes(self):
        package = _package()
        bumped = package.bump_version("2.0")
        assert bumped.files == package.files
        assert bumped.sha256_of("/usr/bin/ls") != package.sha256_of("/usr/bin/ls")

    def test_compressed_size_defaults_from_payload(self):
        package = _package()
        assert package.compressed_size > 0

    def test_compressed_size_respected_when_given(self):
        package = _package(compressed_size=12345)
        assert package.compressed_size == 12345


class TestKernelPackages:
    def test_make_kernel_package(self):
        kernel = make_kernel_package("5.15.0-92-generic", module_count=4)
        assert kernel.kernel_version == "5.15.0-92-generic"
        paths = [pf.path for pf in kernel.package.files]
        assert "/boot/vmlinuz-5.15.0-92-generic" in paths
        assert any(p.startswith("/lib/modules/5.15.0-92-generic/") for p in paths)

    def test_is_kernel_package(self):
        kernel = make_kernel_package("5.15.0-92-generic")
        assert is_kernel_package(kernel.package)
        assert not is_kernel_package(_package())

    def test_kernel_version_of(self):
        kernel = make_kernel_package("5.15.0-92-generic")
        assert kernel_version_of(kernel.package) == "5.15.0-92-generic"
        assert kernel_version_of(_package()) is None

    def test_module_count(self):
        kernel = make_kernel_package("v", module_count=7)
        modules = [pf for pf in kernel.package.files if pf.path.endswith(".ko")]
        assert len(modules) == 7
