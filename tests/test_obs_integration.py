"""End-to-end telemetry: instrumented hot paths, CLI export."""

import pytest

from repro.cli import main
from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.obs import runtime as obs_runtime
from repro.obs.exporters import load_jsonl, parse_prometheus_text


@pytest.fixture()
def telemetry():
    """An active telemetry bundle, always deactivated afterwards."""
    with obs_runtime.session() as bundle:
        yield bundle


class TestPollInstrumentation:
    def test_single_poll_produces_the_nested_phase_tree(self, telemetry):
        testbed = build_testbed(TestbedConfig(seed="obs-it", n_filler_packages=5))
        result = testbed.poll()
        assert result.ok

        root = telemetry.tracer.last_trace()
        assert root.name == "verifier.poll"
        phases = [child.name for child in root.children]
        assert phases == [
            "verifier.challenge",
            "verifier.quote_verify",
            "verifier.log_replay",
            "verifier.policy_eval",
        ]
        # The challenge round nests the agent's work, which nests the quote.
        assert root.find("agent.attest") is not None
        assert root.find("agent.quote") is not None
        assert root.find("tpm.verify_quote") is not None
        assert root.attributes["ok"] is True

    def test_poll_latency_histogram_and_counters(self, telemetry):
        testbed = build_testbed(TestbedConfig(seed="obs-it", n_filler_packages=5))
        testbed.poll()
        testbed.poll()

        registry = telemetry.registry
        hist = registry.get("verifier_poll_wall_seconds")._default_child()
        assert hist.count == 2
        assert hist.sum > 0.0
        polls = registry.get("verifier_polls_total")
        assert polls.labels(result="ok").value == 2
        assert registry.get("tpm_quote_verifications_total").labels(
            result="ok"
        ).value == 2
        assert registry.get("agent_attestations_total").labels(
            agent=testbed.agent_id
        ).value == 2

    def test_spans_carry_the_simulated_clock(self, telemetry):
        testbed = build_testbed(TestbedConfig(seed="obs-it", n_filler_packages=5))
        testbed.scheduler.clock.advance_by(3600.0)
        testbed.poll()
        root = telemetry.tracer.last_trace()
        assert root.sim_start == 3600.0


class TestImaInstrumentation:
    def test_cache_hit_metric_counts_p4_suppression(self, telemetry):
        testbed = build_testbed(TestbedConfig(seed="obs-it", n_filler_packages=5))
        package = next(
            pkg for pkg in testbed.mirror.packages() if pkg.has_executables
        )
        path = package.executables[0].path
        testbed.machine.exec_file(path)
        testbed.machine.exec_file(path)

        events = telemetry.registry.get("ima_events_total")
        assert events.labels(decision="measured").value == 1
        assert events.labels(decision="cache_hit").value == 1
        # boot_aggregate + the one real measurement.
        assert telemetry.registry.get("ima_measurements_total").value == 2


class TestExemplarAcceptance:
    """The ISSUE's acceptance bar: a p99 histogram bucket resolves to a
    stored trace through its exemplar."""

    def _run_polls(self, telemetry, n=6):
        testbed = build_testbed(TestbedConfig(seed="obs-ex", n_filler_packages=5))
        for _ in range(n):
            testbed.scheduler.clock.advance_by(1800.0)
            assert testbed.poll().ok
        return testbed

    def test_stage_p99_exemplar_resolves_in_the_store(self, telemetry):
        self._run_polls(telemetry)
        family = telemetry.registry.get("verifier_stage_wall_seconds")
        for labels, child in family.samples():
            exemplar = child.exemplar_for_quantile(0.99)
            assert exemplar is not None, f"stage {labels} lost its exemplar"
            entry = telemetry.store.resolve_exemplar(exemplar)
            assert entry is not None, f"stage {labels} exemplar unresolvable"
            assert entry.find("verifier.poll") is not None

    def test_poll_p99_exemplar_resolves_and_is_the_slow_trace(self, telemetry):
        self._run_polls(telemetry)
        child = telemetry.registry.get(
            "verifier_poll_wall_seconds"
        )._default_child()
        exemplar = child.exemplar_for_quantile(0.99)
        entry = telemetry.store.resolve_exemplar(exemplar)
        assert entry is not None
        assert entry.primary.name == "verifier.poll"

    def test_store_ingests_every_poll(self, telemetry):
        self._run_polls(telemetry, n=4)
        assert len(telemetry.store.query(name="verifier.poll")) == 4
        assert telemetry.store.percentile(0.5, name="verifier.poll") > 0.0

    def test_dropped_roots_exported_as_a_counter(self):
        from repro.obs.runtime import Telemetry
        from repro.obs.tracing import SpanTracer

        telemetry = Telemetry()
        dropped = telemetry.registry.get("obs_tracer_dropped_roots_total")
        telemetry.tracer = SpanTracer(
            max_roots=2, store=telemetry.store, on_drop=dropped.inc
        )
        obs_runtime.activate(telemetry)
        try:
            for index in range(5):
                with telemetry.tracer.span(f"r{index}"):
                    pass
        finally:
            obs_runtime.deactivate()
        counter = telemetry.registry.get("obs_tracer_dropped_roots_total")
        assert counter.value == 3.0
        assert telemetry.tracer.dropped_roots == 3


class TestDisabledTelemetry:
    def test_hot_paths_run_without_an_active_session(self):
        assert obs_runtime.get() is obs_runtime.NULL_TELEMETRY
        testbed = build_testbed(TestbedConfig(seed="obs-off", n_filler_packages=5))
        assert testbed.poll().ok
        assert obs_runtime.get().registry.families() == []


class TestCliObs:
    def test_fleet_export_files(self, tmp_path, capsys):
        prom_path = tmp_path / "metrics.prom"
        jsonl_path = tmp_path / "telemetry.jsonl"
        code = main([
            "--fillers", "6", "--seed", "obs-cli",
            "obs", "fleet", "--days", "1", "--nodes", "2",
            "--prom", str(prom_path), "--jsonl", str(jsonl_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "== telemetry summary ==" in out
        assert "verifier.poll" in out

        samples = parse_prometheus_text(prom_path.read_text())
        assert samples[("verifier_polls_total", (("result", "ok"),))] > 0
        assert samples[("mirror_syncs_total", ())] > 0
        assert any(name == "ima_measurements_total" for name, _ in samples)

        records = load_jsonl(jsonl_path.read_text())
        names = {record["name"] for record in records}
        assert "verifier_polls_total" in names
        assert "verifier.poll" in names  # spans too
        # The CLI session was torn down on exit.
        assert obs_runtime.get() is obs_runtime.NULL_TELEMETRY
