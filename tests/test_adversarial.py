"""Adversarial tests: active attacks on the attestation protocol itself.

The false-negative study assumes the protocol machinery is sound and
attacks the *measurement policy*; these tests check the machinery.  An
attacker controlling the prover (or the network) tries to forge, replay,
suppress, or redirect evidence -- every attempt must be caught by the
cryptographic checks, not by convention.
"""

import dataclasses

import pytest

from repro.common.rng import SeededRng
from repro.experiments.testbed import build_testbed
from repro.keylime.registrar import KeylimeRegistrar, RegistrationError
from repro.keylime.verifier import FailureKind
from repro.tpm.device import TpmManufacturer
from repro.tpm.quote import Quote, QuoteVerificationError, verify_quote

from tests.conftest import small_config


class TestQuoteForgery:
    def test_replayed_quote_rejected(self, small_testbed):
        """Capture a quote, replay it against a later challenge."""
        testbed = small_testbed
        agent = testbed.agent
        old_evidence = agent.attest("old-nonce")
        real_attest = agent.attest

        def replaying_attest(nonce, offset=0, **kwargs):
            fresh = real_attest(nonce, offset, **kwargs)
            return dataclasses.replace(fresh, quote=old_evidence.quote)

        agent.attest = replaying_attest
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].kind is FailureKind.INVALID_QUOTE
        assert "nonce" in result.failures[0].detail

    def test_quote_from_different_tpm_rejected(self, small_testbed, manufacturer):
        """Evidence signed by another machine's (genuine!) TPM."""
        testbed = small_testbed
        donor_tpm = manufacturer.manufacture()
        donor_ak = donor_tpm.create_ak()
        agent = testbed.agent
        real_attest = agent.attest

        def proxying_attest(nonce, offset=0, **kwargs):
            fresh = real_attest(nonce, offset, **kwargs)
            forged_quote = donor_tpm.quote(
                donor_ak.public.fingerprint(), nonce, [10]
            )
            return dataclasses.replace(fresh, quote=forged_quote)

        agent.attest = proxying_attest
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].kind is FailureKind.INVALID_QUOTE

    def test_resigned_quote_with_rogue_key_rejected(self, small_testbed):
        """Attacker re-signs a doctored quote with a key they own."""
        from repro.crypto.rsa import generate_keypair

        testbed = small_testbed
        rogue = generate_keypair(SeededRng("rogue-ak"), bits=1024)
        agent = testbed.agent
        real_attest = agent.attest

        def resigning_attest(nonce, offset=0, **kwargs):
            fresh = real_attest(nonce, offset, **kwargs)
            doctored = dataclasses.replace(
                fresh.quote,
                ak_fingerprint=rogue.public.fingerprint(),
                signature=rogue.sign(fresh.quote.signed_bytes()),
            )
            return dataclasses.replace(fresh, quote=doctored)

        agent.attest = resigning_attest
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].kind is FailureKind.INVALID_QUOTE


class TestLogManipulation:
    def test_suppressing_an_attack_entry_breaks_replay(self, small_testbed):
        """Drop the incriminating entry from the shipped log."""
        testbed = small_testbed
        assert testbed.poll().ok
        testbed.machine.install_file("/usr/bin/evil", b"x", executable=True)
        testbed.machine.exec_file("/usr/bin/evil")
        agent = testbed.agent
        real_attest = agent.attest

        def censoring_attest(nonce, offset=0, **kwargs):
            fresh = real_attest(nonce, offset, **kwargs)
            kept = tuple(
                line for line in fresh.ima_log_lines if "/usr/bin/evil" not in line
            )
            return dataclasses.replace(fresh, ima_log_lines=kept)

        agent.attest = censoring_attest
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].kind is FailureKind.PCR_MISMATCH

    def test_substituting_benign_hash_detected(self, small_testbed):
        """Rewrite the evil entry to carry an in-policy digest."""
        testbed = small_testbed
        assert testbed.poll().ok
        ls_digest = testbed.policy.digests_for("/usr/bin/ls")[0]
        testbed.machine.install_file("/usr/bin/evil", b"x", executable=True)
        testbed.machine.exec_file("/usr/bin/evil")
        agent = testbed.agent
        real_attest = agent.attest

        def rewriting_attest(nonce, offset=0, **kwargs):
            fresh = real_attest(nonce, offset, **kwargs)
            lines = []
            for line in fresh.ima_log_lines:
                if "/usr/bin/evil" in line:
                    parts = line.split(" ")
                    parts[3] = "sha256:" + ls_digest
                    parts[4] = "/usr/bin/ls"
                    line = " ".join(parts)
                lines.append(line)
            return dataclasses.replace(fresh, ima_log_lines=tuple(lines))

        agent.attest = rewriting_attest
        result = testbed.poll()
        assert not result.ok
        # The rewritten line's template hash no longer matches its
        # content -- or, if the attacker fixes that too, the PCR replay
        # diverges.  Either way it's a tamper signal, not a policy miss.
        assert result.failures[0].kind in (
            FailureKind.LOG_TAMPERED, FailureKind.PCR_MISMATCH,
        )

    def test_fully_consistent_forged_log_still_fails_pcr(self, small_testbed):
        """Rebuild template hashes so the log is self-consistent."""
        from repro.kernelsim.ima import template_hash

        testbed = small_testbed
        assert testbed.poll().ok
        testbed.machine.install_file("/usr/bin/evil", b"x", executable=True)
        testbed.machine.exec_file("/usr/bin/evil")
        agent = testbed.agent
        real_attest = agent.attest

        def consistent_forgery(nonce, offset=0, **kwargs):
            fresh = real_attest(nonce, offset, **kwargs)
            lines = []
            for line in fresh.ima_log_lines:
                if "/usr/bin/evil" in line:
                    parts = line.split(" ")
                    parts[4] = "/usr/bin/harmless"
                    parts[1] = template_hash(parts[3], parts[4])
                    line = " ".join(parts)
                lines.append(line)
            return dataclasses.replace(fresh, ima_log_lines=tuple(lines))

        agent.attest = consistent_forgery
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].kind is FailureKind.PCR_MISMATCH


class TestRegistrarDefenses:
    def test_cloned_ak_without_binding_rejected(self, machine, manufacturer):
        """An AK not certified by the device's EK is refused."""
        registrar = KeylimeRegistrar([manufacturer.root_certificate])
        from repro.keylime.agent import KeylimeAgent

        agent = KeylimeAgent("clone", machine)

        donor = manufacturer.manufacture()
        foreign_ak = donor.create_ak()

        # Force the foreign AK onto the agent (attacker-controlled box).
        agent._ak = foreign_ak
        with pytest.raises(RegistrationError):
            registrar.register(agent)

    def test_homebrew_tpm_rejected(self, manufacturer):
        """A software TPM with a self-issued certificate is refused."""
        rogue_mfr = TpmManufacturer("HomebrewTPM", SeededRng("homebrew"))
        rogue_tpm = rogue_mfr.manufacture()
        from repro.keylime.agent import KeylimeAgent
        from repro.kernelsim.kernel import Machine

        box = Machine("rogue-box", rogue_tpm)
        box.boot()
        agent = KeylimeAgent("rogue", box)
        registrar = KeylimeRegistrar([manufacturer.root_certificate])
        with pytest.raises(RegistrationError, match="EK certificate"):
            registrar.register(agent)


class TestRollback:
    def test_reboot_cannot_be_hidden(self, small_testbed):
        """The TPM reset counter exposes a reboot even if the log looks right."""
        testbed = small_testbed
        assert testbed.poll().ok
        first_reset = testbed.machine.tpm.reset_count
        testbed.machine.reboot()
        # The verifier notices the reset counter change and replays the
        # fresh log from scratch rather than trusting continuity.
        result = testbed.poll()
        assert result.ok
        assert testbed.machine.tpm.reset_count == first_reset + 1

    def test_stale_quote_cannot_satisfy_fresh_challenge(self, small_testbed):
        quote = small_testbed.agent.attest("nonce-1").quote
        record = small_testbed.registrar.lookup(small_testbed.agent_id)
        with pytest.raises(QuoteVerificationError):
            verify_quote(quote, record.ak_public, "nonce-2")
