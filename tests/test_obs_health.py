"""Tests for the health detectors, SLO trackers and alert engine."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.events import EventLog
from repro.obs.alerts import (
    Alert,
    AlertEngine,
    BurnRateRule,
    SloTracker,
    standard_burn_rules,
    standard_slos,
)
from repro.obs.health import (
    CoverageGapDetector,
    Ewma,
    FailureRateDetector,
    HealthMonitor,
    HealthWatch,
    LatencyAnomalyDetector,
    SlidingWindow,
    render_dashboard,
)
from repro.obs.metrics import MetricsRegistry

HOUR = 3600.0
POLL = 1800.0


class TestEwma:
    def test_first_sample_seeds_the_average(self):
        ewma = Ewma(alpha=0.3)
        assert ewma.update(10.0) == 10.0
        assert ewma.samples == 1

    def test_smoothing(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(0.0)
        assert ewma.update(1.0) == 0.5
        assert ewma.update(1.0) == 0.75


class TestSlidingWindow:
    def test_mean_and_std(self):
        window = SlidingWindow(8)
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            window.push(value)
        assert window.mean == pytest.approx(5.0)
        assert window.std == pytest.approx(2.0)

    def test_eviction_keeps_running_sums_consistent(self):
        window = SlidingWindow(3)
        for value in (100.0, 1.0, 2.0, 3.0):
            window.push(value)  # the 100 is evicted
        assert len(window) == 3
        assert window.mean == pytest.approx(2.0)

    def test_zscore_zero_when_flat(self):
        window = SlidingWindow(4)
        for _ in range(4):
            window.push(5.0)
        assert window.zscore(100.0) == 0.0

    def test_zscore_measures_deviation(self):
        window = SlidingWindow(8)
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            window.push(value)
        assert window.zscore(9.0) == pytest.approx(2.0)

    def test_no_catastrophic_cancellation_on_large_constants(self):
        """Regression: E[x^2] - E[x]^2 on ~1e9-scale near-constant
        samples leaves positive rounding noise that used to produce a
        tiny bogus sigma -- turning nanoseconds of jitter into huge
        z-scores.  The noise floor must report std == 0.0 here."""
        window = SlidingWindow(32)
        base = 1.0e9
        for i in range(32):
            # Jitter far below the cancellation error of the sums.
            window.push(base + (i % 2) * 1e-3)
        assert window.std == 0.0
        assert window.zscore(base + 1.0) == 0.0

    def test_real_spread_on_large_values_still_measured(self):
        window = SlidingWindow(32)
        for i in range(32):
            window.push(1.0e9 + (i % 2) * 1e6)
        assert window.std == pytest.approx(5e5)

    def test_resync_repairs_running_sum_drift(self):
        window = SlidingWindow(16)
        pushes = SlidingWindow.RESYNC_EVERY + 8
        for i in range(pushes):
            window.push(1.0e9 if i % 2 else 1.0e-9)
        # After many evictions of mixed-magnitude values the running
        # sums have been resynced from the retained window at least
        # once; mean/std must match a from-scratch computation.
        values = list(window._window)
        mean = sum(values) / len(values)
        assert window.mean == pytest.approx(mean)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        assert window.std == pytest.approx(variance**0.5, rel=1e-6)


class TestLatencyAnomalyDetector:
    def test_quiet_stream_never_alerts(self):
        detector = LatencyAnomalyDetector(min_samples=4)
        for tick in range(20):
            assert detector.observe(float(tick), 0.005) is None

    def test_spike_alerts_after_warmup(self):
        detector = LatencyAnomalyDetector(min_samples=4, threshold=3.0)
        for tick in range(8):
            detector.observe(float(tick), 0.005 + 0.0001 * (tick % 3))
        alert = detector.observe(8.0, 0.050)
        assert alert is not None
        assert alert.rule == "health.poll_latency_anomaly"
        assert alert.severity == "warning"
        assert alert.detail["zscore"] >= 3.0

    def test_no_alert_before_min_samples(self):
        detector = LatencyAnomalyDetector(min_samples=10)
        for tick in range(9):
            assert detector.observe(float(tick), 0.005) is None
        # Even a huge spike is withheld until the window is warm.
        assert detector.observe(9.0, 10.0) is None

    def test_min_ratio_suppresses_jitter_on_tight_streams(self):
        # Sigma is microscopic, so the z-score is huge -- but the value
        # is only 1.1x the mean and must not page.
        detector = LatencyAnomalyDetector(min_samples=4, min_ratio=1.5)
        for tick in range(8):
            detector.observe(float(tick), 0.005 + 1e-9 * tick)
        assert detector.observe(8.0, 0.0055) is None


class TestFailureRateDetector:
    def test_fires_on_sustained_failures(self):
        detector = FailureRateDetector(min_samples=3, threshold=0.5)
        assert detector.observe(0.0, 5, 10) is None
        assert detector.observe(1.0, 8, 10) is None
        alert = detector.observe(2.0, 9, 10)
        assert alert is not None
        assert alert.rule == "health.failure_rate"
        assert alert.severity == "critical"

    def test_empty_tick_is_not_a_sample(self):
        detector = FailureRateDetector(min_samples=1, threshold=0.5)
        assert detector.observe(0.0, 0, 0) is None
        assert detector.ewma.samples == 0


class TestCoverageGapDetector:
    def test_healthy_agent_never_gaps(self):
        gaps = CoverageGapDetector(gap_polls=3)
        gaps.watch("agent-a", POLL)
        for tick in range(1, 20):
            gaps.record_success("agent-a", tick * POLL)
            assert gaps.check(tick * POLL) == []

    def test_gap_fires_after_n_missed_polls(self):
        gaps = CoverageGapDetector(gap_polls=3)
        gaps.watch("agent-a", POLL)
        gaps.record_success("agent-a", 2 * POLL)
        assert gaps.check(5 * POLL) == []  # exactly 3 intervals: boundary holds
        alerts = gaps.check(5 * POLL + 1.0)
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.rule == "health.coverage_gap"
        assert alert.severity == "critical"
        assert alert.agent == "agent-a"
        assert alert.detail["gap_started"] == 2 * POLL
        assert alert.detail["missed_polls"] >= 3

    def test_failed_polls_do_not_refresh_trust(self):
        # A fail-looping agent is still a gap: polling happens, but the
        # attestation history gains no fresh evidence.
        gaps = CoverageGapDetector(gap_polls=3)
        gaps.watch("agent-a", POLL)
        gaps.record_success("agent-a", POLL)
        for tick in range(2, 8):
            gaps.record_failure("agent-a", tick * POLL)
        alerts = gaps.check(7 * POLL)
        assert len(alerts) == 1
        assert alerts[0].detail["last_poll"] == 7 * POLL
        assert alerts[0].detail["last_ok"] == POLL

    def test_halt_is_recorded_in_the_alert(self):
        gaps = CoverageGapDetector(gap_polls=2)
        gaps.watch("agent-a", POLL)
        gaps.record_success("agent-a", POLL)
        gaps.record_halt("agent-a", 2 * POLL)
        [alert] = gaps.check(4 * POLL)
        assert alert.detail["polling_halted_at"] == 2 * POLL
        assert "halted" in alert.message

    def test_success_closes_the_gap(self):
        gaps = CoverageGapDetector(gap_polls=2)
        gaps.watch("agent-a", POLL)
        gaps.record_success("agent-a", POLL)
        assert gaps.check(5 * POLL)  # open
        gaps.record_success("agent-a", 5 * POLL)
        assert gaps.check(6 * POLL) == []

    def test_never_attested_agent_gaps_from_watch_start(self):
        gaps = CoverageGapDetector(gap_polls=2)
        gaps.watch("agent-a", POLL, now=10 * POLL)
        assert gaps.check(11 * POLL) == []
        [alert] = gaps.check(13 * POLL)
        assert alert.detail["gap_started"] == 10 * POLL

    def test_rejects_nonpositive_gap_polls(self):
        with pytest.raises(ValueError):
            CoverageGapDetector(gap_polls=0)


class TestSloTracker:
    def test_window_counts_and_burn_rate(self):
        slo = SloTracker("freshness", 0.99)
        for tick in range(10):
            slo.record(tick * POLL, good=tick % 2 == 0)
        total, bad = slo.window_counts(10 * POLL, 9 * POLL)
        assert (total, bad) == (10, 5)
        # bad fraction 0.5 against a 1% budget: 50 budgets burning.
        assert slo.burn_rate(10 * POLL, 9 * POLL) == pytest.approx(50.0)
        assert slo.budget_remaining(10 * POLL, 9 * POLL) == 0.0

    def test_old_samples_expire(self):
        slo = SloTracker("freshness", 0.99, max_window=HOUR)
        slo.record(0.0, good=False)
        slo.record(2 * HOUR, good=True)
        total, bad = slo.window_counts(10 * HOUR, 2 * HOUR)
        assert (total, bad) == (1, 0)
        assert slo.total == 2  # lifetime counters keep everything

    def test_objective_bounds(self):
        with pytest.raises(ConfigurationError):
            SloTracker("broken", 1.0)


class TestBurnRateRule:
    def _burned_tracker(self, now: float) -> SloTracker:
        slo = SloTracker("s", 0.99)
        for tick in range(12):
            slo.record(now - tick * 60.0, good=False)
        return slo

    def test_fires_when_both_windows_burn(self):
        rule = BurnRateRule(
            "s.fast", self._burned_tracker(HOUR), long_window=HOUR,
            short_window=HOUR / 4, factor=14.4,
        )
        alert = rule.evaluate(HOUR)
        assert alert is not None and alert.rule == "s.fast"
        assert alert.detail["long_burn_rate"] >= 14.4

    def test_short_window_gate(self):
        # Burn long ago, recovered recently: sustained but not current.
        slo = SloTracker("s", 0.99)
        for tick in range(12):
            slo.record(tick * 60.0, good=False)
        for tick in range(12, 18):
            slo.record(tick * 60.0, good=True)
        rule = BurnRateRule(
            "s.fast", slo, long_window=18 * 60.0, short_window=5 * 60.0, factor=2.0
        )
        assert rule.evaluate(17 * 60.0) is None

    def test_min_samples_gate(self):
        slo = SloTracker("s", 0.99)
        slo.record(0.0, good=False)
        rule = BurnRateRule(
            "s.fast", slo, long_window=HOUR, short_window=HOUR / 4,
            factor=1.0, min_samples=6,
        )
        assert rule.evaluate(1.0) is None

    def test_inverted_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            BurnRateRule(
                "s.bad", SloTracker("s", 0.99),
                long_window=60.0, short_window=120.0, factor=1.0,
            )

    def test_unknown_severity_rejected(self):
        with pytest.raises(ConfigurationError):
            BurnRateRule(
                "s.bad", SloTracker("s", 0.99),
                long_window=120.0, short_window=60.0, factor=1.0,
                severity="page-everyone",
            )


class TestAlertEngine:
    def _signal(self, time: float, agent: str = "agent-a") -> Alert:
        return Alert(
            time=time, rule="health.coverage_gap", severity="critical",
            agent=agent, message="gap",
        )

    def test_fire_once_per_key(self):
        events = EventLog()
        engine = AlertEngine(events)
        assert len(engine.ingest([self._signal(1.0)], 1.0)) == 1
        assert engine.ingest([self._signal(2.0)], 2.0) == []
        assert len(engine.history) == 1
        assert engine.is_firing("health.coverage_gap", "agent-a")
        assert [e.kind for e in events.by_kind("alert.fired")] == ["alert.fired"]

    def test_absent_signal_resolves(self):
        events = EventLog()
        engine = AlertEngine(events)
        engine.ingest([self._signal(1.0)], 1.0)
        engine.ingest([], 5.0)
        assert not engine.is_firing("health.coverage_gap", "agent-a")
        [resolved] = events.by_kind("alert.resolved")
        assert resolved.details["active_seconds"] == 4.0

    def test_distinct_agents_are_distinct_alerts(self):
        engine = AlertEngine(EventLog())
        fired = engine.ingest(
            [self._signal(1.0, "agent-a"), self._signal(1.0, "agent-b")], 1.0
        )
        assert len(fired) == 2

    def test_evaluate_fires_and_resolves_burn_rules(self):
        events = EventLog()
        engine = AlertEngine(events)
        slo = SloTracker("s", 0.99)
        engine.add_rule(BurnRateRule(
            "s.fast", slo, long_window=HOUR, short_window=HOUR / 4, factor=2.0,
        ))
        for tick in range(10):
            slo.record(tick * 60.0, good=False)
        assert len(engine.evaluate(10 * 60.0)) == 1
        assert engine.evaluate(10 * 60.0) == []  # dedup
        for tick in range(10, 400):
            slo.record(tick * 60.0, good=True)
        engine.evaluate(400 * 60.0)
        assert not engine.is_firing("s.fast")
        assert len(events.by_kind("alert.resolved")) == 1

    def test_ingest_does_not_resolve_burn_rule_state(self):
        events = EventLog()
        engine = AlertEngine(events)
        slo = SloTracker("s", 0.99)
        engine.add_rule(BurnRateRule(
            "s.fast", slo, long_window=HOUR, short_window=HOUR / 4, factor=2.0,
        ))
        for tick in range(10):
            slo.record(tick * 60.0, good=False)
        engine.evaluate(10 * 60.0)
        engine.ingest([], 11 * 60.0)  # detector batch: must not touch s.fast
        assert engine.is_firing("s.fast")


class TestStandardDefinitions:
    def test_standard_slos_cover_the_four_objectives(self):
        slos = standard_slos()
        assert [t.name for t in slos.all()] == [
            "attestation_freshness", "poll_success", "detection_latency",
            "freshness_headroom",
        ]

    def test_burn_rule_windows_scale_with_poll_cadence(self):
        rules = standard_burn_rules(standard_slos(), poll_interval=POLL)
        by_name = {rule.name: rule for rule in rules}
        assert by_name["slo.freshness.fast_burn"].long_window == 4 * POLL
        assert by_name["slo.freshness.slow_burn"].long_window == 24 * POLL
        # A very fast cadence still gets the SRE floor windows.
        fast = standard_burn_rules(standard_slos(), poll_interval=10.0)
        assert {rule.long_window for rule in fast} == {3600.0, 6 * 3600.0}


class TestHealthMonitor:
    def _monitor(self, registry=None) -> tuple[EventLog, HealthMonitor]:
        events = EventLog()
        monitor = HealthMonitor(events, registry=registry, gap_polls=3)
        monitor.watch_agent("agent-a", POLL)
        return events, monitor

    def _ok(self, events: EventLog, time: float, agent: str = "agent-a") -> None:
        events.emit(time, "keylime.verifier", "attestation.ok", agent=agent)

    def test_event_intake_drives_the_gap_detector(self):
        events, monitor = self._monitor()
        self._ok(events, POLL)
        events.emit(
            2 * POLL, "keylime.verifier", "attestation.failed.policy",
            agent="agent-a", detail="nope",
        )
        events.emit(2 * POLL, "keylime.verifier", "polling.halted", agent="agent-a")
        alerts = monitor.check(5 * POLL)
        gap = [a for a in alerts if a.rule == "health.coverage_gap"]
        assert len(gap) == 1
        assert gap[0].detail["polling_halted_at"] == 2 * POLL
        # Both poll outcomes landed in the FP-budget SLO.
        assert monitor.slos.poll_success.total == 2
        assert monitor.slos.poll_success.total_bad == 1

    def test_unwatched_agents_are_ignored(self):
        events, monitor = self._monitor()
        self._ok(events, POLL, agent="agent-stranger")
        assert monitor.slos.poll_success.total == 0

    def test_detection_latency_slo_sampled_once_per_gap(self):
        events, monitor = self._monitor()
        self._ok(events, POLL)
        monitor.check(5 * POLL)
        monitor.check(6 * POLL)
        assert monitor.slos.detection_latency.total == 1

    def test_freshness_gauges_exported(self):
        registry = MetricsRegistry()
        events, monitor = self._monitor(registry=registry)
        self._ok(events, POLL)
        monitor.check(6 * POLL)
        age = registry.get("obs_agent_attestation_age_seconds")
        assert age.labels(agent="agent-a").value == 5 * POLL
        assert registry.get("obs_coverage_gaps_active").value == 1

    def test_close_unsubscribes(self):
        events, monitor = self._monitor()
        monitor.close()
        self._ok(events, POLL)
        assert monitor.slos.poll_success.total == 0


class TestHealthWatch:
    def _attached_watch(self) -> tuple[EventLog, HealthWatch]:
        events = EventLog()
        watch = HealthWatch(gap_polls=3, tick_interval=POLL)
        watch.attach(events, poll_interval=POLL)
        watch.watch_agent("agent-a")
        return events, watch

    def test_tick_builds_an_incident_per_new_alert(self):
        events, watch = self._attached_watch()
        events.emit(POLL, "keylime.verifier", "attestation.ok", agent="agent-a")
        assert watch.tick(2 * POLL) == []
        fired = watch.tick(5 * POLL)
        assert [a.rule for a in fired] == ["health.coverage_gap"]
        assert len(watch.incidents) == 1
        assert watch.incidents[0].agent_id == "agent-a"
        # The same gap does not mint a second incident.
        watch.tick(6 * POLL)
        assert len(watch.incidents) == 1

    def test_finalize_extends_the_open_incident_window(self):
        events, watch = self._attached_watch()
        events.emit(POLL, "keylime.verifier", "attestation.ok", agent="agent-a")
        watch.tick(5 * POLL)
        original = watch.incidents[0]
        assert original.window[1] == 5 * POLL
        # Evidence lands after detection, deep in the still-open gap.
        events.emit(8 * POLL, "attack.p2", "attack.backdoor_executed",
                    agent="agent-a", path="/usr/bin/backdoor")
        [refreshed] = watch.finalize(10 * POLL)
        assert len(watch.incidents) == 1
        assert refreshed.incident_id == original.incident_id
        assert refreshed.window[1] == 10 * POLL
        assert any(
            e["kind"] == "attack.backdoor_executed" for e in refreshed.events
        )

    def test_frames_are_emitted_on_cadence(self):
        frames = []
        events = EventLog()
        watch = HealthWatch(
            tick_interval=POLL,
            on_frame=lambda now, w: frames.append(now),
            frame_every=2,
        )
        watch.attach(events, poll_interval=POLL)
        for tick in range(1, 7):
            watch.tick(tick * POLL)
        assert frames == [2 * POLL, 4 * POLL, 6 * POLL]

    def test_dashboard_renders_state(self):
        events, watch = self._attached_watch()
        events.emit(POLL, "keylime.verifier", "attestation.ok", agent="agent-a")
        watch.tick(6 * POLL)
        text = render_dashboard(watch, 6 * POLL)
        assert "1 in coverage gap" in text
        assert "attestation_freshness" in text
        assert "health.coverage_gap" in text
