"""Tests for certificates and chain verification."""

import pytest

from repro.common.errors import IntegrityError
from repro.common.rng import SeededRng
from repro.crypto.certs import Certificate, CertificateAuthority, verify_chain
from repro.crypto.rsa import generate_keypair


@pytest.fixture(scope="module")
def ca() -> CertificateAuthority:
    return CertificateAuthority("TestCA", SeededRng("certs-ca"), key_bits=1024)


@pytest.fixture(scope="module")
def leaf(ca: CertificateAuthority) -> Certificate:
    key = generate_keypair(SeededRng("certs-leaf"), bits=1024)
    return ca.issue("EK:device-1", key.public)


class TestIssuance:
    def test_root_is_self_signed(self, ca: CertificateAuthority):
        root = ca.root_certificate
        assert root.self_signed
        assert root.verify_signature(ca.public_key)

    def test_leaf_fields(self, ca: CertificateAuthority, leaf: Certificate):
        assert leaf.subject == "EK:device-1"
        assert leaf.issuer == "TestCA"
        assert not leaf.self_signed

    def test_serials_increase(self, ca: CertificateAuthority):
        key = generate_keypair(SeededRng("serial"), bits=512)
        first = ca.issue("a", key.public)
        second = ca.issue("b", key.public)
        assert second.serial > first.serial

    def test_leaf_signature_verifies(self, ca: CertificateAuthority, leaf: Certificate):
        assert leaf.verify_signature(ca.public_key)

    def test_leaf_signature_fails_with_wrong_key(self, leaf: Certificate):
        other = generate_keypair(SeededRng("wrong"), bits=1024)
        assert not leaf.verify_signature(other.public)


class TestChainVerification:
    def test_valid_single_link_chain(self, ca: CertificateAuthority, leaf: Certificate):
        verify_chain([leaf], [ca.root_certificate])  # should not raise

    def test_untrusted_root_rejected(self, leaf: Certificate):
        other_ca = CertificateAuthority("OtherCA", SeededRng("other-ca"), key_bits=512)
        with pytest.raises(IntegrityError):
            verify_chain([leaf], [other_ca.root_certificate])

    def test_empty_chain_rejected(self, ca: CertificateAuthority):
        with pytest.raises(IntegrityError):
            verify_chain([], [ca.root_certificate])

    def test_no_roots_rejected(self, leaf: Certificate):
        with pytest.raises(IntegrityError):
            verify_chain([leaf], [])

    def test_tampered_certificate_rejected(self, ca: CertificateAuthority, leaf: Certificate):
        forged = Certificate(
            subject="EK:attacker",
            issuer=leaf.issuer,
            public_key=leaf.public_key,
            serial=leaf.serial,
            signature=leaf.signature,
        )
        with pytest.raises(IntegrityError):
            verify_chain([forged], [ca.root_certificate])

    def test_multi_link_chain(self, ca: CertificateAuthority):
        # Root -> intermediate -> leaf.
        intermediate_key = generate_keypair(SeededRng("intermediate"), bits=1024)
        intermediate_cert = ca.issue("Intermediate", intermediate_key.public)

        # Hand-roll the intermediate's signing of a leaf.
        from repro.crypto.certs import _tbs_bytes

        leaf_key = generate_keypair(SeededRng("leaf2"), bits=512)
        tbs = _tbs_bytes("EK:device-2", "Intermediate", leaf_key.public, 1)
        leaf2 = Certificate(
            subject="EK:device-2",
            issuer="Intermediate",
            public_key=leaf_key.public,
            serial=1,
            signature=intermediate_key.sign(tbs),
        )
        verify_chain([leaf2, intermediate_cert], [ca.root_certificate])

    def test_chain_break_detected(self, ca: CertificateAuthority, leaf: Certificate):
        unrelated_ca = CertificateAuthority("Unrelated", SeededRng("unrelated"), key_bits=512)
        with pytest.raises(IntegrityError, match="chain break|bad signature|trusted root"):
            verify_chain([leaf, unrelated_ca.root_certificate], [ca.root_certificate])

    def test_several_trusted_roots(self, ca: CertificateAuthority, leaf: Certificate):
        other = CertificateAuthority("Another", SeededRng("another"), key_bits=512)
        verify_chain([leaf], [other.root_certificate, ca.root_certificate])
