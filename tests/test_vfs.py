"""Tests for the virtual filesystem."""

import pytest

from repro.kernelsim.vfs import FilesystemType, Vfs, VfsError


@pytest.fixture()
def vfs() -> Vfs:
    filesystem = Vfs()
    filesystem.mount("/tmp2", FilesystemType.TMPFS)
    filesystem.mount("/proc", FilesystemType.PROC)
    return filesystem


class TestBasicOperations:
    def test_write_and_read(self, vfs: Vfs):
        vfs.write_file("/etc/hostname", b"prover")
        assert vfs.read_file("/etc/hostname") == b"prover"

    def test_exists(self, vfs: Vfs):
        assert not vfs.exists("/a")
        vfs.write_file("/a", b"x")
        assert vfs.exists("/a")

    def test_read_missing_raises(self, vfs: Vfs):
        with pytest.raises(VfsError):
            vfs.read_file("/nope")

    def test_unlink(self, vfs: Vfs):
        vfs.write_file("/a", b"x")
        vfs.unlink("/a")
        assert not vfs.exists("/a")

    def test_unlink_missing_raises(self, vfs: Vfs):
        with pytest.raises(VfsError):
            vfs.unlink("/nope")

    def test_relative_paths_rejected(self, vfs: Vfs):
        with pytest.raises(VfsError):
            vfs.write_file("etc/passwd", b"x")

    def test_paths_normalised(self, vfs: Vfs):
        vfs.write_file("/usr//bin/../bin/ls", b"ls")
        assert vfs.exists("/usr/bin/ls")

    def test_append(self, vfs: Vfs):
        vfs.write_file("/log", b"a")
        vfs.append_file("/log", b"b")
        assert vfs.read_file("/log") == b"ab"

    def test_append_missing_raises(self, vfs: Vfs):
        with pytest.raises(VfsError):
            vfs.append_file("/nope", b"x")

    def test_chmod(self, vfs: Vfs):
        vfs.write_file("/a", b"x")
        assert not vfs.stat("/a").executable
        vfs.chmod("/a", True)
        assert vfs.stat("/a").executable

    def test_chmod_missing_raises(self, vfs: Vfs):
        with pytest.raises(VfsError):
            vfs.chmod("/nope", True)


class TestInodeSemantics:
    def test_overwrite_keeps_inode_bumps_iversion(self, vfs: Vfs):
        first = vfs.write_file("/a", b"v1")
        second = vfs.write_file("/a", b"v2")
        assert second.ino == first.ino
        assert second.iversion == first.iversion + 1

    def test_new_file_gets_new_inode(self, vfs: Vfs):
        a = vfs.write_file("/a", b"x")
        b = vfs.write_file("/b", b"x")
        assert a.ino != b.ino

    def test_recreate_after_unlink_gets_new_inode(self, vfs: Vfs):
        a = vfs.write_file("/a", b"x")
        vfs.unlink("/a")
        a2 = vfs.write_file("/a", b"x")
        assert a2.ino != a.ino

    def test_append_bumps_iversion(self, vfs: Vfs):
        first = vfs.write_file("/a", b"x")
        after = vfs.append_file("/a", b"y")
        assert after.iversion == first.iversion + 1

    def test_chmod_does_not_bump_iversion(self, vfs: Vfs):
        first = vfs.write_file("/a", b"x")
        after = vfs.chmod("/a", True)
        assert after.iversion == first.iversion


class TestRename:
    def test_same_fs_keeps_inode(self, vfs: Vfs):
        src = vfs.write_file("/tmp_stage/payload", b"x", executable=True)
        dst = vfs.rename("/tmp_stage/payload", "/usr/bin/payload")
        assert dst.ino == src.ino
        assert dst.fs_id == src.fs_id
        assert not vfs.exists("/tmp_stage/payload")
        assert vfs.read_file("/usr/bin/payload") == b"x"

    def test_cross_fs_new_inode(self, vfs: Vfs):
        src = vfs.write_file("/tmp2/payload", b"x", executable=True)
        dst = vfs.rename("/tmp2/payload", "/usr/bin/payload")
        assert (dst.fs_id, dst.ino) != (src.fs_id, src.ino)
        assert vfs.read_file("/usr/bin/payload") == b"x"

    def test_rename_missing_raises(self, vfs: Vfs):
        with pytest.raises(VfsError):
            vfs.rename("/nope", "/a")

    def test_rename_preserves_exec_bit(self, vfs: Vfs):
        vfs.write_file("/a", b"x", executable=True)
        assert vfs.rename("/a", "/b").executable


class TestMounts:
    def test_longest_prefix_wins(self, vfs: Vfs):
        root_stat = vfs.write_file("/etc/x", b"x")
        tmp_stat = vfs.write_file("/tmp2/x", b"x")
        assert root_stat.fstype is FilesystemType.EXT4
        assert tmp_stat.fstype is FilesystemType.TMPFS

    def test_duplicate_mount_rejected(self, vfs: Vfs):
        with pytest.raises(VfsError):
            vfs.mount("/tmp2", FilesystemType.RAMFS)

    def test_nested_mounts(self):
        vfs = Vfs()
        vfs.mount("/sys", FilesystemType.SYSFS)
        vfs.mount("/sys/kernel/debug", FilesystemType.DEBUGFS)
        assert vfs.write_file("/sys/x", b"").fstype is FilesystemType.SYSFS
        assert (
            vfs.write_file("/sys/kernel/debug/x", b"").fstype
            is FilesystemType.DEBUGFS
        )

    def test_fs_magic_values(self):
        assert FilesystemType.EXT4.magic == 0xEF53
        assert FilesystemType.TMPFS.magic == 0x01021994
        # devtmpfs reports TMPFS_MAGIC -- a real Linux quirk the
        # mitigated IMA policy must account for.
        assert FilesystemType.DEVTMPFS.magic == FilesystemType.TMPFS.magic

    def test_clear(self, vfs: Vfs):
        vfs.write_file("/tmp2/a", b"x")
        _, tmpfs = [(p, f) for p, f in vfs.mounts() if p == "/tmp2"][0]
        tmpfs.clear()
        assert not vfs.exists("/tmp2/a")


class TestWalk:
    def test_walk_prefix(self, vfs: Vfs):
        vfs.write_file("/usr/bin/ls", b"x", executable=True)
        vfs.write_file("/usr/bin/cat", b"x", executable=True)
        vfs.write_file("/etc/passwd", b"x")
        paths = vfs.files_under("/usr")
        assert paths == ["/usr/bin/cat", "/usr/bin/ls"]

    def test_walk_root_sees_all_mounts(self, vfs: Vfs):
        vfs.write_file("/a", b"x")
        vfs.write_file("/tmp2/b", b"x")
        assert set(vfs.files_under("/")) >= {"/a", "/tmp2/b"}

    def test_walk_is_sorted_deterministic(self, vfs: Vfs):
        for name in ("c", "a", "b"):
            vfs.write_file(f"/usr/{name}", b"x")
        assert vfs.files_under("/usr") == ["/usr/a", "/usr/b", "/usr/c"]

    def test_walk_exact_prefix_boundary(self, vfs: Vfs):
        vfs.write_file("/usr/bin/ls", b"x")
        vfs.write_file("/usr2/bin/ls", b"x")
        assert vfs.files_under("/usr") == ["/usr/bin/ls"]


class TestStat:
    def test_stat_fields(self, vfs: Vfs):
        vfs.write_file("/usr/bin/tool", b"binary", executable=True)
        stat = vfs.stat("/usr/bin/tool")
        assert stat.path == "/usr/bin/tool"
        assert stat.size == 6
        assert stat.executable
        assert stat.file_key == (stat.fs_id, stat.ino)

    def test_stat_missing_raises(self, vfs: Vfs):
        with pytest.raises(VfsError):
            vfs.stat("/nope")
