"""Determinism guarantees: same seed => bit-identical results.

DESIGN.md promises every figure and table is reproducible bit-for-bit
from a seed.  These tests hold the experiment harnesses to it --
including chaos runs: the fault schedule is part of the seed space, so
one (seed, chaos profile, chaos seed) triple must replay byte-for-byte,
and a chaos layer that injects nothing must be indistinguishable from
no chaos layer at all.
"""

import json

from repro.attacks import AttackMode
from repro.experiments.fn_matrix import run_attack_trial
from repro.experiments.fp_week import run_fp_week
from repro.experiments.longrun import run_longrun
from repro.attacks.botnets import Mirai

from tests.conftest import small_config


def _event_dump(result) -> str:
    """The run's full event log as one canonical JSON blob."""
    return json.dumps(
        [
            [record.time, record.source, record.kind, dict(record.details)]
            for record in result.fleet.events
        ],
        sort_keys=True,
        default=str,
    )


def _verdict_sequences(result):
    """Per-node (ok, transient, entries) verdict streams."""
    return {
        node.name: [
            (r.ok, r.transient, r.entries_processed, r.retry_attempts)
            for r in result.fleet.verifier.results_of(node.agent.agent_id)
        ]
        for node in result.fleet.nodes
    }


# Counter/gauge families whose values derive from perf_counter wall time
# rather than the simulated clock; like the histograms below, they differ
# between two otherwise-identical runs.
_WALL_CLOCK_FAMILIES = {
    "fleet_tick_busy_seconds_total",
    "fleet_tick_utilization",
}


def _counter_snapshot(registry) -> dict:
    """Counters and gauges only: wall-clock histograms are excluded
    (perf_counter latencies are real time, not simulated time)."""
    snapshot = {}
    for family in registry.families():
        if family.kind == "histogram":
            continue
        if family.name in _WALL_CLOCK_FAMILIES:
            continue
        snapshot[family.name] = sorted(
            (tuple(sorted(labels.items())), child.value)
            for labels, child in family.samples()
        )
    return snapshot


class TestExperimentDeterminism:
    def test_longrun_bitwise_stable(self):
        a = run_longrun(config=small_config("det-longrun"), n_days=4)
        b = run_longrun(config=small_config("det-longrun"), n_days=4)
        assert a.update_minutes == b.update_minutes
        assert a.packages_per_update == b.packages_per_update
        assert a.entries_per_update == b.entries_per_update
        assert a.final_policy_lines == b.final_policy_lines
        assert len(a.fp_incidents) == len(b.fp_incidents)

    def test_longrun_seed_sensitivity(self):
        a = run_longrun(config=small_config("det-a"), n_days=4)
        b = run_longrun(config=small_config("det-b"), n_days=4)
        # Different seeds should give different streams (overwhelmingly).
        assert (
            a.packages_per_update != b.packages_per_update
            or a.update_minutes != b.update_minutes
        )

    def test_fp_week_stable(self):
        config_a = small_config("det-fp")
        config_a.policy_mode = "static"
        config_a.continue_on_failure = True
        config_b = small_config("det-fp")
        config_b.policy_mode = "static"
        config_b.continue_on_failure = True
        a = run_fp_week(config=config_a, n_days=3)
        b = run_fp_week(config=config_b, n_days=3)
        assert a.counts_by_cause == b.counts_by_cause
        assert [(r.path, r.digest) for r in a.records] == [
            (r.path, r.digest) for r in b.records
        ]

    def test_attack_trial_stable(self):
        a = run_attack_trial(
            Mirai(), AttackMode.BASIC, mitigated=False, config=small_config("det-atk")
        )
        b = run_attack_trial(
            Mirai(), AttackMode.BASIC, mitigated=False, config=small_config("det-atk")
        )
        assert a == b


class TestChaosDeterminism:
    """Same (seed, chaos profile, chaos seed) => byte-identical runs."""

    _ARGS = dict(seed="det-chaos", n_nodes=2, n_days=1, n_filler_packages=8)

    def _run(self, chaos=None, instrument=False):
        from repro.experiments.fleet_run import run_fleet_scenario
        from repro.obs import runtime as obs_runtime

        if not instrument:
            return run_fleet_scenario(chaos=chaos, **self._ARGS), None
        with obs_runtime.session() as telemetry:
            result = run_fleet_scenario(chaos=chaos, **self._ARGS)
            return result, _counter_snapshot(telemetry.registry)

    def test_chaos_run_bitwise_stable(self):
        from repro.experiments.fleet_run import ChaosInjection

        chaos = ChaosInjection(profile="mixed", chaos_seed="det-weather")
        a, metrics_a = self._run(chaos=chaos, instrument=True)
        b, metrics_b = self._run(
            chaos=ChaosInjection(profile="mixed", chaos_seed="det-weather"),
            instrument=True,
        )
        assert _event_dump(a) == _event_dump(b)
        assert _verdict_sequences(a) == _verdict_sequences(b)
        assert metrics_a == metrics_b
        # The fault schedules themselves replayed identically.
        assert [
            (r.time, r.agent_id, r.kind, r.leg, r.detail)
            for r in a.fault_plan.injections
        ] == [
            (r.time, r.agent_id, r.kind, r.leg, r.detail)
            for r in b.fault_plan.injections
        ]
        assert a.fault_plan.injections, "chaos run injected nothing to compare"

    def test_chaos_seed_sensitivity(self):
        from repro.experiments.fleet_run import ChaosInjection

        a, _ = self._run(chaos=ChaosInjection(profile="mixed", chaos_seed="w-a"))
        b, _ = self._run(chaos=ChaosInjection(profile="mixed", chaos_seed="w-b"))
        assert a.fault_plan.counts_by_kind() != b.fault_plan.counts_by_kind() or [
            (r.time, r.kind) for r in a.fault_plan.injections
        ] != [(r.time, r.kind) for r in b.fault_plan.injections]

    def test_clean_plan_is_bit_identical_to_no_plan(self):
        """The zero-perturbation guarantee: installing the fault layer
        with no matching specs changes nothing -- not one event, not
        one verdict, not one RNG draw downstream."""
        from repro.experiments.fleet_run import ChaosInjection

        bare, _ = self._run(chaos=None)
        clean, _ = self._run(
            chaos=ChaosInjection(profile="clean", chaos_seed="irrelevant")
        )
        assert clean.fault_plan.injections == []
        assert _event_dump(bare) == _event_dump(clean)
        assert _verdict_sequences(bare) == _verdict_sequences(clean)

    def test_windowed_chaos_quiet_outside_window(self):
        """A plan scoped to a window injects only inside it, and the
        schedule replays exactly."""
        from repro.common.clock import hours
        from repro.experiments.fleet_run import ChaosInjection

        chaos = ChaosInjection(
            profile="drops", chaos_seed="windowed",
            start=hours(3), end=hours(9),
        )
        result, _ = self._run(chaos=chaos)
        for record in result.fault_plan.injections:
            assert hours(3) <= record.time < hours(9)
