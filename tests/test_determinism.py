"""Determinism guarantees: same seed => bit-identical results.

DESIGN.md promises every figure and table is reproducible bit-for-bit
from a seed.  These tests hold the experiment harnesses to it.
"""

from repro.attacks import AttackMode
from repro.experiments.fn_matrix import run_attack_trial
from repro.experiments.fp_week import run_fp_week
from repro.experiments.longrun import run_longrun
from repro.attacks.botnets import Mirai

from tests.conftest import small_config


class TestExperimentDeterminism:
    def test_longrun_bitwise_stable(self):
        a = run_longrun(config=small_config("det-longrun"), n_days=4)
        b = run_longrun(config=small_config("det-longrun"), n_days=4)
        assert a.update_minutes == b.update_minutes
        assert a.packages_per_update == b.packages_per_update
        assert a.entries_per_update == b.entries_per_update
        assert a.final_policy_lines == b.final_policy_lines
        assert len(a.fp_incidents) == len(b.fp_incidents)

    def test_longrun_seed_sensitivity(self):
        a = run_longrun(config=small_config("det-a"), n_days=4)
        b = run_longrun(config=small_config("det-b"), n_days=4)
        # Different seeds should give different streams (overwhelmingly).
        assert (
            a.packages_per_update != b.packages_per_update
            or a.update_minutes != b.update_minutes
        )

    def test_fp_week_stable(self):
        config_a = small_config("det-fp")
        config_a.policy_mode = "static"
        config_a.continue_on_failure = True
        config_b = small_config("det-fp")
        config_b.policy_mode = "static"
        config_b.continue_on_failure = True
        a = run_fp_week(config=config_a, n_days=3)
        b = run_fp_week(config=config_b, n_days=3)
        assert a.counts_by_cause == b.counts_by_cause
        assert [(r.path, r.digest) for r in a.records] == [
            (r.path, r.digest) for r in b.records
        ]

    def test_attack_trial_stable(self):
        a = run_attack_trial(
            Mirai(), AttackMode.BASIC, mitigated=False, config=small_config("det-atk")
        )
        b = run_attack_trial(
            Mirai(), AttackMode.BASIC, mitigated=False, config=small_config("det-atk")
        )
        assert a == b
