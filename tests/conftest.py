"""Shared fixtures.

The ``small_testbed`` fixture builds a reduced-scale rig (fewer filler
packages, fewer files per package) so integration-flavoured tests stay
fast; experiments that need paper-scale statistics build their own.
"""

from __future__ import annotations

import pytest

from repro.common.clock import Scheduler
from repro.common.rng import SeededRng
from repro.distro.workload import ReleaseStreamConfig
from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed
from repro.kernelsim.kernel import Machine
from repro.tpm.device import Tpm, TpmManufacturer


@pytest.fixture()
def rng() -> SeededRng:
    return SeededRng("tests")


@pytest.fixture()
def scheduler() -> Scheduler:
    return Scheduler()


@pytest.fixture(scope="session")
def manufacturer() -> TpmManufacturer:
    # Key generation is the slowest fixture step; share one manufacturer
    # (and thus one CA keypair) across the whole session.
    return TpmManufacturer("Infineon", SeededRng("tests/tpm"))


@pytest.fixture()
def tpm(manufacturer: TpmManufacturer) -> Tpm:
    return manufacturer.manufacture()


@pytest.fixture()
def machine(tpm: Tpm) -> Machine:
    box = Machine("test-box", tpm)
    box.boot()
    return box


def small_config(seed: int | str = "small") -> TestbedConfig:
    """A reduced-scale testbed configuration for fast tests."""
    return TestbedConfig(
        seed=seed,
        n_filler_packages=15,
        mean_exec_files=5.0,
        stream=ReleaseStreamConfig(
            mean_packages_per_day=4.0,
            sd_packages_per_day=4.0,
            mean_exec_files_per_package=6.0,
            kernel_release_every_days=0,
        ),
    )


@pytest.fixture()
def small_testbed() -> Testbed:
    return build_testbed(small_config())
