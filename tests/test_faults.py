"""Unit tests for the fault-injection layer and the retry policy.

The chaos property suite (test_chaos_properties.py) proves system-wide
invariants over whole runs; this module pins the component contracts
those invariants rest on: spec matching, per-channel RNG isolation,
zero-draw clean plans, the retry classifier, and backoff arithmetic.
"""

from __future__ import annotations

import math

import pytest

from repro.common.errors import IntegrityError, TransientTransportError
from repro.common.rng import SeededRng
from repro.keylime.faults import (
    CHAOS_PROFILES,
    FaultKind,
    FaultPlan,
    FaultSpec,
    INTEGRITY_KINDS,
    TRANSIENT_KINDS,
    chaos_profile,
)
from repro.keylime.retrypolicy import (
    RetryBudgetExceeded,
    RetryPolicy,
    classify,
)
from repro.keylime.transport import challenge_to_json


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


class TestFaultSpec:
    def test_validates_probability(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.DROP, probability=1.5)

    def test_validates_leg(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.DROP, leg="sideways")

    def test_validates_window(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.DROP, start=10.0, end=5.0)

    def test_matches_window_half_open(self):
        spec = FaultSpec(FaultKind.DROP, start=10.0, end=20.0)
        assert not spec.matches("a", "request", 9.9)
        assert spec.matches("a", "request", 10.0)
        assert spec.matches("a", "request", 19.9)
        assert not spec.matches("a", "request", 20.0)

    def test_matches_nodes_and_leg(self):
        spec = FaultSpec(FaultKind.DROP, leg="response", nodes=("a", "b"))
        assert spec.matches("a", "response", 0.0)
        assert not spec.matches("a", "request", 0.0)
        assert not spec.matches("c", "response", 0.0)

    def test_kind_taxonomy_is_total(self):
        assert TRANSIENT_KINDS | INTEGRITY_KINDS == frozenset(FaultKind)
        assert not TRANSIENT_KINDS & INTEGRITY_KINDS


class TestFaultPlan:
    def _blob(self, nonce: str = "aa" * 10) -> str:
        return challenge_to_json(nonce, 0)

    def test_clean_plan_is_identity_and_draws_nothing(self):
        rng = SeededRng("clean")
        before = rng.fork("chaos/a/request").random()
        plan = FaultPlan(SeededRng("clean"))
        channel = plan.channel("a", "request")
        blob = self._blob()
        for _ in range(50):
            assert channel(blob) == blob
        # The channel stream was forked but never drawn from: its next
        # draw equals the first draw of a fresh fork.
        assert plan._channel_rngs[("a", "request")].random() == before
        assert plan.injections == []

    def test_non_matching_specs_draw_nothing(self):
        plan = FaultPlan(
            SeededRng("s"),
            specs=(FaultSpec(FaultKind.DROP, probability=0.5, nodes=("other",)),),
        )
        channel = plan.channel("a", "request")
        blob = self._blob()
        for _ in range(20):
            assert channel(blob) == blob
        fresh = SeededRng("s").fork("chaos/a/request").random()
        assert plan._channel_rngs[("a", "request")].random() == fresh

    def test_drop_raises_transient(self):
        plan = FaultPlan(SeededRng("s"), specs=(FaultSpec(FaultKind.DROP),))
        with pytest.raises(TransientTransportError) as info:
            plan.channel("a", "request")(self._blob())
        assert info.value.kind == "drop"
        assert plan.counts_by_kind() == {"drop": 1}

    def test_partition_is_window_scoped(self):
        plan = FaultPlan(
            SeededRng("s"),
            specs=(FaultSpec(FaultKind.PARTITION, start=0.0, end=100.0),),
        )
        clock = FakeClock(50.0)
        plan.bind_clock(clock)
        channel = plan.channel("a", "response")
        with pytest.raises(TransientTransportError):
            channel(self._blob())
        clock.now = 100.0  # window closed
        assert channel(self._blob()) == self._blob()

    def test_delay_below_timeout_delivers_and_records(self):
        plan = FaultPlan(
            SeededRng("s"),
            specs=(FaultSpec(FaultKind.DELAY, delay_range=(0.1, 0.2)),),
            attempt_timeout=1.0,
        )
        blob = self._blob()
        assert plan.channel("a", "response")(blob) == blob
        assert plan.counts_by_kind() == {"delay": 1}

    def test_delay_past_timeout_is_transient(self):
        plan = FaultPlan(
            SeededRng("s"),
            specs=(FaultSpec(FaultKind.DELAY, delay_range=(5.0, 6.0)),),
            attempt_timeout=1.0,
        )
        with pytest.raises(TransientTransportError) as info:
            plan.channel("a", "response")(self._blob())
        assert info.value.kind == "delay"

    def test_duplicate_is_payload_noop(self):
        plan = FaultPlan(SeededRng("s"), specs=(FaultSpec(FaultKind.DUPLICATE),))
        blob = self._blob()
        assert plan.channel("a", "response")(blob) == blob
        assert plan.counts_by_kind() == {"duplicate": 1}

    def test_replay_delivers_previous_round(self):
        plan = FaultPlan(SeededRng("s"), specs=(FaultSpec(FaultKind.REPLAY),))
        channel = plan.channel("a", "request")
        first = self._blob("aa" * 10)
        second = self._blob("bb" * 10)
        assert channel(first) == first  # nothing stale yet: no-op
        assert channel(second) == first  # stale payload substituted
        assert plan.counts_by_kind() == {"replay": 1}

    def test_corrupt_request_flips_the_nonce(self):
        import json

        plan = FaultPlan(SeededRng("s"), specs=(FaultSpec(FaultKind.CORRUPT),))
        blob = self._blob("ab" * 10)
        corrupted = plan.channel("a", "request")(blob)
        assert corrupted != blob
        original = json.loads(blob)
        flipped = json.loads(corrupted)
        assert flipped["nonce"] != original["nonce"]
        assert len(flipped["nonce"]) == len(original["nonce"])
        # Everything else is untouched: the flip is semantic, not random.
        for key in ("offset", "pcr_selection", "traceparent"):
            assert flipped[key] == original[key]

    def test_corrupt_unparseable_blob_flips_raw_byte(self):
        plan = FaultPlan(SeededRng("s"), specs=(FaultSpec(FaultKind.CORRUPT),))
        corrupted = plan.channel("a", "request")("not json at all")
        assert corrupted != "not json at all"
        assert len(corrupted) == len("not json at all")

    def test_channels_are_rng_isolated(self):
        # Node b's injection sequence must not depend on node a's
        # traffic volume: each channel draws from its own fork.
        def run(extra_a_traffic: int) -> list[str]:
            plan = FaultPlan(
                SeededRng("iso"),
                specs=(FaultSpec(FaultKind.DROP, probability=0.3),),
            )
            a = plan.channel("a", "request")
            b = plan.channel("b", "request")
            for _ in range(extra_a_traffic):
                try:
                    a(self._blob())
                except TransientTransportError:
                    pass
            outcomes = []
            for _ in range(20):
                try:
                    b(self._blob())
                    outcomes.append("ok")
                except TransientTransportError:
                    outcomes.append("drop")
            return outcomes

        assert run(0) == run(37)

    def test_injections_for_filters_by_node_and_time(self):
        plan = FaultPlan(SeededRng("s"), specs=(FaultSpec(FaultKind.DROP),))
        clock = FakeClock(5.0)
        plan.bind_clock(clock)
        for agent in ("a", "b"):
            with pytest.raises(TransientTransportError):
                plan.channel(agent, "request")(self._blob())
        assert len(plan.injections_for("a")) == 1
        assert plan.injections_for("a", since=6.0) == []
        assert len(plan.injections_for("b", since=0.0, until=5.0)) == 1


class TestChaosProfiles:
    def test_every_profile_builds(self):
        for name in CHAOS_PROFILES:
            plan = chaos_profile(name, SeededRng("p"))
            assert plan.name == name

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            chaos_profile("hurricane", SeededRng("p"))

    def test_transient_only_flags_match_specs(self):
        for name, transient_only in CHAOS_PROFILES.items():
            plan = chaos_profile(name, SeededRng("p"))
            kinds = {spec.kind for spec in plan.specs}
            assert (kinds <= TRANSIENT_KINDS) == transient_only, name

    def test_profile_scoping_flows_into_specs(self):
        plan = chaos_profile(
            "mixed", SeededRng("p"), nodes=("n1",), start=10.0, end=20.0
        )
        for spec in plan.specs:
            assert spec.nodes == ("n1",)
            assert (spec.start, spec.end) == (10.0, 20.0)


class TestClassifier:
    def test_integrity_never_transient(self):
        assert classify(IntegrityError("bad")) == "integrity"
        assert classify(TransientTransportError("drop")) == "transient"
        assert classify(RuntimeError("boom")) == "other"

    def test_budget_exceeded_stays_transient(self):
        exc = RetryBudgetExceeded(3, TransientTransportError("x", kind="drop"))
        assert classify(exc) == "transient"
        assert exc.kind == "drop"
        assert exc.attempts == 3


class TestRetryPolicy:
    def test_validates_fields(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-1.0)

    def test_success_first_try_draws_no_jitter(self):
        rng = SeededRng("jitter")
        expected = SeededRng("jitter").random()
        policy = RetryPolicy()
        assert policy.run(lambda: 42, rng=rng) == 42
        assert rng.random() == expected  # untouched stream

    def test_transient_retried_to_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientTransportError("drop", kind="drop")
            return "evidence"

        policy = RetryPolicy(max_attempts=4)
        assert policy.run(flaky, rng=SeededRng("r")) == "evidence"
        assert len(calls) == 3

    def test_budget_exhaustion(self):
        def always_down():
            raise TransientTransportError("gone", kind="partition")

        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(RetryBudgetExceeded) as info:
            policy.run(always_down, rng=SeededRng("r"))
        assert info.value.attempts == 3
        assert info.value.kind == "partition"

    def test_integrity_error_never_retried(self):
        calls = []

        def tampered():
            calls.append(1)
            raise IntegrityError("flipped byte")

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(IntegrityError):
            policy.run(tampered, rng=SeededRng("r"))
        assert len(calls) == 1  # exactly one attempt: no laundering

    def test_backoff_caps_and_jitters_deterministically(self):
        policy = RetryPolicy(base_backoff=1.0, backoff_cap=4.0, jitter=0.1)
        assert policy.backoff_for(1) == 1.0  # no rng: no jitter
        assert policy.backoff_for(10) == 4.0  # capped
        a = policy.backoff_for(2, SeededRng("j"))
        b = policy.backoff_for(2, SeededRng("j"))
        assert a == b
        assert 2.0 * 0.9 <= a <= 2.0 * 1.1

    def test_sleep_receives_backoffs(self):
        slept = []

        def flaky():
            if len(slept) < 2:
                raise TransientTransportError("drop")
            return "ok"

        policy = RetryPolicy(max_attempts=4, base_backoff=0.5, jitter=0.0)
        assert policy.run(flaky, sleep=slept.append) == "ok"
        assert slept == [0.5, 1.0]

    def test_attempt_counter_outcomes(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise TransientTransportError("drop")
            return "ok"

        RetryPolicy(max_attempts=3).run(flaky, registry=registry)
        family = registry.get("verifier_retry_attempts_total")
        counts = {
            labels.get("outcome"): child.value
            for labels, child in family.samples()
        }
        assert counts == {"transient": 1, "ok": 1}
