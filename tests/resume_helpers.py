"""Shared fingerprint helpers for the crash-resume and failover suites.

Both suites prove the same property at different granularities -- "kill
the verifier anywhere, lose nothing, bit-for-bit" -- so they share one
fingerprint vocabulary.  :func:`fleet_fingerprint` captures a
single-verifier run (the crash-resume suite's original ``_fingerprint``,
hoisted here); :func:`vfleet_fingerprint` captures a sharded
:class:`~repro.keylime.fleet.VerifierFleet` per shard, audit chains
included.  :func:`assert_fingerprints_equal` compares field-by-field so
a mismatch names the diverging piece instead of dumping two dicts.

Not a pytest plugin: test modules import this via the ``tests/`` path
insert (the ``test_degraded_stateful`` idiom).
"""

from __future__ import annotations


def fleet_fingerprint(fleet) -> dict:
    """Everything a single-verifier run produced, bit-for-bit comparable."""
    return {
        "results": {
            node.agent.agent_id: fleet.verifier.results_of(node.agent.agent_id)
            for node in fleet.nodes
        },
        "offsets": {
            node.agent.agent_id: fleet.verifier.verified_entries_of(
                node.agent.agent_id
            )
            for node in fleet.nodes
        },
        "status": fleet.status(),
        "audit": fleet.verifier.audit.export_records(),
        "audit_head": fleet.verifier.audit.head_hash,
    }


def vfleet_fingerprint(vfleet) -> dict:
    """A sharded run's full output, keyed so shards compare shard-wise.

    Per-agent verdict history and replay offsets come from whichever
    verifier currently answers for the agent; the audit chains are
    captured per *shard* (each shard's chain is its own hash-linked
    truth, surviving adoption byte-identical).
    """
    results = {}
    offsets = {}
    for agent_id in vfleet.agent_ids:
        verifier = vfleet.verifier_for(agent_id)
        results[agent_id] = verifier.results_of(agent_id)
        offsets[agent_id] = verifier.verified_entries_of(agent_id)
    return {
        "results": results,
        "offsets": offsets,
        "status": vfleet.status(),
        "audit": {
            shard_id: vfleet.shards[shard_id].audit.export_records()
            for shard_id in vfleet.shard_ids
        },
        "audit_head": {
            shard_id: vfleet.shards[shard_id].audit.head_hash
            for shard_id in vfleet.shard_ids
        },
    }


def assert_fingerprints_equal(actual: dict, expected: dict) -> None:
    """Field-by-field equality, so failures name the diverging piece."""
    assert actual.keys() == expected.keys()
    for key in expected:
        assert actual[key] == expected[key], f"fingerprint field {key!r} diverged"


def gap_alerts(watch) -> list:
    """The coverage-gap alerts a HealthWatch fired (empty = silent)."""
    return [
        alert for alert in watch.engine.history
        if alert.rule == "health.coverage_gap"
    ]


def enrollment_events(events) -> list:
    """Every registrar enrollment in an EventLog, in order."""
    return [record for record in events if record.kind == "agent.registered"]
