"""Tests for IMA measurement violations (ToMToU / open-writers)."""

import pytest

from repro.experiments.testbed import build_testbed
from repro.kernelsim.ima import (
    VIOLATION_EXTEND_VALUE,
    VIOLATION_FILEDATA_HASH,
    VIOLATION_TEMPLATE_HASH,
    ImaEngine,
    ImaPolicy,
)
from repro.keylime.policy import EntryVerdict, RuntimePolicy
from repro.tpm.pcr import IMA_PCR_INDEX

from tests.conftest import small_config


class TestEngineViolations:
    def test_violation_entry_shape(self, tpm):
        engine = ImaEngine(ImaPolicy(), tpm)
        entry = engine.record_violation("/usr/bin/vi", kind="ToMToU")
        assert entry.template_hash == VIOLATION_TEMPLATE_HASH
        assert entry.filedata_hash == VIOLATION_FILEDATA_HASH
        assert entry.path == "/usr/bin/vi (ToMToU)"

    def test_violation_extends_pcr_with_ff(self, tpm):
        from repro.common.hexutil import extend_digest, zero_digest

        engine = ImaEngine(ImaPolicy(), tpm)
        engine.record_violation("/usr/bin/vi")
        expected = extend_digest(
            "sha256", zero_digest("sha256"), VIOLATION_EXTEND_VALUE
        )
        assert tpm.read_pcr(IMA_PCR_INDEX) == expected

    def test_note_write_only_for_measured_files(self, machine):
        machine.install_file("/usr/bin/tool", b"v1", executable=True)
        ima = machine.require_booted()
        stat = machine.vfs.stat("/usr/bin/tool")
        assert not ima.note_write("/usr/bin/tool", stat)  # never measured
        machine.exec_file("/usr/bin/tool")
        stat = machine.vfs.stat("/usr/bin/tool")
        assert ima.note_write("/usr/bin/tool", stat)


class TestMachineInPlaceWrites:
    def test_write_to_measured_file_violates(self, machine):
        machine.install_file("/usr/bin/tool", b"v1", executable=True)
        machine.exec_file("/usr/bin/tool")
        assert machine.open_for_write("/usr/bin/tool", b"v2")

    def test_write_to_unmeasured_file_silent(self, machine):
        machine.install_file("/etc/config", b"v1")
        assert not machine.open_for_write("/etc/config", b"v2")

    def test_content_updated_either_way(self, machine):
        machine.install_file("/etc/config", b"v1")
        machine.open_for_write("/etc/config", b"v2")
        assert machine.vfs.read_file("/etc/config") == b"v2"


class TestPolicyEvaluation:
    def _violation_entry(self, path="/usr/bin/vi (ToMToU)"):
        from repro.kernelsim.ima import ImaLogEntry

        return ImaLogEntry(
            pcr=10, template_hash=VIOLATION_TEMPLATE_HASH, template="ima-ng",
            filedata_hash=VIOLATION_FILEDATA_HASH, path=path,
        )

    def test_violation_is_failure(self):
        policy = RuntimePolicy()
        verdict, failure = policy.evaluate_entry(self._violation_entry())
        assert verdict is EntryVerdict.VIOLATION
        assert failure is not None
        assert "violation" in failure.describe()

    def test_violation_in_excluded_dir_skipped(self):
        policy = RuntimePolicy(excludes=[r"^/tmp(/.*)?$"])
        verdict, failure = policy.evaluate_entry(
            self._violation_entry("/tmp/scratch (ToMToU)")
        )
        assert verdict is EntryVerdict.EXCLUDED
        assert failure is None

    def test_violation_verdict_is_failure_kind(self):
        assert EntryVerdict.VIOLATION.is_failure


class TestEndToEnd:
    def test_inplace_patch_detected(self):
        """Patching a running binary in place cannot be hidden."""
        testbed = build_testbed(small_config("violation-e2e"))
        testbed.machine.exec_file("/usr/bin/ls")
        assert testbed.poll().ok
        testbed.machine.open_for_write("/usr/bin/ls", b"hot-patched")
        result = testbed.poll()
        assert not result.ok
        assert "violation" in result.failures[0].detail

    def test_replay_stays_consistent_across_violation(self):
        """The 0xFF extend rule keeps the PCR replay green afterwards."""
        testbed = build_testbed(small_config("violation-replay"))
        testbed.verifier.continue_on_failure = True
        testbed.machine.exec_file("/usr/bin/ls")
        testbed.machine.open_for_write("/usr/bin/ls", b"patched")
        result = testbed.poll()
        # Policy failure, yes -- but no PCR mismatch: the verifier knows
        # the kernel's violation extend rule.
        from repro.keylime.verifier import FailureKind

        assert all(f.kind is FailureKind.POLICY for f in result.failures)
        # And subsequent polls continue verifying cleanly.
        testbed.machine.exec_file("/bin/bash")
        result2 = testbed.poll()
        kinds = {f.kind for f in result2.failures}
        assert FailureKind.PCR_MISMATCH not in kinds
