"""Tests for the IMA engine: measurement decisions, log, PCR-10."""

import pytest

from repro.common.hexutil import sha256_hex, zero_digest
from repro.kernelsim.ima import (
    DEFAULT_EXCLUDED_FSTYPES,
    ImaEngine,
    ImaHook,
    ImaLogEntry,
    ImaPolicy,
    template_hash,
)
from repro.kernelsim.vfs import FilesystemType, Vfs
from repro.tpm.device import Tpm
from repro.tpm.pcr import IMA_PCR_INDEX, replay_extends


@pytest.fixture()
def vfs() -> Vfs:
    filesystem = Vfs()
    filesystem.mount("/dev/shm", FilesystemType.TMPFS)
    return filesystem


@pytest.fixture()
def engine(tpm: Tpm) -> ImaEngine:
    return ImaEngine(ImaPolicy(), tpm)


def _measure(engine: ImaEngine, vfs: Vfs, path: str, hook=ImaHook.BPRM_CHECK,
             recorded: str | None = None):
    stat = vfs.stat(path)
    return engine.process_event(
        recorded if recorded is not None else path, stat, vfs.read_file(path), hook
    )


class TestMeasurementDecision:
    def test_first_exec_is_measured(self, engine, vfs):
        vfs.write_file("/usr/bin/ls", b"ls", executable=True)
        entry = _measure(engine, vfs, "/usr/bin/ls")
        assert entry is not None
        assert entry.path == "/usr/bin/ls"
        assert entry.filedata_hash == "sha256:" + sha256_hex(b"ls")

    def test_second_exec_not_measured(self, engine, vfs):
        vfs.write_file("/usr/bin/ls", b"ls", executable=True)
        _measure(engine, vfs, "/usr/bin/ls")
        assert _measure(engine, vfs, "/usr/bin/ls") is None

    def test_content_change_remeasured(self, engine, vfs):
        vfs.write_file("/usr/bin/ls", b"v1", executable=True)
        _measure(engine, vfs, "/usr/bin/ls")
        vfs.write_file("/usr/bin/ls", b"v2", executable=True)
        entry = _measure(engine, vfs, "/usr/bin/ls")
        assert entry is not None
        assert entry.filedata_hash == "sha256:" + sha256_hex(b"v2")

    def test_excluded_fstype_not_measured(self, engine, vfs):
        vfs.write_file("/dev/shm/payload", b"x", executable=True)
        assert _measure(engine, vfs, "/dev/shm/payload") is None

    def test_rename_same_fs_not_remeasured(self, engine, vfs):
        """The paper's P4 at the engine level."""
        vfs.write_file("/tmp/payload", b"x", executable=True)
        assert _measure(engine, vfs, "/tmp/payload") is not None
        vfs.rename("/tmp/payload", "/usr/bin/payload")
        assert _measure(engine, vfs, "/usr/bin/payload") is None

    def test_rename_with_reevaluation_flag(self, tpm, vfs):
        """The proposed M3 fix flips the P4 behaviour."""
        engine = ImaEngine(ImaPolicy(re_evaluate_on_path_change=True), tpm)
        vfs.write_file("/tmp/payload", b"x", executable=True)
        _measure(engine, vfs, "/tmp/payload")
        vfs.rename("/tmp/payload", "/usr/bin/payload")
        entry = _measure(engine, vfs, "/usr/bin/payload")
        assert entry is not None
        assert entry.path == "/usr/bin/payload"

    def test_cross_fs_move_is_remeasured(self, engine, vfs):
        vfs.write_file("/dev/shm/payload", b"x", executable=True)
        vfs.rename("/dev/shm/payload", "/usr/bin/payload")
        assert _measure(engine, vfs, "/usr/bin/payload") is not None

    def test_hook_filtering(self, tpm, vfs):
        engine = ImaEngine(ImaPolicy(measure_hooks=(ImaHook.BPRM_CHECK,)), tpm)
        vfs.write_file("/lib/mod.ko", b"ko", executable=True)
        assert _measure(engine, vfs, "/lib/mod.ko", hook=ImaHook.MODULE_CHECK) is None

    def test_module_check_measured_by_default(self, engine, vfs):
        vfs.write_file("/lib/mod.ko", b"ko", executable=True)
        assert _measure(engine, vfs, "/lib/mod.ko", hook=ImaHook.MODULE_CHECK) is not None

    def test_recorded_path_can_differ_from_real(self, engine, vfs):
        """Chroot truncation: what IMA records is the confined view."""
        vfs.write_file("/snap/core20/1/usr/bin/tool", b"x", executable=True)
        entry = _measure(
            engine, vfs, "/snap/core20/1/usr/bin/tool", recorded="/usr/bin/tool"
        )
        assert entry is not None
        assert entry.path == "/usr/bin/tool"

    def test_devtmpfs_excluded_via_tmpfs_magic(self, tpm):
        policy = ImaPolicy(excluded_fstypes=(FilesystemType.TMPFS,))
        assert policy.excludes_fstype(FilesystemType.DEVTMPFS)

    def test_default_exclusions_match_keylime_docs(self):
        policy = ImaPolicy()
        for fstype in DEFAULT_EXCLUDED_FSTYPES:
            assert policy.excludes_fstype(fstype)
        assert not policy.excludes_fstype(FilesystemType.EXT4)


class TestLogAndPcr:
    def test_entries_extend_pcr10(self, engine, vfs, tpm):
        vfs.write_file("/usr/bin/a", b"a", executable=True)
        vfs.write_file("/usr/bin/b", b"b", executable=True)
        _measure(engine, vfs, "/usr/bin/a")
        _measure(engine, vfs, "/usr/bin/b")
        hashes = [entry.template_hash for entry in engine.log]
        assert replay_extends("sha256", hashes) == tpm.read_pcr(IMA_PCR_INDEX)

    def test_boot_aggregate_first(self, engine, vfs, tpm):
        entry = engine.record_boot_aggregate()
        assert entry.path == "boot_aggregate"
        assert engine.log[0].path == "boot_aggregate"

    def test_boot_aggregate_depends_on_boot_pcrs(self, manufacturer):
        tpm_a = manufacturer.manufacture()
        tpm_b = manufacturer.manufacture()
        tpm_b.extend(0, sha256_hex(b"different firmware"))
        a = ImaEngine(ImaPolicy(), tpm_a).record_boot_aggregate()
        b = ImaEngine(ImaPolicy(), tpm_b).record_boot_aggregate()
        assert a.filedata_hash != b.filedata_hash

    def test_log_lines_roundtrip(self, engine, vfs):
        vfs.write_file("/usr/bin/a", b"a", executable=True)
        _measure(engine, vfs, "/usr/bin/a")
        line = engine.log_lines()[0]
        parsed = ImaLogEntry.from_line(line)
        assert parsed == engine.log[0]

    def test_log_line_format(self, engine, vfs):
        vfs.write_file("/usr/bin/a", b"a", executable=True)
        entry = _measure(engine, vfs, "/usr/bin/a")
        parts = entry.to_line().split(" ")
        assert parts[0] == str(IMA_PCR_INDEX)
        assert parts[2] == "ima-ng"
        assert parts[3].startswith("sha256:")

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            ImaLogEntry.from_line("10 deadbeef ima-ng")

    def test_template_hash_covers_path(self):
        digest = "sha256:" + sha256_hex(b"x")
        assert template_hash(digest, "/a") != template_hash(digest, "/b")

    def test_template_hash_covers_digest(self):
        a = "sha256:" + sha256_hex(b"x")
        b = "sha256:" + sha256_hex(b"y")
        assert template_hash(a, "/p") != template_hash(b, "/p")

    def test_measured_paths(self, engine, vfs):
        vfs.write_file("/usr/bin/a", b"a", executable=True)
        _measure(engine, vfs, "/usr/bin/a")
        assert engine.measured_paths() == {"/usr/bin/a"}

    def test_log_is_copy(self, engine, vfs):
        vfs.write_file("/usr/bin/a", b"a", executable=True)
        _measure(engine, vfs, "/usr/bin/a")
        log = engine.log
        log.clear()
        assert len(engine.log) == 1
