"""Tests for the paper-comparison machinery."""

from repro.analysis.compare import (
    PAPER_TARGETS,
    ComparisonRow,
    _row,
    compare_longruns,
    compare_matrices,
    render_comparison,
)
from repro.experiments.longrun import run_longrun

from tests.conftest import small_config


class TestRowLogic:
    def test_within_tolerance(self):
        row = _row("daily.minutes.mean", 2.0, 0.5)
        assert row.within

    def test_out_of_tolerance(self):
        row = _row("daily.minutes.mean", 10.0, 0.5)
        assert not row.within

    def test_zero_target_requires_exact(self):
        assert _row("fp.normal_operation", 0.0, 0.0).within
        assert not _row("fp.normal_operation", 1.0, 0.0).within

    def test_render_marks(self):
        good = _row("daily.minutes.mean", 2.36, 0.5)
        bad = _row("daily.minutes.mean", 99.0, 0.5)
        assert "[OK " in good.render()
        assert "[OFF]" in bad.render()


class TestComparators:
    def test_compare_longruns_covers_fp_target(self):
        daily = run_longrun(config=small_config("cmp-daily"), n_days=3)
        weekly = run_longrun(
            config=small_config("cmp-weekly"), n_days=7, cadence_days=7
        )
        rows = compare_longruns(daily, weekly)
        fp_rows = [row for row in rows if row.key == "fp.normal_operation"]
        assert fp_rows and fp_rows[0].within  # zero FPs at any scale

    def test_compare_matrices_headlines(self):
        from repro.attacks import AttackMode
        from repro.attacks.ransomware import AvosLocker
        from repro.experiments.fn_matrix import run_attack_matrix

        stock = run_attack_matrix(
            mitigated=False, samples=[AvosLocker()], seed="cmp"
        )
        mitigated = run_attack_matrix(
            mitigated=True, samples=[AvosLocker()], seed="cmp"
        )
        rows = compare_matrices(stock, mitigated)
        by_key = {row.key: row for row in rows}
        # One sample, not eight: the structural targets must read OFF.
        assert not by_key["table2.basic_detected"].within
        assert by_key["table2.adaptive_detected_live"].within  # 0 == 0

    def test_render_comparison_verdict(self):
        rows = [
            ComparisonRow("x", 1.0, 1.0, 0.1, True),
            ComparisonRow("y", 1.0, 9.0, 0.1, False),
        ]
        out = render_comparison(rows)
        assert "1/2 targets out of tolerance" in out

    def test_all_targets_have_values(self):
        assert all(isinstance(value, float) for value in PAPER_TARGETS.values())
