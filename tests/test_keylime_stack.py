"""Tests for the agent, registrar, and tenant."""

import pytest

from repro.common.clock import Scheduler
from repro.common.errors import NotFoundError, StateError
from repro.common.rng import SeededRng
from repro.keylime.agent import KeylimeAgent
from repro.keylime.policy import RuntimePolicy, build_policy_from_machine
from repro.keylime.registrar import KeylimeRegistrar, RegistrationError
from repro.keylime.tenant import KeylimeTenant
from repro.keylime.verifier import AgentState, KeylimeVerifier
from repro.kernelsim.kernel import Machine
from repro.tpm.device import TpmManufacturer


@pytest.fixture()
def agent(machine: Machine) -> KeylimeAgent:
    return KeylimeAgent("agent-1", machine)


@pytest.fixture()
def registrar(manufacturer: TpmManufacturer) -> KeylimeRegistrar:
    return KeylimeRegistrar([manufacturer.root_certificate])


class TestAgent:
    def test_attest_requires_registration(self, agent):
        with pytest.raises(StateError):
            agent.attest("nonce")

    def test_provision_ak_idempotent(self, agent):
        first = agent.provision_ak()
        second = agent.provision_ak()
        assert first.public.fingerprint() == second.public.fingerprint()

    def test_attest_ships_full_log(self, agent, machine):
        agent.provision_ak()
        machine.install_file("/usr/bin/x", b"x", executable=True)
        machine.exec_file("/usr/bin/x")
        evidence = agent.attest("nonce-1")
        assert evidence.offset == 0
        assert evidence.total_entries == 2  # boot_aggregate + /usr/bin/x
        assert len(evidence.ima_log_lines) == 2

    def test_attest_with_offset_ships_suffix(self, agent, machine):
        agent.provision_ak()
        machine.install_file("/usr/bin/x", b"x", executable=True)
        machine.exec_file("/usr/bin/x")
        evidence = agent.attest("nonce", offset=1)
        assert evidence.offset == 1
        assert len(evidence.ima_log_lines) == 1

    def test_stale_offset_falls_back_to_full_log(self, agent, machine):
        agent.provision_ak()
        evidence = agent.attest("nonce", offset=99)
        assert evidence.offset == 0

    def test_quote_bound_to_nonce(self, agent):
        agent.provision_ak()
        evidence = agent.attest("my-nonce")
        assert evidence.quote.nonce == "my-nonce"

    def test_tpm_clock_ticks_with_machine_time(self, agent, machine):
        agent.provision_ak()
        first = agent.attest("n1")
        machine.clock.advance_by(10.0)
        second = agent.attest("n2")
        assert second.quote.clock >= first.quote.clock + 10_000


class TestRegistrar:
    def test_register_valid_agent(self, registrar, agent):
        record = registrar.register(agent)
        assert record.agent_id == "agent-1"
        assert "agent-1" in registrar

    def test_lookup_unknown_raises(self, registrar):
        with pytest.raises(NotFoundError):
            registrar.lookup("ghost")

    def test_spoofed_tpm_rejected(self, agent):
        rogue_mfr = TpmManufacturer("RogueCorp", SeededRng("rogue"))
        registrar = KeylimeRegistrar([rogue_mfr.root_certificate])
        with pytest.raises(RegistrationError, match="EK certificate"):
            registrar.register(agent)

    def test_registered_ak_matches_agent(self, registrar, agent):
        record = registrar.register(agent)
        assert (
            record.ak_public.fingerprint()
            == agent.attestation_key.public.fingerprint()
        )


class TestTenant:
    def _stack(self, registrar, agent, machine):
        scheduler = Scheduler(machine.clock)
        verifier = KeylimeVerifier(registrar, scheduler, SeededRng("v"))
        return KeylimeTenant(registrar, verifier), verifier

    def test_onboard(self, registrar, agent, machine):
        tenant, verifier = self._stack(registrar, agent, machine)
        policy = build_policy_from_machine(machine)
        report = tenant.onboard(agent, policy, start_polling=False)
        assert report.agent_id == "agent-1"
        assert verifier.state_of("agent-1") is AgentState.ATTESTING

    def test_onboard_starts_polling(self, registrar, agent, machine):
        tenant, verifier = self._stack(registrar, agent, machine)
        tenant.onboard(agent, build_policy_from_machine(machine), poll_interval=5.0)
        verifier.scheduler.run_until(machine.clock.now + 11.0)
        assert len(verifier.results_of("agent-1")) == 2

    def test_push_policy(self, registrar, agent, machine):
        tenant, verifier = self._stack(registrar, agent, machine)
        tenant.onboard(agent, build_policy_from_machine(machine), start_polling=False)
        new_policy = RuntimePolicy(name="v2")
        tenant.push_policy("agent-1", new_policy)
        assert verifier.policy_of("agent-1") is new_policy

    def test_resolve_failure_restarts(self, registrar, agent, machine):
        tenant, verifier = self._stack(registrar, agent, machine)
        tenant.onboard(agent, build_policy_from_machine(machine), start_polling=False)
        # Trip a failure.
        machine.install_file("/usr/bin/unknown", b"x", executable=True)
        machine.exec_file("/usr/bin/unknown")
        verifier.poll("agent-1")
        assert tenant.status("agent-1") is AgentState.FAILED
        # Resolve with a corrected policy.
        fixed = build_policy_from_machine(machine)
        tenant.resolve_failure("agent-1", fixed)
        assert tenant.status("agent-1") is AgentState.ATTESTING
        assert verifier.poll("agent-1").ok
