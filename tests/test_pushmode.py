"""Push-mode attestation: session lifecycle, rejection, equivalence.

The push exchange inverts the paper's pull loop -- the agent initiates
negotiate -> submit -> verdict against the verifier's endpoints -- but
must stay *verdict-equivalent* to pull on the same seed, because both
modes share the verification pipeline and the nonce stream.  These
tests pin the session state machine, the protocol-level rejection
semantics (replay, expiry, mismatch: loud, and never charged to the
agent's attestation record), the reaper's anti-P2 accounting, and the
equivalence property itself.
"""

import json

import pytest

from repro.common.errors import IntegrityError, StateError
from repro.experiments.testbed import build_testbed
from repro.keylime.transport import (
    PushSessionState,
    negotiation_reply_from_json,
    negotiation_to_json,
    submission_to_json,
    verdict_from_json,
)
from repro.keylime.verifier import AgentState, FailureKind
from repro.obs import runtime as obs_runtime

from tests.conftest import small_config


@pytest.fixture()
def testbed():
    return build_testbed(small_config("pushmode"))


def _negotiate(testbed):
    """Run step 1 by hand; returns the decoded reply."""
    blob = negotiation_to_json(testbed.agent_id, testbed.agent.capabilities())
    return negotiation_reply_from_json(testbed.verifier.negotiate_push(blob))


def _submit_blob(testbed, reply):
    evidence = testbed.agent.attest(
        reply.nonce, offset=reply.offset,
        pcr_selection=list(reply.pcr_selection),
    )
    return submission_to_json(reply.session_id, testbed.agent_id, evidence)


class TestPushSessionLifecycle:
    def test_negotiate_opens_a_session(self, testbed):
        reply = _negotiate(testbed)
        session = testbed.verifier.open_push_session_of(testbed.agent_id)
        assert session is not None
        assert session.state is PushSessionState.NEGOTIATED
        assert session.session_id == reply.session_id
        assert session.nonce == reply.nonce
        assert reply.offset == 0
        assert reply.algorithm == "sha256"

    def test_clean_exchange_verifies(self, testbed):
        reply = _negotiate(testbed)
        verdict = verdict_from_json(
            testbed.verifier.submit_push(_submit_blob(testbed, reply))
        )
        assert verdict.ok
        assert verdict.state == "attesting"
        session = testbed.verifier.push_sessions_of(testbed.agent_id)[-1]
        assert session.state is PushSessionState.VERIFIED
        assert session.outcome == "verified"
        assert testbed.verifier.open_push_session_of(testbed.agent_id) is None

    def test_push_round_matches_manual_exchange(self, testbed):
        result = testbed.push_round()
        assert result is not None and result.ok
        assert len(testbed.verifier.results_of(testbed.agent_id)) == 1

    def test_session_replay_rejected_without_charging_the_agent(self, testbed):
        """Resubmitting against a consumed session is a protocol
        IntegrityError and must not add a round to the agent's record:
        an attacker replaying captured traffic cannot fail the agent."""
        reply = _negotiate(testbed)
        blob = _submit_blob(testbed, reply)
        assert verdict_from_json(testbed.verifier.submit_push(blob)).ok
        rounds_before = len(testbed.verifier.results_of(testbed.agent_id))
        with pytest.raises(IntegrityError, match="replay"):
            testbed.verifier.submit_push(blob)
        assert len(testbed.verifier.results_of(testbed.agent_id)) == rounds_before
        assert testbed.verifier.state_of(testbed.agent_id) is AgentState.ATTESTING

    def test_unknown_session_rejected(self, testbed):
        reply = _negotiate(testbed)
        blob = _submit_blob(testbed, reply)
        payload = json.loads(blob)
        payload["session_id"] = "ps-never-issued"
        with pytest.raises(IntegrityError, match="unknown push session"):
            testbed.verifier.submit_push(json.dumps(payload))

    def test_agent_session_mismatch_rejected(self, testbed):
        reply = _negotiate(testbed)
        payload = json.loads(_submit_blob(testbed, reply))
        payload["agent_id"] = "agent-somebody-else"
        with pytest.raises(IntegrityError, match="belongs to"):
            testbed.verifier.submit_push(json.dumps(payload))

    def test_expired_session_rejected(self, testbed):
        reply = _negotiate(testbed)
        blob = _submit_blob(testbed, reply)
        testbed.scheduler.clock.advance_by(
            testbed.verifier.push_session_ttl + 1.0
        )
        with pytest.raises(IntegrityError, match="expired"):
            testbed.verifier.submit_push(blob)

    def test_renegotiation_supersedes_the_open_session(self, testbed):
        first = _negotiate(testbed)
        stale_blob = _submit_blob(testbed, first)
        second = _negotiate(testbed)
        assert second.session_id != first.session_id
        assert (
            testbed.verifier.open_push_session_of(testbed.agent_id).session_id
            == second.session_id
        )
        with pytest.raises(IntegrityError):
            testbed.verifier.submit_push(stale_blob)
        # The superseding session still works.
        assert verdict_from_json(
            testbed.verifier.submit_push(_submit_blob(testbed, second))
        ).ok

    def test_negotiation_for_halted_agent_refused(self, testbed):
        testbed.machine.install_file("/usr/bin/evil", b"x", executable=True)
        testbed.machine.exec_file("/usr/bin/evil")
        result = testbed.push_round()
        assert result is not None and not result.ok
        assert testbed.verifier.state_of(testbed.agent_id) is AgentState.FAILED
        blob = negotiation_to_json(
            testbed.agent_id, testbed.agent.capabilities()
        )
        with pytest.raises(StateError, match="push negotiation refused"):
            testbed.verifier.negotiate_push(blob)

    def test_failed_verdict_closes_the_session_failed(self, testbed):
        testbed.machine.install_file("/usr/bin/evil", b"x", executable=True)
        testbed.machine.exec_file("/usr/bin/evil")
        reply = _negotiate(testbed)
        verdict = verdict_from_json(
            testbed.verifier.submit_push(_submit_blob(testbed, reply))
        )
        assert not verdict.ok
        assert "policy" in verdict.failures
        session = testbed.verifier.push_sessions_of(testbed.agent_id)[-1]
        assert session.state is PushSessionState.FAILED
        assert session.outcome == "failed"

    def test_no_sha256_bank_refused(self, testbed):
        payload = json.loads(
            negotiation_to_json(testbed.agent_id, testbed.agent.capabilities())
        )
        payload["hash_algorithms"] = ["sha1"]
        with pytest.raises(IntegrityError, match="sha256"):
            testbed.verifier.negotiate_push(json.dumps(payload))


class TestRestartDiscardsSessions:
    """Satellite: a stale nonce must never verify after a reboot reset."""

    def test_restart_attestation_discards_the_open_session(self, testbed):
        reply = _negotiate(testbed)
        stale_blob = _submit_blob(testbed, reply)
        testbed.verifier.restart_attestation(testbed.agent_id)
        assert testbed.verifier.open_push_session_of(testbed.agent_id) is None
        session = testbed.verifier.push_sessions_of(testbed.agent_id)[-1]
        assert session.outcome == "discarded"
        with pytest.raises(IntegrityError):
            testbed.verifier.submit_push(stale_blob)

    def test_post_restart_negotiation_starts_at_offset_zero(self, testbed):
        testbed.workload.daily(3)
        assert testbed.push_round().ok
        assert testbed.verifier.verified_entries_of(testbed.agent_id) > 0
        testbed.verifier.restart_attestation(testbed.agent_id)
        assert _negotiate(testbed).offset == 0


class TestPushReaper:
    def test_expired_session_degrades_the_round(self, testbed):
        _negotiate(testbed)
        testbed.scheduler.clock.advance_by(
            testbed.verifier.push_session_ttl + 1.0
        )
        reaped = testbed.verifier.reap_push_sessions()
        assert len(reaped) == 1
        session = testbed.verifier.push_sessions_of(testbed.agent_id)[-1]
        assert session.outcome == "expired"
        results = testbed.verifier.results_of(testbed.agent_id)
        assert len(results) == 1 and results[0].transient
        assert "expired unanswered" in results[0].transport_error
        # The silence surfaced as a SUSPECT window, not a quiet gap.
        assert testbed.verifier.state_of(testbed.agent_id) is AgentState.SUSPECT

    def test_repeated_suspect_windows_escalate_to_quarantine(self, testbed):
        """Expired sessions burn the same suspect-window budget a flaky
        pull wire does: the quarantine_after-th window quarantines."""

        def expire_one_session():
            _negotiate(testbed)
            testbed.scheduler.clock.advance_by(
                testbed.verifier.push_session_ttl + 1.0
            )
            testbed.verifier.reap_push_sessions()

        for _ in range(testbed.verifier.quarantine_after - 1):
            expire_one_session()
            assert (
                testbed.verifier.state_of(testbed.agent_id)
                is AgentState.SUSPECT
            )
            # A clean exchange recovers the node but the window count
            # sticks -- reliability debt, exactly like pull mode.
            assert testbed.push_round().ok
            assert (
                testbed.verifier.state_of(testbed.agent_id)
                is AgentState.ATTESTING
            )
        expire_one_session()
        assert (
            testbed.verifier.state_of(testbed.agent_id)
            is AgentState.QUARANTINED
        )

    def test_reap_is_idempotent(self, testbed):
        _negotiate(testbed)
        testbed.scheduler.clock.advance_by(
            testbed.verifier.push_session_ttl + 1.0
        )
        assert len(testbed.verifier.reap_push_sessions()) == 1
        assert testbed.verifier.reap_push_sessions() == []
        assert len(testbed.verifier.results_of(testbed.agent_id)) == 1

    def test_live_session_not_reaped(self, testbed):
        _negotiate(testbed)
        assert testbed.verifier.reap_push_sessions() == []
        assert testbed.verifier.open_push_session_of(testbed.agent_id) is not None


class TestPushObservability:
    def test_push_round_feeds_the_coverage_gap_gauges(self, testbed):
        """Anti-P2: HealthWatch's gap detector reads the same last-seen
        gauges in push mode as in pull mode."""
        with obs_runtime.session() as telemetry:
            assert testbed.push_round().ok
            seen = telemetry.registry.get(
                "verifier_agent_last_poll_sim_seconds"
            ).labels(agent=testbed.agent_id).value
            ok_seen = telemetry.registry.get(
                "verifier_agent_last_ok_sim_seconds"
            ).labels(agent=testbed.agent_id).value
            sessions = telemetry.registry.get(
                "verifier_push_sessions_total"
            ).labels(outcome="verified").value
        assert seen == testbed.scheduler.clock.now
        assert ok_seen == seen
        assert sessions == 1


class TestPushPullEquivalence:
    """The tentpole property: same seed, same verdicts, either mode."""

    @staticmethod
    def _run_rounds(seed: str, push: bool, n_rounds: int = 4):
        testbed = build_testbed(small_config(seed))
        results = []
        for day in range(n_rounds):
            testbed.workload.daily(day)
            testbed.scheduler.clock.advance_by(1800.0)
            results.append(
                testbed.push_round() if push else testbed.poll()
            )
        return testbed, results

    def test_clean_rounds_identical(self):
        _, pull = self._run_rounds("push-eq", push=False)
        _, push = self._run_rounds("push-eq", push=True)
        assert pull == push
        assert all(result.ok for result in pull)

    def test_detection_identical(self):
        def attack(seed, push):
            testbed = build_testbed(small_config(seed))
            round_fn = testbed.push_round if push else testbed.poll
            assert round_fn().ok
            testbed.machine.install_file(
                "/usr/bin/backdoor", b"payload", executable=True
            )
            testbed.machine.exec_file("/usr/bin/backdoor")
            return round_fn()

        pull = attack("push-detect", push=False)
        push = attack("push-detect", push=True)
        assert pull == push
        assert not push.ok
        assert push.failures[0].kind is FailureKind.POLICY
        assert push.failures[0].policy_failure.path == "/usr/bin/backdoor"

    def test_audit_chains_identical(self):
        pull_bed, _ = self._run_rounds("push-audit", push=False)
        push_bed, _ = self._run_rounds("push-audit", push=True)
        pull_audit = pull_bed.verifier.audit.export_records()
        push_audit = push_bed.verifier.audit.export_records()
        assert pull_audit == push_audit

    def test_attack_trial_equivalence(self):
        """E7 in push mode: one sample, identical trial outcome."""
        from repro.attacks.framework import AttackMode, all_attacks
        from repro.experiments.fn_matrix import run_attack_trial

        sample = all_attacks()[0]
        pull = run_attack_trial(
            sample, AttackMode.BASIC, mitigated=False, seed="e7-push",
            config=small_config("e7-push"), push=False,
        )
        push = run_attack_trial(
            sample, AttackMode.BASIC, mitigated=False, seed="e7-push",
            config=small_config("e7-push"), push=True,
        )
        assert pull == push


class TestFleetPushMode:
    """The scheduler side: agents on their own timers, reap-only ticks."""

    @staticmethod
    def _scenario(push_mode: bool):
        from repro.experiments.fleet_run import run_fleet_scenario

        return run_fleet_scenario(
            seed="fleet-push-eq", n_nodes=2, n_days=1,
            n_filler_packages=6, push_mode=push_mode,
        )

    def test_fleet_equivalence(self):
        pull = self._scenario(push_mode=False)
        push = self._scenario(push_mode=True)
        assert push.total_polls == pull.total_polls > 0
        assert push.status == pull.status
        for node in pull.fleet.nodes:
            agent_id = node.agent.agent_id
            assert (
                push.fleet.verifier.results_of(agent_id)
                == pull.fleet.verifier.results_of(agent_id)
            )

    def test_push_fleet_leaves_no_dangling_sessions(self):
        push = self._scenario(push_mode=True)
        for node in push.fleet.nodes:
            agent_id = node.agent.agent_id
            assert (
                push.fleet.verifier.open_push_session_of(agent_id) is None
            )
