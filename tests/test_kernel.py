"""Tests for the machine: boot, exec model, modules, reboot."""

import pytest

from repro.common.errors import StateError
from repro.kernelsim.kernel import Machine
from repro.tpm.device import Tpm


@pytest.fixture()
def box(machine: Machine) -> Machine:
    machine.install_file("/usr/bin/python3", b"python interpreter", executable=True)
    machine.install_file("/bin/bash", b"bash shell", executable=True)
    return machine


class TestBoot:
    def test_boot_extends_boot_pcrs(self, tpm: Tpm):
        box = Machine("m", tpm)
        from repro.common.hexutil import zero_digest

        box.boot()
        assert tpm.read_pcr(0) != zero_digest("sha256")
        assert tpm.read_pcr(4) != zero_digest("sha256")

    def test_boot_records_boot_aggregate(self, box: Machine):
        assert box.require_booted().log[0].path == "boot_aggregate"

    def test_double_boot_rejected(self, box: Machine):
        with pytest.raises(StateError):
            box.boot()

    def test_operations_require_boot(self, tpm: Tpm):
        box = Machine("m", tpm)
        box.install_file("/usr/bin/x", b"x", executable=True)
        with pytest.raises(StateError):
            box.exec_file("/usr/bin/x")


class TestExec:
    def test_exec_measures(self, box: Machine):
        box.install_file("/usr/bin/tool", b"tool", executable=True)
        result = box.exec_file("/usr/bin/tool")
        assert result.measured
        assert result.recorded_path == "/usr/bin/tool"

    def test_exec_requires_exec_bit(self, box: Machine):
        box.install_file("/usr/bin/data", b"data", executable=False)
        with pytest.raises(StateError, match="permission denied"):
            box.exec_file("/usr/bin/data")

    def test_exec_under_chroot_truncates_path(self, box: Machine):
        box.install_file("/snap/app/1/usr/bin/tool", b"x", executable=True)
        result = box.exec_file("/snap/app/1/usr/bin/tool", chroot="/snap/app/1")
        assert result.recorded_path == "/usr/bin/tool"
        assert result.entries[0].path == "/usr/bin/tool"

    def test_shebang_measures_script_and_interpreter(self, box: Machine):
        box.install_file("/opt/run.py", b"#!/usr/bin/python3\n", executable=True)
        result = box.exec_shebang_script("/opt/run.py", "/usr/bin/python3")
        paths = {entry.path for entry in result.entries}
        assert paths == {"/opt/run.py", "/usr/bin/python3"}

    def test_shebang_requires_exec_bit(self, box: Machine):
        box.install_file("/opt/run.py", b"#!/usr/bin/python3\n", executable=False)
        with pytest.raises(StateError):
            box.exec_shebang_script("/opt/run.py", "/usr/bin/python3")

    def test_interpreter_invocation_skips_script(self, box: Machine):
        """P5: `python script.py` measures python, not the script."""
        box.install_file("/opt/run.py", b"code", executable=False)
        result = box.run_with_interpreter("/usr/bin/python3", "/opt/run.py")
        paths = {entry.path for entry in result.entries}
        assert "/opt/run.py" not in paths
        assert paths <= {"/usr/bin/python3"}

    def test_interpreter_invocation_needs_no_exec_bit(self, box: Machine):
        box.install_file("/opt/run.py", b"code", executable=False)
        box.run_with_interpreter("/usr/bin/python3", "/opt/run.py")

    def test_script_exec_control_measures_script(self, box: Machine):
        """M4: opted-in interpreter flags the opened script."""
        box.enable_script_exec_control(["/usr/bin/python3"])
        box.install_file("/opt/run.py", b"code", executable=False)
        result = box.run_with_interpreter("/usr/bin/python3", "/opt/run.py")
        assert "/opt/run.py" in {entry.path for entry in result.entries}

    def test_script_exec_control_only_for_opted_in(self, box: Machine):
        box.enable_script_exec_control(["/usr/bin/python3"])
        box.install_file("/opt/run.sh", b"code", executable=False)
        result = box.run_with_interpreter("/bin/bash", "/opt/run.sh")
        assert "/opt/run.sh" not in {entry.path for entry in result.entries}

    def test_inline_code_never_measured_even_with_m4(self, box: Machine):
        """`python -c` defeats script execution control (the Aoyama case)."""
        box.enable_script_exec_control(["/usr/bin/python3"])
        result = box.run_interpreter_inline("/usr/bin/python3", "evil()")
        assert {entry.path for entry in result.entries} <= {"/usr/bin/python3"}


class TestModules:
    def test_module_load_measured(self, box: Machine):
        box.install_file("/lib/modules/5.15/evil.ko", b"ko", executable=True)
        result = box.load_kernel_module("/lib/modules/5.15/evil.ko")
        assert result.measured
        assert "/lib/modules/5.15/evil.ko" in box.loaded_modules

    def test_module_load_from_tmp_measured_but_under_tmp_path(self, box: Machine):
        """The LKM-rootkit adaptive trick: measured, but path is /tmp."""
        box.install_file("/tmp/evil.ko", b"ko", executable=True)
        result = box.load_kernel_module("/tmp/evil.ko")
        assert result.measured
        assert result.entries[0].path == "/tmp/evil.ko"


class TestReboot:
    def test_reboot_resets_ima_log(self, box: Machine):
        box.install_file("/usr/bin/tool", b"x", executable=True)
        box.exec_file("/usr/bin/tool")
        box.reboot()
        assert box.require_booted().measured_paths() == {"boot_aggregate"}

    def test_reboot_remeasures_on_next_exec(self, box: Machine):
        box.install_file("/usr/bin/tool", b"x", executable=True)
        box.exec_file("/usr/bin/tool")
        box.reboot()
        assert box.exec_file("/usr/bin/tool").measured

    def test_reboot_clears_tmp(self, box: Machine):
        box.install_file("/tmp/staging", b"x", executable=True)
        box.reboot()
        assert not box.vfs.exists("/tmp/staging")

    def test_reboot_clears_tmpfs(self, box: Machine):
        box.install_file("/dev/shm/payload", b"x", executable=True)
        box.reboot()
        assert not box.vfs.exists("/dev/shm/payload")

    def test_reboot_keeps_persistent_files(self, box: Machine):
        box.install_file("/usr/bin/tool", b"x", executable=True)
        box.reboot()
        assert box.vfs.exists("/usr/bin/tool")

    def test_reboot_switches_to_pending_kernel(self, box: Machine):
        box.pending_kernel = "5.15.0-99-generic"
        box.reboot()
        assert box.current_kernel == "5.15.0-99-generic"
        assert box.pending_kernel is None

    def test_reboot_bumps_tpm_reset_count(self, box: Machine):
        before = box.tpm.reset_count
        box.reboot()
        assert box.tpm.reset_count == before + 1

    def test_reboot_requires_power(self, tpm: Tpm):
        box = Machine("m", tpm)
        with pytest.raises(StateError):
            box.reboot()

    def test_loaded_modules_cleared_on_reboot(self, box: Machine):
        box.install_file("/lib/modules/5.15/m.ko", b"ko", executable=True)
        box.load_kernel_module("/lib/modules/5.15/m.ko")
        box.reboot()
        assert box.loaded_modules == []


class TestFileOps:
    def test_move_file(self, box: Machine):
        box.install_file("/tmp/a", b"x", executable=True)
        stat = box.move_file("/tmp/a", "/usr/bin/a")
        assert stat.path == "/usr/bin/a"

    def test_remove_file(self, box: Machine):
        box.install_file("/usr/bin/a", b"x")
        box.remove_file("/usr/bin/a")
        assert not box.vfs.exists("/usr/bin/a")
