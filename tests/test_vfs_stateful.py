"""Stateful property test: the VFS against a reference model.

Hypothesis drives a random sequence of filesystem operations against
both the real VFS and a plain-dict model; any divergence in content,
existence, or inode-identity bookkeeping fails the run.  This is the
test that guards the inode semantics P4 rests on.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.kernelsim.vfs import FilesystemType, Vfs

_NAMES = st.sampled_from(
    [f"/usr/bin/f{i}" for i in range(6)]
    + [f"/tmp/f{i}" for i in range(4)]
    + [f"/shm/f{i}" for i in range(3)]
)
_CONTENT = st.binary(min_size=0, max_size=16)


class VfsModel(RuleBasedStateMachine):
    """Random walks over write/append/rename/unlink/chmod."""

    paths = Bundle("paths")

    def __init__(self) -> None:
        super().__init__()
        self.vfs = Vfs()
        self.vfs.mount("/shm", FilesystemType.TMPFS)
        self.model: dict[str, bytes] = {}
        self.exec_bits: dict[str, bool] = {}

    @rule(target=paths, path=_NAMES, content=_CONTENT, executable=st.booleans())
    def write(self, path: str, content: bytes, executable: bool) -> str:
        before = self.vfs.stat(path) if path in self.model else None
        stat = self.vfs.write_file(path, content, executable=executable)
        self.model[path] = content
        self.exec_bits[path] = executable
        if before is not None:
            assert stat.ino == before.ino, "overwrite must keep the inode"
            assert stat.iversion == before.iversion + 1
        return path

    @rule(path=paths, content=_CONTENT)
    def append(self, path: str, content: bytes) -> None:
        if path not in self.model:
            return
        before = self.vfs.stat(path)
        self.vfs.append_file(path, content)
        self.model[path] = self.model[path] + content
        assert self.vfs.stat(path).iversion == before.iversion + 1

    @rule(path=paths)
    def unlink(self, path: str) -> None:
        if path not in self.model:
            return
        self.vfs.unlink(path)
        del self.model[path]
        del self.exec_bits[path]

    @rule(target=paths, src=paths, dst=_NAMES)
    def rename(self, src: str, dst: str) -> str:
        if src not in self.model or src == dst:
            return src
        src_stat = self.vfs.stat(src)
        dst_stat = self.vfs.rename(src, dst)
        same_fs = src_stat.fs_id == dst_stat.fs_id
        if same_fs:
            assert dst_stat.ino == src_stat.ino, "same-fs rename keeps inode (P4)"
        else:
            assert (dst_stat.fs_id, dst_stat.ino) != (src_stat.fs_id, src_stat.ino)
        self.model[dst] = self.model.pop(src)
        self.exec_bits[dst] = self.exec_bits.pop(src)
        return dst

    @rule(path=paths, executable=st.booleans())
    def chmod(self, path: str, executable: bool) -> None:
        if path not in self.model:
            return
        before = self.vfs.stat(path)
        self.vfs.chmod(path, executable)
        self.exec_bits[path] = executable
        assert self.vfs.stat(path).iversion == before.iversion

    @invariant()
    def contents_match_model(self) -> None:
        for path, content in self.model.items():
            assert self.vfs.read_file(path) == content
            assert self.vfs.stat(path).executable == self.exec_bits[path]

    @invariant()
    def no_phantom_files(self) -> None:
        for path in self.model:
            assert self.vfs.exists(path)

    @invariant()
    def live_inodes_unique_per_filesystem(self) -> None:
        seen: set[tuple[str, int]] = set()
        for path in self.model:
            stat = self.vfs.stat(path)
            key = (stat.fs_id, stat.ino)
            assert key not in seen, f"inode {key} aliased by {path}"
            seen.add(key)


TestVfsStateful = VfsModel.TestCase
TestVfsStateful.settings = settings(max_examples=40, stateful_step_count=30, deadline=None)
