"""Tests for SNAP packages and path truncation."""

import pytest

from repro.common.errors import NotFoundError
from repro.distro.snap import SnapPackage, install_snap
from repro.kernelsim.kernel import Machine
from repro.kernelsim.vfs import FilesystemType


@pytest.fixture()
def snap(machine: Machine) -> SnapPackage:
    return install_snap(machine, "core20", 1974, ["usr/bin/chromium", "usr/bin/snapctl"])


class TestInstall:
    def test_mounts_squashfs(self, machine, snap):
        stat = machine.vfs.stat("/snap/core20/1974/usr/bin/chromium")
        assert stat.fstype is FilesystemType.SQUASHFS
        assert stat.executable

    def test_mount_root(self, snap):
        assert snap.mount_root == "/snap/core20/1974"

    def test_binary_paths(self, snap):
        assert snap.binary_path("usr/bin/chromium") == "/snap/core20/1974/usr/bin/chromium"
        assert snap.confined_path("usr/bin/chromium") == "/usr/bin/chromium"

    def test_unknown_binary_rejected(self, snap):
        with pytest.raises(NotFoundError):
            snap.binary_path("usr/bin/ghost")


class TestExecution:
    def test_confined_run_records_truncated_path(self, machine, snap):
        result = snap.run(machine, "usr/bin/chromium")
        assert result.measured
        assert result.entries[0].path == "/usr/bin/chromium"

    def test_unconfined_run_records_full_path(self, machine, snap):
        result = snap.run_unconfined(machine, "usr/bin/snapctl")
        assert result.measured
        assert result.entries[0].path == "/snap/core20/1974/usr/bin/snapctl"

    def test_truncation_is_the_fp_mechanism(self, machine, snap):
        """A policy holding only full SNAP paths cannot match confined runs."""
        from repro.keylime.policy import build_policy_from_machine

        policy = build_policy_from_machine(machine)
        assert policy.covers_path("/snap/core20/1974/usr/bin/chromium")
        result = snap.run(machine, "usr/bin/chromium")
        verdict, failure = policy.evaluate_entry(result.entries[0])
        assert failure is not None
        assert failure.path == "/usr/bin/chromium"

    def test_scrubbed_policy_matches_confined_runs(self, machine, snap):
        """Solution (a): scrub SNAP prefixes into truncated duplicates."""
        from repro.dynpolicy.generator import DynamicPolicyGenerator
        from repro.keylime.policy import EntryVerdict, build_policy_from_machine

        policy = build_policy_from_machine(machine)
        added = DynamicPolicyGenerator.scrub_snap_prefixes(policy)
        assert added >= 2
        result = snap.run(machine, "usr/bin/chromium")
        verdict, failure = policy.evaluate_entry(result.entries[0])
        assert verdict is EntryVerdict.ACCEPT
