"""Tests for the experiment harnesses (E1-E8)."""

import pytest

from repro.attacks import AttackMode
from repro.attacks.ransomware import AvosLocker
from repro.attacks.rootkits import Vlany
from repro.distro.workload import ReleaseStreamConfig
from repro.experiments.fn_matrix import run_attack_matrix, run_attack_trial
from repro.experiments.fp_week import run_fp_week
from repro.experiments.longrun import run_longrun, table1_rows
from repro.experiments.problems import run_all_demos
from repro.experiments.testbed import TestbedConfig, build_testbed

from tests.conftest import small_config


def _fast_config(seed, **overrides) -> TestbedConfig:
    config = small_config(seed)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class TestTestbed:
    def test_builds_clean(self):
        testbed = build_testbed(small_config())
        assert testbed.poll().ok

    def test_deterministic_across_builds(self):
        a = build_testbed(small_config("det"))
        b = build_testbed(small_config("det"))
        assert a.policy.to_json() == b.policy.to_json()

    def test_static_policy_mode(self):
        config = small_config()
        config.policy_mode = "static"
        testbed = build_testbed(config)
        assert testbed.poll().ok

    def test_unknown_policy_mode_rejected(self):
        config = small_config()
        config.policy_mode = "wild"
        with pytest.raises(ValueError):
            build_testbed(config)

    def test_machine_matches_mirror_at_t0(self):
        testbed = build_testbed(small_config())
        for package in testbed.mirror.packages():
            assert testbed.apt.installed_version(package.name) == package.version


class TestFpWeek:
    @pytest.fixture(scope="class")
    def result(self):
        config = _fast_config("fpweek", policy_mode="static", continue_on_failure=True)
        return run_fp_week(config=config, n_days=5)

    def test_false_positives_fire(self, result):
        assert result.total_false_positives > 0
        assert result.failed_polls > 0

    def test_update_causes_present(self, result):
        causes = result.counts_by_cause
        assert causes.get("update_hash_mismatch", 0) > 0

    def test_snap_truncation_detected(self, result):
        assert result.counts_by_cause.get("snap_truncation", 0) >= 1

    def test_no_snap_no_truncation(self):
        config = _fast_config("fpweek2", policy_mode="static", continue_on_failure=True)
        result = run_fp_week(config=config, n_days=3, with_snap=False)
        assert result.counts_by_cause.get("snap_truncation", 0) == 0


class TestLongRun:
    @pytest.fixture(scope="class")
    def daily(self):
        return run_longrun(config=_fast_config("longrun"), n_days=6)

    def test_zero_false_positives(self, daily):
        assert daily.fp_incidents == []
        assert daily.ok_polls == daily.total_polls

    def test_cycles_ran_daily(self, daily):
        assert len(daily.cycles) == 6

    def test_series_lengths_match(self, daily):
        assert len(daily.update_minutes) == 6
        assert len(daily.packages_per_update) == 6
        assert len(daily.entries_per_update) == 6

    def test_policy_grows(self, daily):
        assert daily.final_policy_lines >= daily.initial_policy_lines

    def test_weekly_cadence_fewer_cycles(self):
        weekly = run_longrun(config=_fast_config("weekly"), n_days=14, cadence_days=7)
        assert len(weekly.cycles) == 2
        assert weekly.fp_incidents == []

    def test_incident_fires_fp(self):
        result = run_longrun(
            config=_fast_config("incident"), n_days=5, official_on_days={3}
        )
        assert result.fp_incidents
        assert min(incident.day for incident in result.fp_incidents) >= 3

    def test_table1_rows_shape(self, daily):
        weekly = run_longrun(config=_fast_config("weekly2"), n_days=7, cadence_days=7)
        rows = table1_rows(daily, weekly)
        assert [row["experiment"] for row in rows] == ["Daily Update", "Weekly Update"]
        for row in rows:
            assert row["time_minutes"] > 0


class TestFnMatrix:
    def test_stock_basic_detected(self):
        trial = run_attack_trial(
            AvosLocker(), AttackMode.BASIC, mitigated=False,
            config=_fast_config("fn1"),
        )
        assert trial.detected_live

    def test_stock_adaptive_evades(self):
        trial = run_attack_trial(
            AvosLocker(), AttackMode.ADAPTIVE, mitigated=False,
            config=_fast_config("fn2"),
        )
        assert not trial.detected_live

    def test_mitigated_adaptive_detected(self):
        trial = run_attack_trial(
            Vlany(), AttackMode.ADAPTIVE, mitigated=True,
            config=_fast_config("fn3"),
        )
        assert trial.detected

    def test_matrix_over_two_samples(self):
        result = run_attack_matrix(
            mitigated=False, samples=[AvosLocker(), Vlany()], seed="fn4"
        )
        assert result.total(AttackMode.BASIC) == 2
        assert result.detected_count(AttackMode.BASIC) == 2
        assert all(
            not trial.detected_live
            for trial in result.trials if trial.mode is AttackMode.ADAPTIVE
        )

    def test_trial_lookup(self):
        result = run_attack_matrix(mitigated=False, samples=[Vlany()], seed="fn5")
        trial = result.trial("Vlany", AttackMode.BASIC)
        assert trial.name == "Vlany"
        with pytest.raises(KeyError):
            result.trial("Ghost", AttackMode.BASIC)


class TestProblemDemos:
    @pytest.fixture(scope="class")
    def demos(self):
        return {demo.problem: demo for demo in run_all_demos()}

    def test_all_five_run(self, demos):
        assert set(demos) == {"P1", "P2", "P3", "P4", "P5"}

    def test_p1_measured_but_not_alerted(self, demos):
        assert demos["P1"].ima_measured
        assert not demos["P1"].verifier_alerted

    def test_p2_backdoor_unexamined(self, demos):
        assert demos["P2"].details["halted_after_decoy"]
        assert not demos["P2"].verifier_alerted
        assert demos["P2"].details["entries_skipped_after_restart"] >= 1

    def test_p3_not_even_measured(self, demos):
        assert not demos["P3"].ima_measured
        assert not demos["P3"].verifier_alerted

    def test_p4_destination_absent_from_log(self, demos):
        assert demos["P4"].details["staged_in_log"]
        assert not demos["P4"].details["destination_in_log"]
        assert not demos["P4"].verifier_alerted

    def test_p5_interpreter_measured_instead(self, demos):
        assert not demos["P5"].ima_measured
        assert demos["P5"].details["interpreter_in_log"]
        assert not demos["P5"].verifier_alerted
