"""The durable verifier state store: integrity container + restore.

The snapshot file format is one header line (magic, version, body
length, body checksum) followed by a JSON body.  The contract under
test: a clean snapshot round-trips the verifier's complete working
state, and *every* corruption -- flipped byte, truncation, version
skew, wrong magic, edited audit history -- fails loudly as
:class:`IntegrityError`, never a quiet partial load.
"""

import json
import os

import pytest

from repro.common.errors import IntegrityError, StateError
from repro.common.rng import SeededRng
from repro.experiments.testbed import build_testbed
from repro.keylime.audit import AuditLog
from repro.keylime.statestore import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    inspect_snapshot,
    read_snapshot,
    restore_from_file,
    restore_verifier,
    snapshot_verifier,
    write_snapshot,
)
from repro.keylime.verifier import AgentState, KeylimeVerifier

from tests.conftest import small_config


@pytest.fixture()
def testbed():
    bed = build_testbed(small_config("statestore"))
    bed.workload.daily(3)
    assert bed.poll().ok
    bed.scheduler.clock.advance_by(1800.0)
    bed.workload.daily(4)
    assert bed.poll().ok
    return bed


def _fresh_twin(testbed):
    """A new verifier over the same registrar/scheduler/agent, with a
    deliberately different RNG seed and empty audit -- everything that
    matters must come from the snapshot."""
    twin = KeylimeVerifier(
        testbed.verifier.registrar,
        testbed.scheduler,
        SeededRng("totally-different"),
        testbed.verifier.events,
        continue_on_failure=testbed.verifier.continue_on_failure,
        audit=AuditLog(),
    )
    twin.add_agent(testbed.agent, testbed.policy)
    return twin


class TestSnapshotRoundTrip:
    def test_write_and_read_back(self, testbed, tmp_path):
        path = tmp_path / "verifier.snap"
        header = write_snapshot(path, testbed.verifier, meta={"seed": "s"})
        assert header["magic"] == SNAPSHOT_MAGIC
        assert header["version"] == SNAPSHOT_VERSION
        assert header["agents"] == 1
        body = read_snapshot(path)
        assert body["created_at"] == testbed.scheduler.clock.now
        assert body["meta"] == {"seed": "s"}
        assert len(body["agents"]) == 1
        record = body["agents"][0]
        assert record["agent_id"] == testbed.agent_id
        assert record["verified_entries"] == (
            testbed.verifier.verified_entries_of(testbed.agent_id)
        )
        assert len(record["results"]) == 2

    def test_restore_resumes_exact_replay_offset(self, testbed, tmp_path):
        path = tmp_path / "verifier.snap"
        write_snapshot(path, testbed.verifier)
        offset = testbed.verifier.verified_entries_of(testbed.agent_id)
        twin = _fresh_twin(testbed)
        restored = restore_from_file(twin, path)
        assert restored == [testbed.agent_id]
        assert twin.verified_entries_of(testbed.agent_id) == offset
        assert twin.results_of(testbed.agent_id) == (
            testbed.verifier.results_of(testbed.agent_id)
        )
        assert twin.state_of(testbed.agent_id) is AgentState.ATTESTING

    def test_restore_is_not_a_re_enrollment(self, testbed, tmp_path):
        """The registrar's records are untouched by a restore."""
        path = tmp_path / "verifier.snap"
        write_snapshot(path, testbed.verifier)
        record_before = testbed.verifier.registrar.lookup(testbed.agent_id)
        restore_from_file(_fresh_twin(testbed), path)
        assert testbed.verifier.registrar.lookup(testbed.agent_id) is record_before

    def test_restored_rng_continues_the_nonce_stream(self, testbed, tmp_path):
        path = tmp_path / "verifier.snap"
        write_snapshot(path, testbed.verifier)
        expected = testbed.verifier.rng.hexid(20)
        twin = _fresh_twin(testbed)
        restore_from_file(twin, path)
        assert twin.rng.hexid(20) == expected

    def test_restore_audit_chain_verbatim(self, testbed, tmp_path):
        path = tmp_path / "verifier.snap"
        write_snapshot(path, testbed.verifier)
        twin = _fresh_twin(testbed)
        restore_from_file(twin, path)
        assert twin.audit.export_records() == (
            testbed.verifier.audit.export_records()
        )
        twin.audit.verify_chain()

    def test_open_push_session_survives_the_snapshot(self, testbed, tmp_path):
        from repro.keylime.transport import negotiation_to_json

        testbed.verifier.negotiate_push(
            negotiation_to_json(testbed.agent_id, testbed.agent.capabilities())
        )
        session = testbed.verifier.open_push_session_of(testbed.agent_id)
        path = tmp_path / "verifier.snap"
        write_snapshot(path, testbed.verifier)
        twin = _fresh_twin(testbed)
        restore_from_file(twin, path)
        revived = twin.open_push_session_of(testbed.agent_id)
        assert revived is not None
        assert revived.to_record() == session.to_record()

    def test_policy_generation_never_regresses(self, testbed, tmp_path):
        path = tmp_path / "verifier.snap"
        write_snapshot(path, testbed.verifier)
        twin = _fresh_twin(testbed)
        twin._slot(testbed.agent_id).policy.generation += 7
        advanced = twin._slot(testbed.agent_id).policy.generation
        restore_verifier(twin, read_snapshot(path))
        assert twin._slot(testbed.agent_id).policy.generation == advanced

    def test_atomic_replace_keeps_the_previous_snapshot(self, testbed, tmp_path):
        path = tmp_path / "verifier.snap"
        write_snapshot(path, testbed.verifier)
        first = read_snapshot(path)
        testbed.scheduler.clock.advance_by(60.0)
        write_snapshot(path, testbed.verifier)
        second = read_snapshot(path)
        assert second["created_at"] > first["created_at"]
        # No temp droppings left behind.
        assert os.listdir(tmp_path) == ["verifier.snap"]


class TestSnapshotIntegrity:
    def _snap(self, testbed, tmp_path):
        path = tmp_path / "verifier.snap"
        write_snapshot(path, testbed.verifier)
        return path

    def test_every_flipped_body_byte_is_rejected_or_checksum_caught(
        self, testbed, tmp_path
    ):
        """Flip one byte at a sweep of offsets: the checksum catches it."""
        path = self._snap(testbed, tmp_path)
        raw = path.read_bytes()
        header_end = raw.find(b"\n")
        for offset in range(header_end + 1, len(raw), 97):
            mutated = bytearray(raw)
            mutated[offset] ^= 0x01
            path.write_bytes(bytes(mutated))
            with pytest.raises(IntegrityError):
                read_snapshot(path)
        path.write_bytes(raw)
        read_snapshot(path)

    def test_header_tampering_rejected(self, testbed, tmp_path):
        path = self._snap(testbed, tmp_path)
        raw = path.read_bytes()
        header_end = raw.find(b"\n")
        header = json.loads(raw[:header_end])
        header["agents"] = 99  # any header edit breaks nothing by itself...
        header["checksum"] = "0" * 64  # ...but a checksum edit must
        path.write_bytes(
            json.dumps(header, sort_keys=True).encode() + raw[header_end:]
        )
        with pytest.raises(IntegrityError, match="checksum"):
            read_snapshot(path)

    def test_truncation_rejected_at_every_cut(self, testbed, tmp_path):
        path = self._snap(testbed, tmp_path)
        raw = path.read_bytes()
        for cut in range(0, len(raw) - 1, max(1, len(raw) // 50)):
            path.write_bytes(raw[:cut])
            with pytest.raises(IntegrityError):
                read_snapshot(path)

    def test_version_skew_rejected(self, testbed, tmp_path):
        path = self._snap(testbed, tmp_path)
        raw = path.read_bytes()
        header_end = raw.find(b"\n")
        header = json.loads(raw[:header_end])
        header["version"] = SNAPSHOT_VERSION + 1
        path.write_bytes(
            json.dumps(header, sort_keys=True).encode() + raw[header_end:]
        )
        with pytest.raises(IntegrityError, match="version"):
            read_snapshot(path)

    def test_wrong_magic_rejected(self, testbed, tmp_path):
        path = tmp_path / "not-a-snapshot"
        path.write_text('{"magic": "something-else"}\n{}')
        with pytest.raises(IntegrityError, match="magic"):
            read_snapshot(path)

    def test_not_a_snapshot_at_all_rejected(self, tmp_path):
        path = tmp_path / "garbage"
        path.write_bytes(b"\xff\xfe\x00 no header here")
        with pytest.raises(IntegrityError):
            read_snapshot(path)

    def test_edited_audit_history_fails_the_restore(self, testbed, tmp_path):
        """Snapshot tampering below the checksum: rewrite the checksum
        to match an edited body; the audit chain still refuses."""
        path = self._snap(testbed, tmp_path)
        body = read_snapshot(path)
        body["audit"][0]["ok"] = not body["audit"][0]["ok"]
        twin = _fresh_twin(testbed)
        with pytest.raises(IntegrityError):
            restore_verifier(twin, body)
        # The failed restore did not half-apply the audit chain.
        assert len(twin.audit) == 0

    def test_missing_sections_rejected(self, testbed):
        twin = _fresh_twin(testbed)
        with pytest.raises(IntegrityError, match="missing sections"):
            restore_verifier(twin, {"created_at": 0.0})

    def test_unknown_agent_in_snapshot_is_a_state_error(self, testbed, tmp_path):
        path = self._snap(testbed, tmp_path)
        body = read_snapshot(path)
        body["agents"][0]["agent_id"] = "agent-nobody"
        twin = _fresh_twin(testbed)
        with pytest.raises(StateError, match="agent-nobody"):
            restore_verifier(twin, body)

    def test_malformed_agent_record_rejected(self, testbed, tmp_path):
        path = self._snap(testbed, tmp_path)
        body = read_snapshot(path)
        body["agents"][0]["verified_entries"] = "lots"
        twin = _fresh_twin(testbed)
        with pytest.raises(IntegrityError, match="malformed agent record"):
            restore_verifier(twin, body)


class TestInspect:
    def test_summary_fields(self, testbed, tmp_path):
        path = tmp_path / "verifier.snap"
        write_snapshot(path, testbed.verifier, meta={"nodes": 1})
        summary = inspect_snapshot(path)
        assert summary["agents"] == 1
        assert summary["states"] == {"attesting": 1}
        assert summary["results"] == 2
        assert summary["audit_records"] == 2
        assert summary["open_push_sessions"] == 0
        assert summary["meta"] == {"nodes": 1}

    def test_inspect_rejects_corruption_too(self, testbed, tmp_path):
        path = tmp_path / "verifier.snap"
        write_snapshot(path, testbed.verifier)
        raw = path.read_bytes()
        path.write_bytes(raw[:-3])
        with pytest.raises(IntegrityError):
            inspect_snapshot(path)
