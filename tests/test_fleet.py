"""Tests for fleet management."""

import pytest

from repro.common.clock import Scheduler, days
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import (
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
)
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.fleet import Fleet
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.tpm.device import TpmManufacturer


@pytest.fixture()
def world(manufacturer: TpmManufacturer):
    rng = SeededRng("fleet-tests")
    scheduler = Scheduler()
    archive = UbuntuArchive()
    base = build_base_system(rng.fork("base"), n_filler_packages=12, mean_exec_files=4)
    archive.seed(base)
    stream = SyntheticReleaseStream(
        archive, base, rng.fork("stream"),
        ReleaseStreamConfig(
            mean_packages_per_day=3.0, sd_packages_per_day=2.0,
            mean_exec_files_per_package=4.0, kernel_release_every_days=0,
        ),
    )
    mirror = LocalMirror(archive)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(
        list(IBM_STYLE_EXCLUDES), {"5.15.0-91-generic"}
    )
    fleet = Fleet(4, mirror, manufacturer, scheduler, rng.fork("fleet"), policy)
    return fleet, stream, scheduler


class TestProvisioning:
    def test_fleet_size(self, world):
        fleet, _, _ = world
        assert len(fleet) == 4
        assert fleet.healthy_count() == 4

    def test_nodes_identically_provisioned(self, world):
        fleet, _, _ = world
        versions = [
            sorted((name, pkg.version) for name, pkg in node.apt.installed.items())
            for node in fleet.nodes
        ]
        assert all(version_set == versions[0] for version_set in versions)

    def test_each_node_has_own_tpm(self, world):
        fleet, _, _ = world
        fingerprints = {
            node.machine.tpm.ek_public.fingerprint() for node in fleet.nodes
        }
        assert len(fingerprints) == len(fleet)

    def test_node_lookup(self, world):
        fleet, _, _ = world
        assert fleet.node("node-001").name == "node-001"
        with pytest.raises(KeyError):
            fleet.node("node-999")

    def test_minimum_size(self, world):
        fleet, _, _ = world
        with pytest.raises(ValueError):
            Fleet(
                0, fleet.mirror, TpmManufacturer("X", SeededRng("x")),
                fleet.scheduler, SeededRng("y"), fleet.policy,
            )


class TestAttestation:
    def test_all_nodes_attest_green(self, world):
        fleet, _, _ = world
        results = fleet.poll_all()
        assert len(results) == 4
        assert all(result.ok for result in results.values())

    def test_compromise_isolated_to_one_node(self, world):
        fleet, _, _ = world
        fleet.poll_all()
        victim = fleet.node("node-002")
        victim.machine.install_file("/usr/bin/implant", b"x", executable=True)
        victim.machine.exec_file("/usr/bin/implant")
        fleet.poll_all()
        status = fleet.status()
        assert status["node-002"] == "failed"
        assert [s for name, s in status.items() if name != "node-002"] == ["attesting"] * 3
        assert fleet.healthy_count() == 3

    def test_compromised_node_quarantined(self, world):
        fleet, _, _ = world
        victim = fleet.node("node-000")
        victim.machine.install_file("/usr/bin/implant", b"x", executable=True)
        victim.machine.exec_file("/usr/bin/implant")
        fleet.poll_all()
        assert fleet.quarantine.is_quarantined("agent-node-000")

    def test_audit_records_every_poll(self, world):
        fleet, _, _ = world
        fleet.poll_all()
        fleet.poll_all()
        fleet.audit.verify_chain()
        assert len(fleet.audit) == 8

    def test_periodic_fleet_polling(self, world):
        fleet, _, scheduler = world
        fleet.start_polling(600.0)
        scheduler.run_until(1900.0)
        for node in fleet.nodes:
            assert len(fleet.verifier.results_of(node.agent.agent_id)) == 3


class TestFleetUpdates:
    def test_update_cycle_keeps_fleet_green(self, world):
        fleet, stream, scheduler = world
        stream.generate_day(1)
        scheduler.clock.advance_to(days(2))
        report = fleet.run_update_cycle()
        assert report.nodes_updated == len(fleet)
        results = fleet.poll_all()
        assert all(result.ok for result in results.values())

    def test_generator_work_independent_of_fleet_size(self, world):
        """One sync + one generation covers every node."""
        fleet, stream, scheduler = world
        stream.generate_day(1)
        scheduler.clock.advance_to(days(2))
        report = fleet.run_update_cycle()
        # The policy delta is computed once; files fan out per node.
        assert report.files_written_total >= report.policy_report.entries_added
        assert report.nodes_updated == 4

    def test_empty_update_cycle(self, world):
        fleet, _, scheduler = world
        scheduler.clock.advance_to(days(1))
        report = fleet.run_update_cycle()
        assert report.nodes_updated == 0
        assert all(result.ok for result in fleet.poll_all().values())


def _run_common_workload(fleet, limit: int = 20) -> list[str]:
    """Execute the same binaries on every node (they are identically
    provisioned, so the measured digests coincide)."""
    paths = [
        stat.path
        for stat in fleet.nodes[0].machine.vfs.walk("/")
        if stat.executable
    ][:limit]
    for node in fleet.nodes:
        for path in paths:
            node.machine.exec_file(path)
    return paths


class TestSharedVerdictCache:
    def test_first_sweep_shares_verdicts_across_nodes(self, world):
        """Same-distro nodes measure the same files: node one misses,
        the other three hit the shared cache."""
        fleet, _, _ = world
        paths = _run_common_workload(fleet)
        results = fleet.poll_all()
        assert all(result.ok for result in results.values())
        cache = fleet.verdict_cache
        assert fleet.verifier.verdict_cache is cache
        # Every node past the first re-uses the first node's verdicts;
        # only the per-node boot aggregates stay unshared.
        assert cache.hits == (len(fleet) - 1) * len(paths)
        assert cache.misses == len(paths) + len(fleet)

    def test_second_sweep_with_no_new_entries_is_free(self, world):
        fleet, _, _ = world
        fleet.poll_all()
        hits, misses = fleet.verdict_cache.hits, fleet.verdict_cache.misses
        fleet.poll_all()  # no new measurements: nothing to evaluate
        assert fleet.verdict_cache.misses == misses
        assert fleet.verdict_cache.hits == hits

    def test_batch_scheduler_registers_every_agent(self, world):
        fleet, _, _ = world
        assert set(fleet.poll_scheduler.agents) == {
            node.agent.agent_id for node in fleet.nodes
        }

    def test_stop_polling_idempotent(self, world):
        fleet, _, scheduler = world
        fleet.start_polling(600.0)
        scheduler.run_until(1900.0)
        fleet.stop_polling()
        fleet.stop_polling()  # second stop: no error
        counts = [
            len(fleet.verifier.results_of(node.agent.agent_id))
            for node in fleet.nodes
        ]
        scheduler.run_until(4000.0)
        assert [
            len(fleet.verifier.results_of(node.agent.agent_id))
            for node in fleet.nodes
        ] == counts

    def test_batch_skips_failed_nodes(self, world):
        fleet, _, _ = world
        victim = fleet.node("node-001")
        victim.machine.install_file("/usr/bin/implant", b"x", executable=True)
        victim.machine.exec_file("/usr/bin/implant")
        fleet.poll_all()
        results = fleet.poll_scheduler.poll_batch()
        assert victim.agent.agent_id not in results  # FAILED: not re-polled
        assert len(results) == len(fleet) - 1

    def test_register_deduplicates_and_keeps_batch_order(self, world):
        fleet, _, _ = world
        batch = fleet.poll_scheduler
        before = batch.agents
        # Re-onboarding an existing agent must not duplicate its slot.
        batch.register(before[0])
        batch.register(before[-1])
        assert batch.agents == before
        batch.register("agent-late-joiner")
        assert batch.agents == before + ("agent-late-joiner",)

    def test_skipped_nodes_are_accounted(self, world):
        from repro.obs import runtime as obs_runtime

        fleet, _, _ = world
        victim = fleet.node("node-003")
        victim.machine.install_file("/usr/bin/implant", b"x", executable=True)
        victim.machine.exec_file("/usr/bin/implant")
        fleet.poll_all()
        previous = obs_runtime.get()
        telemetry = obs_runtime.activate(clock=None)
        try:
            fleet.poll_scheduler.poll_batch()
            span = telemetry.tracer.last_trace()
            assert span.name == "fleet.poll_batch"
            assert span.attributes["skipped"] == 1
            skipped = telemetry.registry.get("fleet_poll_skipped_total")
            assert skipped is not None and skipped.value == 1.0
        finally:
            if previous.enabled:
                obs_runtime.activate(previous)
            else:
                obs_runtime.deactivate()
        record = fleet.poll_scheduler.accounting.records[-1]
        assert record.skipped == 1
        assert record.registered == len(fleet)
        assert record.polled == len(fleet) - 1
