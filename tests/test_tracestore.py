"""Tests for the queryable span store and its exports."""

import json

from repro.common.clock import SimClock
from repro.obs.tracestore import (
    SpanStore,
    build_spans,
    perfetto_trace,
    span_from_record,
    span_record,
)
from repro.obs.tracing import SpanTracer, format_traceparent


def _store_with_tracer(max_traces=10_000):
    store = SpanStore(max_traces=max_traces)
    clock = SimClock()
    tracer = SpanTracer(clock=clock, store=store)
    return store, tracer, clock


def _record_poll(tracer, clock, agent="agent-a", fail=False):
    with tracer.span("verifier.poll", agent=agent) as span:
        with tracer.span("verifier.challenge"):
            clock.advance_by(1.0)
        if fail:
            span.status = "error"
    return span


class TestIngestionAndQuery:
    def test_traces_are_indexed_by_name_agent_and_error(self):
        store, tracer, clock = _store_with_tracer()
        _record_poll(tracer, clock, agent="agent-a")
        _record_poll(tracer, clock, agent="agent-b", fail=True)
        with tracer.span("mirror.sync"):
            pass

        assert len(store) == 3
        assert store.names() == [
            "mirror.sync", "verifier.challenge", "verifier.poll",
        ]
        assert store.agents() == ["agent-a", "agent-b"]
        assert [e.agent for e in store.query(name="verifier.poll")] == [
            "agent-a", "agent-b",
        ]
        assert [e.agent for e in store.query(agent="agent-b")] == ["agent-b"]
        errors = store.query(errors_only=True)
        assert len(errors) == 1 and errors[0].agent == "agent-b"

    def test_child_names_are_queryable(self):
        """A trace is findable by any span it contains, not just its root."""
        store, tracer, clock = _store_with_tracer()
        with tracer.span("fleet.poll_batch"):
            with tracer.span("verifier.poll", agent="agent-a"):
                pass
        matched = store.query(name="verifier.poll")
        assert len(matched) == 1
        assert matched[0].name == "fleet.poll_batch"

    def test_sim_time_window_query(self):
        store, tracer, clock = _store_with_tracer()
        for _ in range(4):
            clock.advance_by(1800.0)
            _record_poll(tracer, clock)
        # Polls start at t=1800, 3601, 5402, 7203 (each poll advances
        # the clock by one second); only the second overlaps the window.
        matched = store.query(since=3600.0, until=5000.0)
        assert [e.sim_start for e in matched] == [3601.0]
        assert store.query(since=1e9) == []

    def test_min_wall_and_limit(self):
        store, tracer, clock = _store_with_tracer()
        for _ in range(3):
            _record_poll(tracer, clock)
        assert store.query(min_wall=1e9) == []
        assert len(store.query(limit=2)) == 2

    def test_percentile_and_slowest(self):
        store, tracer, clock = _store_with_tracer()
        for _ in range(10):
            _record_poll(tracer, clock)
        p99 = store.percentile(0.99, name="verifier.poll")
        assert p99 > 0.0
        slowest = store.slowest(3, name="verifier.poll")
        assert len(slowest) == 3
        walls = [e.named_wall("verifier.poll") for e in slowest]
        assert walls == sorted(walls, reverse=True)
        assert walls[0] >= p99

    def test_get_accepts_decimal_and_hex(self):
        store, tracer, clock = _store_with_tracer()
        span = _record_poll(tracer, clock)
        assert store.get(span.trace_id) is not None
        assert store.get(str(span.trace_id)) is not None
        assert store.get(f"{span.trace_id:032x}") is not None
        assert store.get("not-a-trace-id") is None

    def test_resolve_exemplar(self):
        store, tracer, clock = _store_with_tracer()
        span = _record_poll(tracer, clock)
        entry = store.resolve_exemplar(
            {"trace_id": span.trace_id, "span_id": span.span_id}
        )
        assert entry is not None and entry.trace_id == span.trace_id
        assert store.resolve_exemplar({}) is None


class TestEviction:
    def test_fifo_eviction_is_accounted(self):
        store, tracer, clock = _store_with_tracer(max_traces=2)
        for _ in range(5):
            _record_poll(tracer, clock)
        assert len(store) == 2
        assert store.evicted_traces == 3
        assert store.evicted_spans == 6  # two spans per evicted poll
        stats = store.stats()
        assert stats["traces"] == 2 and stats["evicted_traces"] == 3

    def test_evicted_traces_leave_the_indexes(self):
        store, tracer, clock = _store_with_tracer(max_traces=1)
        _record_poll(tracer, clock, agent="agent-a")
        with tracer.span("mirror.sync"):
            pass
        assert store.query(agent="agent-a") == []
        assert store.names() == ["mirror.sync"]


class TestRemoteBatchMerging:
    def test_detached_batch_rejoins_by_parent_id(self):
        """Agent-side batches arriving before the poll root re-attach."""
        store, tracer, clock = _store_with_tracer()
        with tracer.span("verifier.challenge") as challenge:
            header = format_traceparent(challenge)
        # Simulate the remote batch arriving for the *closed* span: it
        # stays detached (never grafts onto a dead or absent parent).
        with tracer.remote_context(header):
            with tracer.span("agent.attest"):
                pass
        entry = store.get(challenge.trace_id)
        assert len(entry.roots) == 2  # unverified linkage stays split
        assert entry.find("agent.attest") is not None

    def test_live_join_produces_one_tree(self):
        store, tracer, clock = _store_with_tracer()
        with tracer.span("verifier.poll", agent="agent-a") as poll:
            with tracer.span("verifier.challenge") as challenge:
                with tracer.remote_context(format_traceparent(challenge)):
                    with tracer.span("agent.attest"):
                        pass
        entry = store.get(poll.trace_id)
        assert len(entry.roots) == 1
        assert [s.name for s in entry.primary.walk()] == [
            "verifier.poll", "verifier.challenge", "agent.attest",
        ]
        assert entry.span_count == 3


class TestPersistence:
    def test_span_record_roundtrip(self):
        store, tracer, clock = _store_with_tracer()
        span = _record_poll(tracer, clock, fail=True)
        record = span_record(span)
        assert record["status"] == "error"
        restored = span_from_record(record)
        assert restored.name == span.name
        assert restored.trace_id == span.trace_id
        assert restored.status == "error"
        assert abs(restored.wall_duration - span.wall_duration) < 1e-9
        assert restored.sim_start == span.sim_start

    def test_jsonl_roundtrip_preserves_queries(self):
        store, tracer, clock = _store_with_tracer()
        _record_poll(tracer, clock, agent="agent-a")
        _record_poll(tracer, clock, agent="agent-b", fail=True)
        restored = SpanStore.load_jsonl(store.dump_jsonl())
        assert len(restored) == len(store)
        assert restored.names() == store.names()
        assert restored.agents() == store.agents()
        assert len(restored.query(errors_only=True)) == 1
        entry = restored.query(agent="agent-a")[0]
        assert [s.name for s in entry.primary.walk()] == [
            "verifier.poll", "verifier.challenge",
        ]

    def test_build_spans_ignores_non_span_records(self):
        records = [
            {"type": "metric", "name": "x"},
            {"type": "event", "kind": "y"},
        ]
        assert build_spans(records) == []


class TestPerfettoExport:
    def test_chrome_trace_shape(self):
        store, tracer, clock = _store_with_tracer()
        clock.advance_by(1800.0)
        _record_poll(tracer, clock, agent="agent-a")
        doc = perfetto_trace(store.entries())
        text = json.dumps(doc)  # must be JSON-serialisable
        assert "traceEvents" in json.loads(text)
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert metas and metas[0]["args"]["name"] == "agent agent-a"
        completes = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in completes} == {
            "verifier.poll", "verifier.challenge",
        }
        poll = next(e for e in completes if e["name"] == "verifier.poll")
        assert poll["ts"] == 1800.0 * 1e6
        assert poll["dur"] > 0
        assert poll["args"]["status"] == "ok"
        assert poll["args"]["agent"] == "agent-a"

    def test_child_offsets_stay_within_parent(self):
        store, tracer, clock = _store_with_tracer()
        _record_poll(tracer, clock)
        events = perfetto_trace(store.entries())["traceEvents"]
        completes = {e["name"]: e for e in events if e["ph"] == "X"}
        parent = completes["verifier.poll"]
        child = completes["verifier.challenge"]
        assert child["ts"] >= parent["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1.0
