"""Property-based tests on core invariants (hypothesis)."""

import hashlib

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.hexutil import extend_digest, sha256_hex, zero_digest
from repro.common.rng import SeededRng
from repro.common.units import mean, percentile, stddev, summarize
from repro.kernelsim.ima import ImaLogEntry, template_hash
from repro.keylime.policy import RuntimePolicy
from repro.tpm.pcr import PcrBank, replay_extends

digests = st.binary(min_size=0, max_size=64).map(sha256_hex)
paths = st.from_regex(r"/[a-z]{1,8}(/[a-z0-9._-]{1,12}){0,4}", fullmatch=True)


class TestPcrProperties:
    @given(st.lists(digests, max_size=20))
    def test_replay_equals_bank(self, values):
        """Replaying a log always reproduces the bank's PCR value."""
        bank = PcrBank("sha256")
        for value in values:
            bank.extend(10, value)
        assert replay_extends("sha256", values) == bank.read(10)

    @given(st.lists(digests, min_size=1, max_size=10), digests)
    def test_extend_is_never_identity(self, values, extra):
        """Extending always changes the PCR (no fixed points in practice)."""
        current = replay_extends("sha256", values)
        assert extend_digest("sha256", current, extra) != current

    @given(st.lists(digests, min_size=2, max_size=8))
    def test_prefix_replay_differs(self, values):
        """A truncated log cannot replay to the full log's value."""
        assert replay_extends("sha256", values[:-1]) != replay_extends(
            "sha256", values
        )

    @given(st.lists(digests, min_size=2, max_size=6))
    def test_permutation_sensitivity(self, values):
        """Reordering the log changes the replay unless order-identical."""
        swapped = [values[1], values[0]] + values[2:]
        if swapped != values:
            assert replay_extends("sha256", swapped) != replay_extends(
                "sha256", values
            )


class TestTemplateHashProperties:
    @given(digests, paths, paths)
    def test_path_binding(self, digest, a, b):
        filedata = "sha256:" + digest
        if a != b:
            assert template_hash(filedata, a) != template_hash(filedata, b)

    @given(digests, digests, paths)
    def test_digest_binding(self, d1, d2, path):
        if d1 != d2:
            assert template_hash("sha256:" + d1, path) != template_hash(
                "sha256:" + d2, path
            )

    @given(digests, paths)
    def test_log_line_roundtrip(self, digest, path):
        filedata = "sha256:" + digest
        entry = ImaLogEntry(
            pcr=10, template_hash=template_hash(filedata, path),
            template="ima-ng", filedata_hash=filedata, path=path,
        )
        assert ImaLogEntry.from_line(entry.to_line()) == entry


class TestPolicyProperties:
    @given(st.dictionaries(paths, digests, max_size=20))
    def test_merge_is_idempotent(self, measurements):
        policy = RuntimePolicy()
        first = policy.merge_measurements(measurements)
        second = policy.merge_measurements(measurements)
        assert first == len(set(measurements))
        assert second == 0

    @given(st.dictionaries(paths, digests, min_size=1, max_size=20))
    def test_merged_entries_evaluate_accept(self, measurements):
        policy = RuntimePolicy()
        policy.merge_measurements(measurements)
        for path, digest in measurements.items():
            filedata = "sha256:" + digest
            entry = ImaLogEntry(
                pcr=10, template_hash=template_hash(filedata, path),
                template="ima-ng", filedata_hash=filedata, path=path,
            )
            verdict, failure = policy.evaluate_entry(entry)
            assert failure is None

    @given(st.dictionaries(paths, digests, max_size=15))
    def test_json_roundtrip(self, measurements):
        policy = RuntimePolicy()
        policy.merge_measurements(measurements)
        restored = RuntimePolicy.from_json(policy.to_json())
        assert restored.digests == policy.digests

    @given(st.dictionaries(paths, digests, max_size=15))
    def test_line_count_matches_digest_count(self, measurements):
        policy = RuntimePolicy()
        policy.merge_measurements(measurements)
        assert policy.line_count() == sum(
            len(values) for values in policy.digests.values()
        )

    @given(st.dictionaries(paths, digests, min_size=1, max_size=10))
    def test_dedupe_never_grows(self, measurements):
        policy = RuntimePolicy()
        policy.merge_measurements(measurements)
        before = policy.line_count()
        policy.dedupe_for_paths(measurements)
        assert policy.line_count() <= before


class TestRngProperties:
    @given(st.integers(), st.text(min_size=1, max_size=20))
    def test_fork_determinism(self, seed, name):
        a = SeededRng(seed).fork(name)
        b = SeededRng(seed).fork(name)
        assert a.token(16) == b.token(16)

    @given(st.integers(min_value=0, max_value=2**32), st.floats(min_value=0.1, max_value=50))
    @settings(suppress_health_check=[HealthCheck.filter_too_much])
    def test_poisson_nonnegative(self, seed, lam):
        assert SeededRng(seed).poisson(lam) >= 0

    @given(st.integers(), st.integers(min_value=-100, max_value=100),
           st.integers(min_value=0, max_value=200))
    def test_randint_in_bounds(self, seed, low, width):
        value = SeededRng(seed).randint(low, low + width)
        assert low <= value <= low + width


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_mean_within_bounds(self, values):
        assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_stddev_nonnegative(self, values):
        assert stddev(values) >= 0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_percentile_within_bounds(self, values, q):
        result = percentile(values, q)
        assert min(values) - 1e-6 <= result <= max(values) + 1e-6

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=30))
    def test_summarize_consistency(self, values):
        summary = summarize(values)
        assert summary["min"] <= summary["median"] <= summary["max"]
        assert summary["n"] == len(values)


class TestSignatureProperties:
    # Key generation is slow; use one module-level key.
    _keypair = None

    @classmethod
    def _key(cls):
        from repro.crypto.rsa import generate_keypair

        if cls._keypair is None:
            cls._keypair = generate_keypair(SeededRng("prop-rsa"), bits=512)
        return cls._keypair

    @given(st.binary(max_size=256))
    @settings(max_examples=25, deadline=None)
    def test_sign_verify_roundtrip(self, message):
        key = self._key()
        assert key.public.verify(message, key.sign(message))

    @given(st.binary(max_size=128), st.binary(max_size=128))
    @settings(max_examples=25, deadline=None)
    def test_cross_message_rejection(self, m1, m2):
        key = self._key()
        if hashlib.sha256(m1).digest() != hashlib.sha256(m2).digest():
            assert not key.public.verify(m2, key.sign(m1))


class TestTransportProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=23), min_size=1, max_size=8, unique=True),
        st.text(alphabet="0123456789abcdef", min_size=8, max_size=40),
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=100),
        st.binary(min_size=1, max_size=64),
    )
    def test_quote_dict_roundtrip(self, selection, nonce, clock, resets, signature):
        from repro.keylime.transport import quote_from_dict, quote_to_dict
        from repro.tpm.quote import Quote

        selection = tuple(sorted(selection))
        values = {index: sha256_hex(bytes([index])) for index in selection}
        quote = Quote(
            bank_algorithm="sha256",
            pcr_selection=selection,
            pcr_values=values,
            pcr_digest=sha256_hex(b"digest"),
            nonce=nonce,
            clock=clock,
            reset_count=resets,
            restart_count=0,
            ak_fingerprint=sha256_hex(b"ak"),
            signature=signature,
        )
        assert quote_from_dict(quote_to_dict(quote)) == quote

    @given(st.dictionaries(paths, digests, max_size=8), st.integers(0, 5))
    def test_evidence_json_roundtrip(self, measurements, offset):
        import json

        from repro.keylime.agent import AttestationEvidence
        from repro.keylime.transport import evidence_from_json, evidence_to_json
        from repro.kernelsim.ima import ImaLogEntry, template_hash
        from repro.tpm.quote import Quote

        lines = []
        for path, digest in measurements.items():
            filedata = "sha256:" + digest
            entry = ImaLogEntry(
                pcr=10, template_hash=template_hash(filedata, path),
                template="ima-ng", filedata_hash=filedata, path=path,
            )
            lines.append(entry.to_line())
        quote = Quote(
            bank_algorithm="sha256", pcr_selection=(10,),
            pcr_values={10: sha256_hex(b"v")}, pcr_digest=sha256_hex(b"d"),
            nonce="n", clock=0, reset_count=0, restart_count=0,
            ak_fingerprint=sha256_hex(b"ak"), signature=b"sig",
        )
        evidence = AttestationEvidence(
            quote=quote, ima_log_lines=tuple(lines),
            offset=offset, total_entries=offset + len(lines),
        )
        blob = evidence_to_json(evidence)
        json.loads(blob)  # well-formed JSON
        assert evidence_from_json(blob) == evidence


class TestAuditProperties:
    @given(st.lists(st.tuples(st.booleans(), st.floats(min_value=0, max_value=1e6)),
                    min_size=1, max_size=25))
    def test_chain_always_verifies_when_untampered(self, outcomes):
        from repro.keylime.audit import AuditLog

        log = AuditLog()
        for ok, time in outcomes:
            log.append(time, "agent", ok=ok)
        log.verify_chain()
        summary = log.tamper_evident_summary()
        assert summary["records"] == len(outcomes)
        assert summary["failures"] == sum(1 for ok, _time in outcomes if not ok)
