"""Tests for the Keylime extensions: revocation, audit, measured boot."""

import pytest

from repro.common.errors import IntegrityError
from repro.keylime.audit import GENESIS_HASH, AuditLog, AuditRecord
from repro.keylime.measuredboot import (
    MeasuredBootPolicy,
    capture_golden,
    golden_for_kernel,
)
from repro.keylime.revocation import (
    QuarantineListener,
    RevocationEvent,
    RevocationNotifier,
)


class TestRevocationNotifier:
    def _event(self, agent="a1", reason="policy") -> RevocationEvent:
        return RevocationEvent(
            time=1.0, agent_id=agent, reason=reason, detail="d", path="/usr/bin/x"
        )

    def test_listeners_receive_events(self):
        notifier = RevocationNotifier()
        seen = []
        notifier.subscribe(seen.append)
        notifier.notify(self._event())
        assert len(seen) == 1
        assert seen[0].agent_id == "a1"

    def test_history_kept(self):
        notifier = RevocationNotifier()
        notifier.notify(self._event())
        notifier.notify(self._event(agent="a2"))
        assert [event.agent_id for event in notifier.history] == ["a1", "a2"]

    def test_unsubscribe(self):
        notifier = RevocationNotifier()
        seen = []
        unsubscribe = notifier.subscribe(seen.append)
        unsubscribe()
        notifier.notify(self._event())
        assert seen == []

    def test_quarantine_listener(self):
        notifier = RevocationNotifier()
        quarantine = QuarantineListener()
        notifier.subscribe(quarantine)
        notifier.notify(self._event())
        assert quarantine.is_quarantined("a1")
        assert not quarantine.is_quarantined("a2")

    def test_quarantine_keeps_first_event(self):
        quarantine = QuarantineListener()
        quarantine(self._event(reason="policy"))
        quarantine(self._event(reason="pcr_mismatch"))
        assert quarantine.quarantined["a1"].reason == "policy"

    def test_release(self):
        quarantine = QuarantineListener()
        quarantine(self._event())
        quarantine.release("a1")
        assert not quarantine.is_quarantined("a1")
        quarantine.release("a1")  # idempotent


class TestAuditLog:
    def test_empty_head_is_genesis(self):
        assert AuditLog().head_hash == GENESIS_HASH

    def test_append_chains(self):
        log = AuditLog()
        first = log.append(1.0, "a1", ok=True)
        second = log.append(2.0, "a1", ok=False, detail={"failures": ["x"]})
        assert first.previous_hash == GENESIS_HASH
        assert second.previous_hash == first.record_hash
        assert log.head_hash == second.record_hash

    def test_verify_chain_ok(self):
        log = AuditLog()
        for index in range(10):
            log.append(float(index), "a1", ok=index % 3 != 0)
        log.verify_chain()

    def test_tampered_content_detected(self):
        log = AuditLog()
        log.append(1.0, "a1", ok=False, detail={"failures": ["real alert"]})
        log.append(2.0, "a1", ok=True)
        # Rewrite history: make the failure look like a success.
        original = log._records[0]
        log._records[0] = AuditRecord(
            index=original.index, time=original.time, agent_id=original.agent_id,
            ok=True, detail={}, previous_hash=original.previous_hash,
            record_hash=original.record_hash,
        )
        with pytest.raises(IntegrityError):
            log.verify_chain()

    def test_rehashed_tamper_breaks_next_link(self):
        log = AuditLog()
        log.append(1.0, "a1", ok=False)
        log.append(2.0, "a1", ok=True)
        original = log._records[0]
        forged_hash = AuditRecord.compute_hash(
            0, original.time, original.agent_id, True, {}, original.previous_hash
        )
        log._records[0] = AuditRecord(
            index=0, time=original.time, agent_id=original.agent_id,
            ok=True, detail={}, previous_hash=original.previous_hash,
            record_hash=forged_hash,
        )
        with pytest.raises(IntegrityError, match="chain break"):
            log.verify_chain()

    def test_records_filter_by_agent(self):
        log = AuditLog()
        log.append(1.0, "a1", ok=True)
        log.append(2.0, "a2", ok=True)
        assert len(log.records("a1")) == 1
        assert len(log.records()) == 2

    def test_summary(self):
        log = AuditLog()
        log.append(1.0, "a1", ok=True)
        log.append(2.0, "a1", ok=False)
        summary = log.tamper_evident_summary()
        assert summary["records"] == 2
        assert summary["failures"] == 1
        assert summary["head"] == log.head_hash


class TestMeasuredBootPolicy:
    def test_capture_golden_covers_boot_pcrs(self, machine):
        golden = capture_golden(machine)
        assert golden.pcr_selection == list(range(8))

    def test_matching_boot_passes(self, machine):
        golden = capture_golden(machine)
        values = {i: machine.tpm.read_pcr(i) for i in range(8)}
        assert golden.verify(values) == []

    def test_different_kernel_fails(self, machine):
        golden = capture_golden(machine)
        machine.pending_kernel = "6.6.6-evil"
        machine.reboot()
        values = {i: machine.tpm.read_pcr(i) for i in range(8)}
        mismatches = golden.verify(values)
        assert mismatches
        assert any(m.index == 4 for m in mismatches)  # kernel goes into PCR 4

    def test_missing_pcr_is_mismatch(self, machine):
        golden = capture_golden(machine)
        values = {i: machine.tpm.read_pcr(i) for i in range(7)}  # drop PCR 7
        mismatches = golden.verify(values)
        assert any(m.index == 7 and m.actual == "<absent>" for m in mismatches)

    def test_allow_alternative_value(self, machine):
        golden = capture_golden(machine)
        assert golden.allow(4, "ab" * 32)
        assert not golden.allow(4, "ab" * 32)  # duplicate
        values = {i: machine.tpm.read_pcr(i) for i in range(8)}
        values[4] = "ab" * 32
        assert golden.verify(values) == []

    def test_golden_for_kernel_returns_to_original(self, machine):
        original_kernel = machine.current_kernel
        policy = golden_for_kernel(machine, "5.15.0-99-generic")
        assert machine.current_kernel == original_kernel
        assert policy.pcr_selection == list(range(8))

    def test_golden_for_kernel_differs_from_current(self, machine):
        current = capture_golden(machine)
        other = golden_for_kernel(machine, "5.15.0-99-generic")
        assert current.golden[4] != other.golden[4]


class TestVerifierIntegration:
    def test_measured_boot_green_then_kernel_swap_detected(self, small_testbed):
        """End-to-end: golden boot values catch an unapproved kernel."""
        from repro.keylime.verifier import FailureKind

        testbed = small_testbed
        golden = capture_golden(testbed.machine)
        slot = testbed.verifier._slot(testbed.agent_id)
        slot.measured_boot = golden
        assert testbed.poll().ok

        # An attacker installs and boots an unapproved kernel.
        testbed.machine.pending_kernel = "6.6.6-evil"
        testbed.machine.reboot()
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].kind is FailureKind.MEASURED_BOOT

    def test_approved_kernel_rollout_stays_green(self, small_testbed):
        testbed = small_testbed
        golden = capture_golden(testbed.machine)
        new_golden = golden_for_kernel(testbed.machine, "5.15.0-99-generic")
        for index, values in new_golden.golden.items():
            for value in values:
                golden.allow(index, value)
        slot = testbed.verifier._slot(testbed.agent_id)
        slot.measured_boot = golden
        assert testbed.poll().ok
        testbed.machine.pending_kernel = "5.15.0-99-generic"
        testbed.machine.reboot()
        assert testbed.poll().ok

    def test_verifier_writes_audit_and_notifies(self, small_testbed):
        testbed = small_testbed
        audit = AuditLog()
        notifier = RevocationNotifier()
        quarantine = QuarantineListener()
        notifier.subscribe(quarantine)
        testbed.verifier.audit = audit
        testbed.verifier.notifier = notifier

        assert testbed.poll().ok
        testbed.machine.install_file("/usr/bin/evil", b"x", executable=True)
        testbed.machine.exec_file("/usr/bin/evil")
        testbed.poll()

        audit.verify_chain()
        assert audit.tamper_evident_summary()["failures"] == 1
        assert quarantine.is_quarantined(testbed.agent_id)
        assert notifier.history[0].path == "/usr/bin/evil"
