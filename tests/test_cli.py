"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_global_options(self):
        args = build_parser().parse_args(["--seed", "x", "--fillers", "5", "problems"])
        assert args.seed == "x"
        assert args.fillers == 5

    def test_attack_options(self):
        args = build_parser().parse_args(
            ["attack", "Mirai", "--mode", "adaptive", "--mitigated"]
        )
        assert args.name == "Mirai"
        assert args.mode == "adaptive"
        assert args.mitigated


class TestCommands:
    def test_problems(self, capsys):
        assert main(["--fillers", "10", "problems"]) == 0
        out = capsys.readouterr().out
        assert "P1" in out and "P5" in out

    def test_attack_basic(self, capsys):
        assert main(["--fillers", "10", "attack", "Mirai"]) == 0
        out = capsys.readouterr().out
        assert "detected live:         True" in out

    def test_attack_adaptive_evades(self, capsys):
        assert main(["--fillers", "10", "attack", "Mirai", "--mode", "adaptive"]) == 0
        out = capsys.readouterr().out
        assert "detected live:         False" in out

    def test_attack_adaptive_mitigated(self, capsys):
        assert main([
            "--fillers", "10", "attack", "Mirai", "--mode", "adaptive", "--mitigated",
        ]) == 0
        out = capsys.readouterr().out
        assert "detected live:         True" in out

    def test_attack_unknown_name(self, capsys):
        assert main(["attack", "NotARealBotnet"]) == 2
        err = capsys.readouterr().err
        assert "unknown attack" in err

    def test_fp_week_small(self, capsys):
        assert main(["--fillers", "10", "fp-week", "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert "False-positive week" in out

    def test_longrun_small(self, capsys):
        assert main(["--fillers", "10", "longrun", "--days", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig 3" in out
        assert "false positives: 0" in out

    def test_longrun_with_incident(self, capsys):
        assert main([
            "--fillers", "10", "longrun", "--days", "4", "--incident-day", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "false positives:" in out
        assert "day 3" in out or "day 4" in out


class TestReport:
    def test_report_writes_markdown(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main([
            "--seed", "cli-test", "--fillers", "8",
            "report", "--days", "2", "--out", str(out),
        ]) == 0
        text = out.read_text()
        assert "# Reproduction report" in text
        assert "Headline verdicts" in text
        assert "basic attacks detected: **8/8**" in text


class TestPolicyFileCommands:
    @pytest.fixture()
    def policy_file(self, tmp_path):
        from repro.common.hexutil import sha256_hex
        from repro.keylime.policy import IBM_STYLE_EXCLUDES, RuntimePolicy

        policy = RuntimePolicy(excludes=list(IBM_STYLE_EXCLUDES))
        policy.add_digest("/usr/bin/ls", sha256_hex(b"ls"))
        path = tmp_path / "policy.json"
        path.write_text(policy.to_json())
        return path

    def test_lint_flags_risky_excludes(self, policy_file, capsys):
        assert main(["lint", str(policy_file)]) == 1
        out = capsys.readouterr().out
        assert "/tmp" in out
        assert "P1" in out

    def test_lint_clean_policy(self, tmp_path, capsys):
        from repro.keylime.policy import RuntimePolicy

        path = tmp_path / "clean.json"
        path.write_text(RuntimePolicy(excludes=[r"^/var/log(/.*)?$"]).to_json())
        assert main(["lint", str(path)]) == 0
        assert "no risky exclude rules" in capsys.readouterr().out

    def test_diff_detects_changes(self, policy_file, tmp_path, capsys):
        from repro.common.hexutil import sha256_hex
        from repro.keylime.policy import IBM_STYLE_EXCLUDES, RuntimePolicy

        new = RuntimePolicy(excludes=list(IBM_STYLE_EXCLUDES))
        new.add_digest("/usr/bin/ls", sha256_hex(b"ls-v2"))
        new.add_digest("/usr/bin/cat", sha256_hex(b"cat"))
        new_path = tmp_path / "new.json"
        new_path.write_text(new.to_json())
        assert main(["diff", str(policy_file), str(new_path)]) == 1
        out = capsys.readouterr().out
        assert "+ /usr/bin/cat" in out
        assert "~ /usr/bin/ls" in out

    def test_diff_identical(self, policy_file, capsys):
        assert main(["diff", str(policy_file), str(policy_file)]) == 0

    def test_stats(self, policy_file, capsys):
        assert main(["stats", str(policy_file)]) == 0
        out = capsys.readouterr().out
        assert "paths:               1" in out
        assert "/usr/bin" in out


class TestObsWatch:
    @pytest.fixture(scope="class")
    def watch_export(self, tmp_path_factory):
        """One watched P2 fleet run, exported to JSONL."""
        import contextlib
        import io

        path = tmp_path_factory.mktemp("obs") / "run.jsonl"
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main([
                "--fillers", "5", "--seed", "cli-watch",
                "obs", "watch", "--days", "2", "--nodes", "2",
                "--inject-p2", "--once", "--jsonl", str(path),
            ])
        return code, path, buffer.getvalue()

    def test_parser_accepts_watch_options(self):
        args = build_parser().parse_args([
            "obs", "watch", "--scenario", "longrun", "--inject-p2",
            "--p2-day", "2", "--once", "--gap-polls", "4",
        ])
        assert args.scenario == "longrun"
        assert args.inject_p2 and args.once
        assert args.gap_polls == 4.0

    def test_watch_detects_the_injected_gap(self, watch_export):
        code, path, out = watch_export
        assert code == 0
        assert "in coverage gap" in out
        assert "health.coverage_gap" in out
        assert "==== incident INC-" in out
        assert "chain_verified=True" in out
        assert "attack.backdoor_executed" in out
        assert path.exists()

    def test_report_renders_from_the_export(self, watch_export, capsys):
        _, path, _ = watch_export
        capsys.readouterr()  # drop any prior output
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "scenario=fleet" in out
        assert "health.coverage_gap" in out
        assert "incident report(s) (embedded)" in out
        assert "chain_verified=True" in out


class TestObsTop:
    @pytest.fixture(scope="class")
    def top_export(self, tmp_path_factory):
        """One federated observatory run, exported to JSONL."""
        import contextlib
        import io

        path = tmp_path_factory.mktemp("top") / "top.jsonl"
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main([
                "--fillers", "5", "--seed", "cli-top",
                "obs", "top", "--shards", "2", "--nodes", "2", "--days", "1",
                "--once", "--jsonl", str(path), "--json-summary",
            ])
        return code, path, buffer.getvalue()

    def test_parser_accepts_top_options(self):
        args = build_parser().parse_args([
            "obs", "top", "--shards", "3", "--days", "2", "--once",
            "--chaos-profile", "partition", "--replay", "x.jsonl",
        ])
        assert args.shards == 3 and args.once
        assert args.chaos_profile == "partition"
        assert args.replay == "x.jsonl"

    def test_once_renders_federated_rollups(self, top_export):
        import json

        code, path, out = top_export
        assert code == 0
        assert "sources: 2 federated" in out
        assert "shard-0" in out and "shard-1" in out
        assert "fleet: 4 nodes" in out
        assert "SLO burn" in out
        assert "tsdb:" in out
        assert path.exists()
        # --json-summary emits one machine-checkable final frame.
        summary = json.loads(out.strip().splitlines()[-1])
        assert summary["type"] == "top_frame"
        assert summary["fleet_nodes"]["attesting"] == 4

    def test_export_carries_the_full_tsdb(self, top_export):
        from repro.obs.exporters import load_jsonl
        from repro.obs.tsdb import TsdbStore

        _, path, _ = top_export
        records = load_jsonl(path.read_text())
        kinds = {record.get("type") for record in records}
        assert {"run_meta", "tsdb_meta", "tsdb_series", "top_frame"} <= kinds
        store = TsdbStore.from_records(records)
        assert len(store) > 0
        assert store.time_span() is not None

    def test_replay_renders_post_hoc(self, top_export, capsys):
        _, path, _ = top_export
        capsys.readouterr()
        assert main(["obs", "top", "--replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fleet: 4 nodes" in out
        assert "tsdb:" in out

    def test_report_summarises_the_tsdb(self, top_export, capsys):
        _, path, _ = top_export
        capsys.readouterr()
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "scenario=observatory" in out
        assert "tsdb:" in out and "series" in out

    def test_replay_of_tsdb_free_export_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"type": "metric", "name": "x"}\n')
        assert main(["obs", "top", "--replay", str(path)]) == 1
        assert "no TSDB series" in capsys.readouterr().out


class TestObsCapacity:
    def test_parser_accepts_capacity_options(self):
        args = build_parser().parse_args([
            "obs", "capacity", "--sizes", "3,6", "--ticks", "2",
            "--budget", "0.05", "--interval", "0.1", "--verifiers", "2",
            "--current-nodes", "4", "--growth-per-day", "1",
            "--target-nodes", "40", "--json-summary",
        ])
        assert args.sizes == "3,6" and args.ticks == 2
        assert args.verifiers == 2 and args.target_nodes == 40.0

    def test_replay_fits_model_from_export(self, tmp_path, capsys):
        import json

        from repro.obs.exporters import write_jsonl_atomic
        from repro.obs.tsdb import TsdbStore

        store = TsdbStore()
        ticks = polled = busy = at = 0.0
        for n in (2, 4, 8):
            at += 600.0
            ticks += 1
            polled += n
            busy += 0.01 * n
            store.append("fleet_ticks_total", None, ticks, at, kind="counter")
            store.append(
                "fleet_polled_agents_total", None, polled, at, kind="counter"
            )
            store.append(
                "fleet_tick_busy_seconds_total", None, busy, at,
                kind="counter",
            )
        path = tmp_path / "tsdb.jsonl"
        write_jsonl_atomic(str(path), store.export_records())
        assert main([
            "obs", "capacity", "--replay", str(path),
            "--interval", "0.1", "--json-summary",
        ]) == 0
        out = capsys.readouterr().out
        assert "max sustainable nodes/verifier" in out
        summary = json.loads(out.strip().splitlines()[-1])
        assert summary["type"] == "capacity_plan"
        # busy(n) = 0.01s/node => 10 nodes inside a 0.1s budget.
        assert abs(summary["max_nodes_per_verifier"] - 10.0) < 0.5

    def test_replay_without_tick_series_fails_cleanly(
        self, tmp_path, capsys
    ):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"type": "metric", "name": "x"}\n')
        assert main(["obs", "capacity", "--replay", str(path)]) == 1
        assert "no fleet tick accounting" in capsys.readouterr().out


class TestObsWatchTsdb:
    def test_watch_tsdb_flag_runs_detectors_from_the_store(
        self, tmp_path, capsys
    ):
        path = tmp_path / "watch.jsonl"
        assert main([
            "--fillers", "5", "--seed", "cli-watch-tsdb",
            "obs", "watch", "--days", "1", "--nodes", "2", "--once",
            "--tsdb", "--jsonl", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "SLOs" in out
        from repro.obs.exporters import load_jsonl

        records = load_jsonl(path.read_text())
        kinds = {record.get("type") for record in records}
        assert "tsdb_series" in kinds and "tsdb_meta" in kinds


class TestObsTrace:
    @pytest.fixture(scope="class")
    def fleet_export(self, tmp_path_factory):
        """One small fleet run exported to JSONL (spans included)."""
        import contextlib
        import io

        path = tmp_path_factory.mktemp("trace") / "run.jsonl"
        with contextlib.redirect_stdout(io.StringIO()):
            code = main([
                "--fillers", "5", "--seed", "cli-trace",
                "obs", "fleet", "--days", "1", "--nodes", "2",
                "--jsonl", str(path),
            ])
        assert code == 0
        return path

    def test_show_prints_a_tree(self, fleet_export, capsys):
        assert main(["obs", "trace", "show", str(fleet_export)]) == 0
        out = capsys.readouterr().out
        assert "traces" in out
        assert "verifier.poll" in out

    def test_query_finds_child_span_names(self, fleet_export, capsys):
        assert main([
            "obs", "trace", "query", str(fleet_export),
            "--name", "verifier.poll", "--limit", "3",
        ]) == 0
        out = capsys.readouterr().out
        # Fleet polls batch per round: the traces match by the child
        # span name but display their batch root.
        assert "3 matching trace(s)" in out
        assert "fleet.poll_batch" in out

    def test_export_perfetto_is_loadable_chrome_json(
        self, fleet_export, tmp_path, capsys
    ):
        import json

        out_path = tmp_path / "trace.perfetto.json"
        assert main([
            "obs", "trace", "export", str(fleet_export),
            "--format", "perfetto", "--out", str(out_path),
        ]) == 0
        doc = json.loads(out_path.read_text())
        events = doc["traceEvents"]
        assert events
        completes = [e for e in events if e["ph"] == "X"]
        assert all("ts" in e and "dur" in e and "pid" in e for e in completes)
        # Agent-side spans made it across the wire into the same doc.
        assert any(e["name"] == "agent.attest" for e in completes)

    def test_export_collapsed_stacks(self, fleet_export, capsys):
        assert main([
            "obs", "trace", "export", str(fleet_export),
            "--format", "collapsed",
        ]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert lines
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    def test_critical_path_attributes_the_poll(self, fleet_export, capsys):
        assert main([
            "obs", "trace", "critical-path", str(fleet_export),
            "--name", "verifier.poll",
        ]) == 0
        out = capsys.readouterr().out
        assert "verifier.poll" in out
        assert "coverage" in out

    def test_diff_of_a_run_against_itself(self, fleet_export, capsys):
        assert main([
            "obs", "trace", "diff", str(fleet_export), str(fleet_export),
        ]) == 0
        out = capsys.readouterr().out
        assert "run.jsonl" in out

    def test_query_with_no_matches(self, fleet_export, capsys):
        assert main([
            "obs", "trace", "query", str(fleet_export),
            "--name", "no.such.span",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 matching trace(s)" in out
