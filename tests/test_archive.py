"""Tests for the upstream archive and releases."""

import pytest

from repro.common.errors import ConfigurationError, NotFoundError
from repro.distro.archive import Release, Repository, UbuntuArchive
from repro.distro.package import Package, PackageFile, Priority


def _pkg(name: str, version: str, repo: str = "main", executable: bool = True) -> Package:
    return Package(
        name=name, version=version, priority=Priority.OPTIONAL,
        files=(PackageFile(f"/usr/bin/{name}", executable),),
        repository=repo,
    )


class TestRepository:
    def test_publish_and_latest(self):
        repo = Repository("main")
        repo.publish(_pkg("a", "1.0"))
        assert repo.latest("a").version == "1.0"

    def test_publish_replaces(self):
        repo = Repository("main")
        repo.publish(_pkg("a", "1.0"))
        repo.publish(_pkg("a", "2.0"))
        assert repo.latest("a").version == "2.0"
        assert len(repo) == 1

    def test_latest_missing_raises(self):
        with pytest.raises(NotFoundError):
            Repository("main").latest("ghost")

    def test_contains(self):
        repo = Repository("main")
        repo.publish(_pkg("a", "1.0"))
        assert "a" in repo
        assert "b" not in repo

    def test_packages_sorted(self):
        repo = Repository("main")
        for name in ("c", "a", "b"):
            repo.publish(_pkg(name, "1.0"))
        assert [p.name for p in repo.packages()] == ["a", "b", "c"]


class TestArchive:
    def test_standard_repositories(self):
        archive = UbuntuArchive()
        assert set(archive.repositories) == {"main", "security", "updates"}

    def test_unknown_repository_raises(self):
        with pytest.raises(NotFoundError):
            UbuntuArchive().repository("universe")

    def test_needs_repositories(self):
        with pytest.raises(ConfigurationError):
            UbuntuArchive(repositories=())

    def test_seed(self):
        archive = UbuntuArchive()
        archive.seed([_pkg("a", "1.0"), _pkg("b", "1.0", repo="updates")])
        assert archive.repository("main").latest("a").version == "1.0"
        assert archive.repository("updates").latest("b").version == "1.0"

    def test_releases_apply_in_time(self):
        archive = UbuntuArchive()
        archive.seed([_pkg("a", "1.0")])
        archive.schedule_release(Release(time=100.0, packages=(_pkg("a", "2.0", "updates"),)))
        archive.apply_releases_until(50.0)
        assert "a" not in archive.repository("updates")
        archive.apply_releases_until(150.0)
        assert archive.repository("updates").latest("a").version == "2.0"

    def test_releases_apply_idempotent(self):
        archive = UbuntuArchive()
        archive.schedule_release(Release(time=10.0, packages=(_pkg("a", "1.0"),)))
        assert len(archive.apply_releases_until(20.0)) == 1
        assert len(archive.apply_releases_until(30.0)) == 0

    def test_out_of_order_release_rejected(self):
        archive = UbuntuArchive()
        archive.schedule_release(Release(time=100.0, packages=()))
        with pytest.raises(ConfigurationError):
            archive.schedule_release(Release(time=50.0, packages=()))

    def test_releases_between(self):
        archive = UbuntuArchive()
        archive.schedule_release(Release(time=10.0, packages=()))
        archive.schedule_release(Release(time=20.0, packages=()))
        archive.schedule_release(Release(time=30.0, packages=()))
        window = archive.releases_between(10.0, 30.0)
        assert [release.time for release in window] == [20.0, 30.0]

    def test_latest_index_priority_order(self):
        """security > updates > main for the same package name."""
        archive = UbuntuArchive()
        archive.seed([
            _pkg("a", "1.0", "main"),
            _pkg("a", "1.1", "updates"),
            _pkg("a", "1.2", "security"),
        ])
        assert archive.latest_index()["a"].version == "1.2"

    def test_release_packages_with_executables(self):
        release = Release(
            time=0.0,
            packages=(
                _pkg("a", "1.0"),
                Package(
                    name="docs", version="1.0", priority=Priority.OPTIONAL,
                    files=(PackageFile("/usr/share/doc/x", False),),
                ),
            ),
        )
        assert [p.name for p in release.packages_with_executables] == ["a"]
