"""Tests for the local mirror and its sync semantics."""

import pytest

from repro.common.errors import ConfigurationError, NotFoundError
from repro.distro.archive import Release, UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.package import Package, PackageFile, Priority


def _pkg(name: str, version: str, repo: str = "main") -> Package:
    return Package(
        name=name, version=version, priority=Priority.OPTIONAL,
        files=(PackageFile(f"/usr/bin/{name}", True),), repository=repo,
    )


@pytest.fixture()
def archive() -> UbuntuArchive:
    archive = UbuntuArchive()
    archive.seed([_pkg("a", "1.0"), _pkg("b", "1.0")])
    return archive


class TestSync:
    def test_first_sync_pulls_everything(self, archive):
        mirror = LocalMirror(archive)
        report = mirror.sync(0.0)
        assert len(report.new_packages) == 2
        assert len(mirror) == 2

    def test_resync_no_changes(self, archive):
        mirror = LocalMirror(archive)
        mirror.sync(0.0)
        report = mirror.sync(10.0)
        assert report.total == 0

    def test_sync_sees_due_releases_only(self, archive):
        archive.schedule_release(Release(time=100.0, packages=(_pkg("a", "2.0", "updates"),)))
        mirror = LocalMirror(archive)
        mirror.sync(50.0)
        assert mirror.latest("a").version == "1.0"
        report = mirror.sync(150.0)
        assert [p.name for p in report.changed_packages] == ["a"]
        assert mirror.latest("a").version == "2.0"

    def test_release_after_sync_invisible(self, archive):
        """The timing gap behind the paper's 2024-03-27 incident."""
        archive.schedule_release(Release(time=100.0, packages=(_pkg("a", "2.0", "updates"),)))
        mirror = LocalMirror(archive)
        mirror.sync(99.0)  # sync at 05:00, release lands later
        assert mirror.latest("a").version == "1.0"
        # The official archive, by contrast, has it once applied.
        archive.apply_releases_until(150.0)
        assert archive.latest_index()["a"].version == "2.0"

    def test_new_vs_changed_classification(self, archive):
        archive.schedule_release(
            Release(time=10.0, packages=(_pkg("a", "2.0", "updates"), _pkg("c", "0.1", "updates")))
        )
        mirror = LocalMirror(archive)
        mirror.sync(0.0)
        report = mirror.sync(20.0)
        assert [p.name for p in report.new_packages] == ["c"]
        assert [p.name for p in report.changed_packages] == ["a"]

    def test_last_sync_time_tracked(self, archive):
        mirror = LocalMirror(archive)
        assert mirror.last_sync_time is None
        mirror.sync(42.0)
        assert mirror.last_sync_time == 42.0

    def test_security_beats_updates(self, archive):
        archive.schedule_release(Release(time=10.0, packages=(_pkg("a", "1.1", "updates"),)))
        archive.schedule_release(Release(time=20.0, packages=(_pkg("a", "1.2", "security"),)))
        mirror = LocalMirror(archive)
        mirror.sync(30.0)
        assert mirror.latest("a").version == "1.2"


class TestConfiguration:
    def test_unknown_repo_rejected(self, archive):
        with pytest.raises(ConfigurationError):
            LocalMirror(archive, repositories=("universe",))

    def test_subset_of_repos(self, archive):
        mirror = LocalMirror(archive, repositories=("main",))
        mirror.sync(0.0)
        assert len(mirror) == 2

    def test_lookup_missing(self, archive):
        mirror = LocalMirror(archive)
        mirror.sync(0.0)
        with pytest.raises(NotFoundError):
            mirror.latest("ghost")

    def test_contains(self, archive):
        mirror = LocalMirror(archive)
        mirror.sync(0.0)
        assert "a" in mirror
        assert "ghost" not in mirror

    def test_index_is_copy(self, archive):
        mirror = LocalMirror(archive)
        mirror.sync(0.0)
        index = mirror.index()
        index.clear()
        assert len(mirror) == 2
