"""Tests for digest/hex helpers."""

import hashlib

import pytest

from repro.common.hexutil import (
    digest_hex,
    digest_size,
    extend_digest,
    is_hex_digest,
    sha1_hex,
    sha256_hex,
    zero_digest,
)


class TestDigests:
    def test_sha256_hex(self):
        assert sha256_hex(b"abc") == hashlib.sha256(b"abc").hexdigest()

    def test_sha1_hex(self):
        assert sha1_hex(b"abc") == hashlib.sha1(b"abc").hexdigest()

    def test_digest_hex_named(self):
        assert digest_hex("sha256", b"x") == sha256_hex(b"x")

    def test_digest_hex_rejects_unknown(self):
        with pytest.raises(ValueError):
            digest_hex("md5", b"x")

    def test_digest_size(self):
        assert digest_size("sha1") == 20
        assert digest_size("sha256") == 32

    def test_digest_size_rejects_unknown(self):
        with pytest.raises(ValueError):
            digest_size("crc32")

    def test_zero_digest_length(self):
        assert zero_digest("sha256") == "0" * 64
        assert zero_digest("sha1") == "0" * 40


class TestIsHexDigest:
    def test_valid_sha256(self):
        assert is_hex_digest("a" * 64, "sha256")

    def test_wrong_length_for_algorithm(self):
        assert not is_hex_digest("a" * 40, "sha256")

    def test_any_known_length_without_algorithm(self):
        assert is_hex_digest("b" * 40)
        assert is_hex_digest("b" * 64)
        assert not is_hex_digest("b" * 10)

    def test_non_hex_rejected(self):
        assert not is_hex_digest("z" * 64, "sha256")

    def test_empty_and_non_string(self):
        assert not is_hex_digest("")
        assert not is_hex_digest(None)  # type: ignore[arg-type]


class TestExtend:
    def test_matches_manual_computation(self):
        current = zero_digest("sha256")
        value = sha256_hex(b"entry")
        expected = hashlib.sha256(
            bytes.fromhex(current) + bytes.fromhex(value)
        ).hexdigest()
        assert extend_digest("sha256", current, value) == expected

    def test_extend_is_order_sensitive(self):
        zero = zero_digest("sha256")
        a = sha256_hex(b"a")
        b = sha256_hex(b"b")
        ab = extend_digest("sha256", extend_digest("sha256", zero, a), b)
        ba = extend_digest("sha256", extend_digest("sha256", zero, b), a)
        assert ab != ba

    def test_rejects_wrong_current_length(self):
        with pytest.raises(ValueError):
            extend_digest("sha256", "00", sha256_hex(b"x"))

    def test_rejects_wrong_value_length(self):
        with pytest.raises(ValueError):
            extend_digest("sha256", zero_digest("sha256"), "00")

    def test_sha1_extend(self):
        result = extend_digest("sha1", zero_digest("sha1"), sha1_hex(b"x"))
        assert len(result) == 40
