"""The grand integration scenario: every layer, one continuous story.

A hardened deployment (verified mirror syncs, signed manifests,
measured-boot golden values, SNAP + container workloads, revocation and
audit wired) runs ten days of controlled updates including a staged
kernel rollout -- all green.  Then an adaptive attacker strikes and
evades; the operator applies M1-M4; the attacker strikes again and is
caught, quarantined, and recorded tamper-evidently.
"""

import pytest

from repro.attacks import AttackMode
from repro.attacks.botnets import MortemQbot
from repro.common.clock import days, hours
from repro.common.rng import SeededRng
from repro.distro.release_signing import ArchiveSigner
from repro.distro.snap import install_snap
from repro.distro.workload import ReleaseStreamConfig
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.dynpolicy.signedhashes import ManifestAuthority
from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.keylime.audit import AuditLog
from repro.keylime.measuredboot import capture_golden, golden_for_kernel
from repro.keylime.revocation import QuarantineListener, RevocationNotifier
from repro.keylime.verifier import AgentState
from repro.kernelsim.containers import ContainerRuntime, scrub_container_prefixes
from repro.mitigations import apply_all


@pytest.fixture(scope="module")
def story():
    config = TestbedConfig(
        seed="grand-integration",
        n_filler_packages=25,
        mean_exec_files=6.0,
        # One kernel release inside the 10-day window (day 6): the
        # scenario stages exactly that rollout's golden values.  (A
        # second, unstaged kernel would -- correctly -- fail the
        # measured-boot check, which is its own test in
        # test_keylime_extensions.py.)
        stream=ReleaseStreamConfig(
            mean_packages_per_day=4.0, sd_packages_per_day=3.0,
            mean_exec_files_per_package=6.0, kernel_release_every_days=6,
        ),
    )
    testbed = build_testbed(config)

    # Harden the supply chain.
    rng = SeededRng("grand-keys")
    signer = ArchiveSigner("Archive", rng.fork("release"))
    authority = ManifestAuthority("Maintainers", rng.fork("manifests"))
    testbed.archive.enable_signing(signer)
    testbed.archive.enable_manifests(authority)
    testbed.orchestrator.archive_release_key = signer.public_key
    testbed.orchestrator.manifest_key = authority.public_key

    # Wire revocation + audit.
    notifier = RevocationNotifier()
    quarantine = QuarantineListener()
    notifier.subscribe(quarantine)
    audit = AuditLog()
    testbed.verifier.notifier = notifier
    testbed.verifier.audit = audit

    # SNAP and container workloads, with the policy-side fixes applied.
    snap = install_snap(testbed.machine, "core20", 1974, ["usr/bin/chromium"])
    for binary in snap.binaries:
        content = testbed.machine.vfs.read_file(snap.binary_path(binary))
        from repro.common.hexutil import sha256_hex

        testbed.policy.add_digest(snap.binary_path(binary), sha256_hex(content))
    DynamicPolicyGenerator.scrub_snap_prefixes(testbed.policy)
    testbed.workload.register_snap(snap)

    runtime = ContainerRuntime(testbed.machine)
    container = runtime.run("webapp", ["usr/bin/webapp"])

    # Measured boot: golden values for the current kernel, plus the
    # staged rollout target the stream will publish (counter starts at
    # 91, so the first kernel release is 5.15.0-92-generic).
    golden = capture_golden(testbed.machine)
    staged = golden_for_kernel(testbed.machine, "5.15.0-92-generic")
    for index, values in staged.golden.items():
        for value in values:
            golden.allow(index, value)
    testbed.verifier._slot(testbed.agent_id).measured_boot = golden
    testbed.verifier.restart_attestation(testbed.agent_id)  # fresh replay post-reboots

    # Ten days of hardened operation.
    for day in range(1, 11):
        testbed.stream.generate_day(day)
    testbed.orchestrator.schedule_cycles(start_day=1, n_cycles=10)
    testbed.verifier.start_polling(testbed.agent_id, 3600.0)
    testbed.scheduler.every(
        days(1), lambda: testbed.workload.daily(5), start=hours(12)
    )
    testbed.scheduler.every(
        days(2),
        lambda: runtime.exec_in_container(container.container_id, "usr/bin/webapp"),
        start=hours(13),
    )
    testbed.scheduler.run_until(days(11))
    return testbed, quarantine, audit, runtime


class TestTenHardenedDays:
    def test_zero_false_positives(self, story):
        testbed, _, _, _ = story
        results = testbed.verifier.results_of(testbed.agent_id)
        assert results
        assert all(result.ok for result in results)
        assert testbed.verifier.state_of(testbed.agent_id) is AgentState.ATTESTING

    def test_kernel_rollout_happened(self, story):
        testbed, _, _, _ = story
        assert testbed.machine.current_kernel == "5.15.0-92-generic"
        assert any(report.rebooted for report in testbed.orchestrator.reports)

    def test_updates_used_signed_manifests(self, story):
        testbed, _, _, _ = story
        manifest_events = testbed.events.select(kind="policy.generated.manifests")
        assert manifest_events

    def test_audit_chain_verifies(self, story):
        _, _, audit, _ = story
        audit.verify_chain()
        assert audit.tamper_evident_summary()["failures"] == 0


class TestThenTheAttack:
    def test_adaptive_evades_then_mitigations_catch(self, story):
        testbed, quarantine, audit, _ = story
        attacker = MortemQbot()

        # Adaptive strike against the stock configuration: silent.
        attacker.run(testbed.machine, AttackMode.ADAPTIVE)
        testbed.scheduler.run_for(7200.0)
        assert testbed.verifier.state_of(testbed.agent_id) is AgentState.ATTESTING
        assert not quarantine.quarantined

        # The operator hardens the endpoint (M1-M4) and the attacker
        # tries the same playbook again.
        apply_all(testbed.machine, testbed.verifier, testbed.policy)
        report = attacker.run(testbed.machine, AttackMode.ADAPTIVE)
        testbed.scheduler.run_for(7200.0)

        failing = {
            failure.policy_failure.path
            for failure in testbed.verifier.failures_of(testbed.agent_id)
            if failure.policy_failure is not None
        }
        assert failing & set(report.artifacts), "mitigated rig must see the attack"
        assert quarantine.is_quarantined(testbed.agent_id)
        audit.verify_chain()
        assert audit.tamper_evident_summary()["failures"] >= 1
