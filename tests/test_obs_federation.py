"""Tests for the snapshot wire pair and the federation hub."""

import pytest

from repro.common.errors import IntegrityError
from repro.obs.federation import (
    SNAPSHOT_TYPE,
    FederationHub,
    registry_snapshot,
    snapshot_from_json,
    snapshot_to_json,
)
from repro.obs.metrics import MetricsRegistry


def _registry(polls=5, lat=(0.05, 0.5)):
    registry = MetricsRegistry()
    registry.counter("polls_total", "", ("result",)).labels(
        result="ok").inc(polls)
    registry.gauge("nodes", "").set(3)
    hist = registry.histogram("lat", "", buckets=(0.1, 1.0))
    for value in lat:
        hist.observe(value)
    return registry


class TestSnapshotWire:
    def test_roundtrip(self):
        snapshot = registry_snapshot(_registry(), "shard-0", 100.0)
        decoded = snapshot_from_json(snapshot_to_json(snapshot))
        assert decoded["type"] == SNAPSHOT_TYPE
        assert decoded["source"] == "shard-0"
        assert decoded["at"] == 100.0
        by_name = {entry["name"]: entry for entry in decoded["metrics"]}
        assert by_name["polls_total"]["value"] == 5.0
        assert by_name["polls_total"]["labels"] == {"result": "ok"}
        assert by_name["lat"]["count"] == 2.0
        assert ["+Inf", 2.0] in by_name["lat"]["buckets"]

    @pytest.mark.parametrize("blob", [
        "not json",
        "[]",
        '{"type": "other"}',
        '{"type": "obs_snapshot", "source": "", "at": 0, "metrics": []}',
        '{"type": "obs_snapshot", "source": "s", "at": "nope", "metrics": []}',
        '{"type": "obs_snapshot", "source": "s", "at": 0, "metrics": {}}',
        '{"type": "obs_snapshot", "source": "s", "at": 0, '
        '"metrics": [{"kind": "counter"}]}',
        '{"type": "obs_snapshot", "source": "s", "at": 0, '
        '"metrics": [{"name": "h", "kind": "histogram", "count": 1}]}',
    ])
    def test_malformed_input_is_integrity_error(self, blob):
        with pytest.raises(IntegrityError):
            snapshot_from_json(blob)

    def test_label_overflow_travels(self):
        registry = MetricsRegistry(max_label_sets=2)
        family = registry.counter("chatty", "", ("who",))
        for i in range(10):
            family.labels(who=f"w{i}").inc()
        snapshot = snapshot_from_json(snapshot_to_json(
            registry_snapshot(registry, "s", 1.0)))
        assert snapshot["label_overflow"] == {"chatty": 8}


class TestFederationHub:
    def test_series_tagged_by_source(self):
        hub = FederationHub()
        hub.ingest_json(snapshot_to_json(
            registry_snapshot(_registry(polls=5), "shard-0", 60.0)))
        hub.ingest_json(snapshot_to_json(
            registry_snapshot(_registry(polls=9), "shard-1", 60.0)))
        assert hub.store.instant(
            "polls_total", {"result": "ok", "source": "shard-0"}, 60.0) == 5.0
        assert hub.store.instant(
            "polls_total", {"result": "ok", "source": "shard-1"}, 60.0) == 9.0
        # Fleet-level queries sum across sources.
        total = sum(
            series.instant(60.0)
            for series in hub.store.select("polls_total", result="ok")
        )
        assert total == 14.0
        # Histograms land exploded, same shape as a local scrape.
        assert hub.store.instant(
            "lat_count", {"source": "shard-0"}, 60.0) == 2.0
        assert len(hub.store.select("lat_bucket", source="shard-0")) == 3

    def test_out_of_order_snapshot_dropped_with_accounting(self):
        hub = FederationHub()
        registry = _registry()
        hub.ingest(registry_snapshot(registry, "s", 100.0))
        before = hub.store.total_samples()
        assert hub.ingest(registry_snapshot(registry, "s", 50.0)) == 0
        assert hub.ingest(registry_snapshot(registry, "s", 100.0)) == 0
        assert hub.store.total_samples() == before
        state = hub.source("s")
        assert state.snapshots == 1
        assert state.dropped == 2
        # Other sources are unaffected by one source's regression.
        assert hub.ingest(registry_snapshot(registry, "t", 50.0)) > 0

    def test_source_restart_counts_as_counter_reset(self):
        hub = FederationHub()
        hub.ingest(registry_snapshot(_registry(polls=50), "s", 60.0))
        hub.ingest(registry_snapshot(_registry(polls=3), "s", 120.0))
        assert hub.store.counter_resets > 0
        series = hub.store.select("polls_total", source="s")[0]
        # Reset-adjusted: 50 then restart at 3, never -47.
        assert series.increase(0.0, 120.0) == pytest.approx(53.0)

    def test_staleness_tracking(self):
        hub = FederationHub(poll_interval=60.0)
        hub.ingest(registry_snapshot(_registry(), "fresh", 100.0))
        hub.ingest(registry_snapshot(_registry(), "quiet", 40.0))
        ages = hub.staleness(160.0)
        assert ages["fresh"] == pytest.approx(60.0)
        assert ages["quiet"] == pytest.approx(120.0)
        assert hub.stale_sources(160.0, max_age=90.0) == ["quiet"]

    def test_rules_evaluate_over_merged_store(self):
        hub = FederationHub(poll_interval=60.0)
        for minute in range(1, 11):
            at = minute * 60.0
            for shard, step in (("a", 2), ("b", 3)):
                registry = _registry(polls=minute * step)
                hub.ingest(registry_snapshot(registry, shard, at))
        hub.evaluate(600.0)
        # verifier_polls_total is absent here; the fleet:nodes rollup
        # still derives from the merged gauge series.
        from repro.obs.rules import AggregateRule

        hub.engine.add(AggregateRule("fleet:all_nodes", "nodes", "sum"))
        hub.evaluate(600.0)
        assert hub.store.instant("fleet:all_nodes", None, 600.0) == 6.0

    def test_label_overflow_survives_merge(self):
        """A cardinality bug in any shard stays visible fleet-wide:
        per-source overflow series in the store, per-source counts on
        the source state, and a cross-source merged total."""
        hub = FederationHub()
        for name, cap, n in (("shard-0", 2, 10), ("shard-1", 3, 5)):
            registry = MetricsRegistry(max_label_sets=cap)
            family = registry.counter("chatty", "", ("who",))
            for i in range(n):
                family.labels(who=f"w{i}").inc()
            hub.ingest_json(snapshot_to_json(
                registry_snapshot(registry, name, 60.0)))
        assert hub.merged_label_overflow() == {"chatty": 8 + 2}
        assert hub.source("shard-0").label_overflow == {"chatty": 8}
        assert hub.store.instant(
            "telemetry_label_sets_overflowed_total",
            {"metric": "chatty", "source": "shard-0"}, 60.0) == 8.0
        assert hub.store.instant(
            "telemetry_label_sets_overflowed_total",
            {"metric": "chatty", "source": "shard-1"}, 60.0) == 2.0
        # And each shard's _overflow cell is exactly one merged series.
        assert len(hub.store.select("chatty", who="_overflow",
                                    source="shard-0")) == 1

    def test_scrape_bookkeeping(self):
        hub = FederationHub()
        hub.ingest(registry_snapshot(_registry(), "a", 100.0))
        hub.ingest(registry_snapshot(_registry(), "b", 80.0))
        assert hub.store.scrapes == 2
        assert hub.store.last_scrape_at == 100.0
        assert [state.name for state in hub.sources()] == ["a", "b"]
