"""Tests for the embedded TSDB: tiers, budgets, resets, scraping."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tsdb import (
    COUNTER_RESETS_METRIC,
    Frame,
    RegistryScraper,
    Series,
    TsdbStore,
    format_le,
    label_key,
    meta_registry_reset_hook,
)

HOUR = 3600.0


class TestLabelKey:
    def test_sorted_and_stringified(self):
        assert label_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_empty_and_none_agree(self):
        assert label_key(None) == label_key({}) == ()


class TestSeriesBasics:
    def test_instant_at_and_before(self):
        store = TsdbStore()
        for t in range(5):
            store.append("g", None, float(t * 10), float(t))
        series = store.get_series("g")
        assert series.instant(2.0) == 20.0
        assert series.instant(2.5) == 20.0
        assert series.instant() == 40.0
        assert series.instant(-1.0) is None
        assert series.instant_before(2.0) == 10.0

    def test_out_of_order_sample_dropped(self):
        store = TsdbStore()
        store.append("g", None, 1.0, 10.0)
        store.append("g", None, 99.0, 5.0)  # older: dropped
        assert len(store.get_series("g")) == 1
        assert store.instant("g", None, 10.0) == 1.0

    def test_range_values_window_edges(self):
        store = TsdbStore()
        for t in range(10):
            store.append("g", None, float(t), float(t))
        points = store.range_values("g", None, 3.0, 6.0)
        assert [t for t, _ in points] == [3.0, 4.0, 5.0, 6.0]

    def test_unknown_kind_rejected(self):
        store = TsdbStore()
        with pytest.raises(ConfigurationError):
            Series("x", (), "summary", store)

    def test_select_filters_by_labels(self):
        store = TsdbStore()
        store.append("m", {"a": "1", "s": "x"}, 1.0, 0.0)
        store.append("m", {"a": "2", "s": "x"}, 1.0, 0.0)
        store.append("m", {"a": "1", "s": "y"}, 1.0, 0.0)
        store.append("other", {"a": "1"}, 1.0, 0.0)
        assert len(store.select("m")) == 3
        assert len(store.select("m", s="x")) == 2
        assert len(store.select("m", a="1", s="y")) == 1


class TestCounterIncrease:
    def test_increase_is_reset_adjusted(self):
        store = TsdbStore()
        # 1 -> 5 -> 9 -> reset -> 2 -> 4
        for t, v in enumerate([1.0, 5.0, 9.0, 2.0, 4.0]):
            store.append("c", None, v, float(t), kind="counter")
        series = store.get_series("c")
        assert series.resets == 1
        # 1 (from base 0) + 4 + 4, then reset restarts at 2, + 2.
        assert series.increase(0.0, 4.0) == pytest.approx(13.0)

    def test_window_base_is_strictly_before_start(self):
        store = TsdbStore()
        for t, v in enumerate([10.0, 20.0, 30.0, 40.0]):
            store.append("c", None, v, float(t), kind="counter")
        # Left-closed: the sample AT t=1 contributes against base t=0.
        assert store.increase("c", None, 1.0, 3.0) == pytest.approx(30.0)

    def test_rate(self):
        store = TsdbStore()
        for t in range(11):
            store.append("c", None, float(t * 6), float(t * 10), kind="counter")
        # Left-closed window: base is the sample strictly before t=40
        # (t=30, v=18), so the increase is 60-18=42 over 60 seconds.
        assert store.rate("c", None, 60.0, 100.0) == pytest.approx(0.7)
        with pytest.raises(ConfigurationError):
            store.get_series("c").rate(0.0, 100.0)

    def test_reset_bumps_store_and_hook(self):
        seen = []
        store = TsdbStore(on_counter_reset=seen.append)
        store.append("c", None, 5.0, 0.0, kind="counter")
        store.append("c", None, 1.0, 1.0, kind="counter")
        assert store.counter_resets == 1
        assert [series.name for series in seen] == ["c"]

    def test_gauges_never_count_resets(self):
        store = TsdbStore()
        store.append("g", None, 5.0, 0.0, kind="gauge")
        store.append("g", None, 1.0, 1.0, kind="gauge")
        assert store.counter_resets == 0


class TestDownsamplingTiers:
    def _filled(self, n, cap=120, fold=10, kind="counter"):
        store = TsdbStore(max_samples=cap, fold=fold)
        for t in range(n):
            store.append("c", None, float(t), float(t), kind=kind)
        return store, store.get_series("c")

    def test_folding_preserves_counter_mass(self):
        store, series = self._filled(500)
        assert len(series.tier1) > 0 or len(series.tier2) > 0
        # Total increase survives downsampling exactly (0 -> 499).
        assert series.increase(0.0, 499.0) == pytest.approx(499.0)

    def test_frame_points_surface_last_value_at_end(self):
        store, series = self._filled(500)
        frame = (series.tier2 or series.tier1)[0]
        assert series.instant(frame.end) == pytest.approx(frame.v_last)
        # Instants inside old (folded) history are answerable, degraded
        # to the covering frame's resolution.
        mid = (frame.start + frame.end) / 2.0
        assert series.instant(mid) is not None

    def test_fold_carries_reset_mass_across_tiers(self):
        store = TsdbStore(max_samples=60, fold=5)
        values = []
        v = 0.0
        for t in range(400):
            if t % 97 == 96:
                v = 1.0  # reset
            else:
                v += 2.0
            values.append(v)
            store.append("c", None, v, float(t), kind="counter")
        series = store.get_series("c")
        expected = values[0]
        for prev, cur in zip(values, values[1:]):
            expected += cur - prev if cur >= prev else cur
        assert series.increase(0.0, 399.0) == pytest.approx(expected)

    def test_frame_roundtrip(self):
        frame = Frame(
            start=1.0, end=9.0, count=5, v_sum=15.0, v_min=1.0,
            v_max=5.0, v_first=1.0, v_last=5.0, inc=4.0, resets=1,
        )
        assert Frame.from_list(frame.to_list()) == frame
        assert frame.mean == pytest.approx(3.0)

    def test_budget_rebalances_as_series_appear(self):
        store = TsdbStore(max_samples=1000)
        store.append("a", None, 0.0, 0.0)
        wide = store.series_caps()
        for i in range(20):
            store.append(f"s{i}", None, 0.0, 0.0)
        narrow = store.series_caps()
        assert narrow[0] < wide[0]


class TestLongRunBudget:
    def test_66_day_run_stays_bounded_and_queryable(self):
        """The acceptance scenario: a 66-day longrun at 30-minute
        scrapes with a realistic series count stays under the sample
        cap throughout, and instant queries anywhere in history --
        raw, tier-1 and tier-2 ages -- still answer."""
        cap = 5000
        n_series = 60
        store = TsdbStore(max_samples=cap)
        scrape_interval = 1800.0
        n_scrapes = int(66 * 86400 / scrape_interval)  # 3168
        for i in range(n_scrapes):
            at = i * scrape_interval
            for s in range(n_series):
                store.append(f"m{s:02d}", None, float(i * (s + 1)), at,
                             kind="counter")
            if i % 500 == 0:
                assert store.total_samples() <= cap + n_series * store.fold
        assert store.total_samples() <= cap + n_series * store.fold
        end = (n_scrapes - 1) * scrape_interval
        series = store.get_series("m00")
        assert series.tier2, "66 days must reach tier 2"
        # Newest (raw), mid-age (tier 1), oldest retained (tier 2).
        assert series.instant(end) == pytest.approx(n_scrapes - 1)
        assert series.instant(series.tier1[0].end) is not None
        assert series.instant(series.tier2[0].end) is not None
        span = store.time_span()
        assert span is not None and span[1] == end
        # Increase across the whole retained horizon stays exact: the
        # counter is monotone, so mass = last - first retained base.
        assert series.increase(span[0], end) > 0


class TestExportImport:
    def _populated(self):
        store = TsdbStore(max_samples=200, fold=5)
        for t in range(300):
            store.append("c", {"k": "v"}, float(t), float(t), kind="counter")
            store.append("g", None, float(t % 7), float(t))
        store.scrapes = 300
        store.last_scrape_at = 299.0
        return store

    def test_roundtrip_is_exact(self):
        store = self._populated()
        rebuilt = TsdbStore.from_records(list(store.export_records()))
        assert rebuilt.max_samples == store.max_samples
        assert rebuilt.scrapes == store.scrapes
        assert len(rebuilt) == len(store)
        for original, copy in zip(store.series(), rebuilt.series()):
            assert copy.name == original.name
            assert copy.labels == original.labels
            assert copy.kind == original.kind
            assert list(copy.raw) == list(original.raw)
            assert list(copy.tier1) == list(original.tier1)
            assert list(copy.tier2) == list(original.tier2)
        assert rebuilt.increase("c", {"k": "v"}, 0.0, 299.0) == \
            store.increase("c", {"k": "v"}, 0.0, 299.0)

    def test_import_skips_foreign_records_and_handles_order(self):
        store = self._populated()
        records = list(store.export_records())
        # Series before meta, with foreign records mixed in.
        shuffled = [{"type": "metric", "name": "x"}] + records[1:] + \
            [records[0], {"type": "span"}]
        rebuilt = TsdbStore.from_records(shuffled)
        assert len(rebuilt) == len(store)
        assert rebuilt.scrapes == store.scrapes

    def test_import_of_nothing_yields_empty_store(self):
        rebuilt = TsdbStore.from_records([{"type": "metric"}])
        assert len(rebuilt) == 0


class TestFormatLe:
    def test_styles(self):
        assert format_le(float("inf")) == "+Inf"
        assert format_le(10.0) == "10"
        assert format_le(0.25) == "0.25"


class TestRegistryScraper:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("polls_total", "", ("result",)).labels(
            result="ok").inc(5)
        registry.gauge("nodes", "").set(7)
        hist = registry.histogram("lat", "", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        store = TsdbStore()
        scraper = RegistryScraper(store)
        appended = scraper.scrape(registry, 100.0)
        assert appended > 0
        assert store.instant("polls_total", {"result": "ok"}, 100.0) == 5.0
        assert store.instant("nodes", None, 100.0) == 7.0
        assert store.instant("lat_count", None, 100.0) == 2.0
        assert store.instant("lat_bucket", {"le": "0.1"}, 100.0) == 1.0
        assert store.instant("lat_bucket", {"le": "+Inf"}, 100.0) == 2.0
        assert store.scrapes == 1 and store.last_scrape_at == 100.0

    def test_extra_labels_tag_every_series(self):
        registry = MetricsRegistry()
        registry.counter("c", "").inc()
        store = TsdbStore()
        RegistryScraper(store, extra_labels={"source": "s0"}).scrape(
            registry, 1.0)
        assert all(s.label("source") == "s0" for s in store.series())

    def test_overflow_cell_is_exactly_one_series_per_family(self):
        """The cardinality guard's ``_overflow`` cell must map to ONE
        TSDB series per family no matter how many label-sets collapsed
        into it -- and repeated scrapes must not multiply it."""
        registry = MetricsRegistry(max_label_sets=3)
        family = registry.counter("chatty_total", "", ("who",))
        for i in range(50):
            family.labels(who=f"agent-{i}").inc()
        store = TsdbStore()
        scraper = RegistryScraper(store)
        scraper.scrape(registry, 1.0)
        scraper.scrape(registry, 2.0)
        overflow = store.select("chatty_total", who="_overflow")
        assert len(overflow) == 1
        assert overflow[0].instant(2.0) == 47.0
        # 3 real cells + 1 overflow cell.
        assert len(store.select("chatty_total")) == 4
        # The per-family overflow count is scraped as its own counter.
        assert store.instant(
            "telemetry_label_sets_overflowed_total",
            {"metric": "chatty_total"}, 2.0,
        ) == 47.0

    def test_meta_reset_hook_records_resets_observably(self):
        registry = MetricsRegistry()
        store = TsdbStore(on_counter_reset=meta_registry_reset_hook(registry))
        store.append("c", None, 5.0, 0.0, kind="counter")
        store.append("c", None, 1.0, 1.0, kind="counter")
        family = registry.get(COUNTER_RESETS_METRIC)
        assert family is not None
        assert family.labels(metric="c").value == 1.0
        # One scrape later the reset count is itself historical.
        RegistryScraper(store).scrape(registry, 2.0)
        assert store.instant(
            COUNTER_RESETS_METRIC, {"metric": "c"}, 2.0) == 1.0


class TestStoreValidation:
    def test_bad_budget_and_fold(self):
        with pytest.raises(ConfigurationError):
            TsdbStore(max_samples=3)
        with pytest.raises(ConfigurationError):
            TsdbStore(fold=1)

    def test_stats_shape(self):
        store = TsdbStore()
        store.append("a", None, 1.0, 0.0)
        stats = store.stats()
        assert stats["series"] == 1
        assert stats["samples"] == 1
        assert set(stats["caps"]) == {"raw", "tier1", "tier2"}
