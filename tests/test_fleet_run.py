"""Tests for the continuous fleet scenario (experiments/fleet_run.py)."""

import pytest

from repro.common.clock import days, hours
from repro.experiments.fleet_run import P2Injection, run_fleet_scenario
from repro.obs.health import HealthWatch


@pytest.fixture(scope="module")
def plain_run():
    return run_fleet_scenario(
        seed="fleet-run", n_nodes=2, n_days=2, n_filler_packages=5
    )


class TestFleetScenario:
    def test_all_nodes_keep_attesting(self, plain_run):
        assert set(plain_run.status.values()) == {"attesting"}

    def test_polling_covers_the_whole_run(self, plain_run):
        # Two nodes, half-hourly polls, two+ days: the run starts at the
        # first interval and ends at day n+1.
        per_node = plain_run.total_polls / len(plain_run.fleet)
        assert per_node == pytest.approx((days(3) - 1800.0) // 1800.0, abs=2)

    def test_one_update_cycle_per_day(self, plain_run):
        assert len(plain_run.update_reports) == 2
        for report in plain_run.update_reports:
            assert report.nodes_updated in (0, 2)  # shared policy, all-or-none

    def test_sync_lands_the_previous_days_releases(self, plain_run):
        # Day d's 05:00 cycle syncs day d-1's releases, so every poll
        # after an upgrade still verifies: zero false positives.
        verifier = plain_run.fleet.verifier
        for node in plain_run.fleet.nodes:
            assert all(
                result.ok for result in verifier.results_of(node.agent.agent_id)
            )

    def test_heartbeat_events_emitted(self, plain_run):
        beats = plain_run.fleet.events.by_kind("fleet.heartbeat")
        assert beats
        assert beats[-1].details["healthy"] == 2
        assert beats[-1].details["attesting"] == 2
        assert beats[-1].details["failed"] == 0


class TestP2Injection:
    def test_defaults_place_the_attack_inside_the_gap(self):
        p2 = P2Injection()
        assert p2.attack_time == p2.fp_time + p2.attack_delay
        assert p2.fp_time == days(1) + hours(6.5)

    def test_without_a_watch_the_attack_is_silent(self):
        result = run_fleet_scenario(
            seed="fleet-p2-stock", n_nodes=2, n_days=2, n_filler_packages=5,
            p2=P2Injection(),
        )
        victim = result.fleet.nodes[0]
        assert result.status[victim.name] == "failed"
        assert result.p2_node == victim.agent.agent_id
        # The verifier recorded nothing after the halt -- the gap.
        last = result.fleet.verifier.results_of(result.p2_node)[-1]
        assert last.time == result.p2.fp_time
        assert not last.ok
        # Yet the backdoor ran on the machine inside that gap.
        assert result.fleet.events.by_kind("attack.backdoor_executed")

    def test_watch_health_registers_every_node(self):
        watch = HealthWatch(tick_interval=1800.0)
        result = run_fleet_scenario(
            seed="fleet-p2-watched", n_nodes=2, n_days=2, n_filler_packages=5,
            p2=P2Injection(), watch=watch,
        )
        assert watch.attached
        assert watch.monitor.gaps.agents() == [
            node.agent.agent_id for node in result.fleet.nodes
        ]
        assert watch.engine.is_firing("health.coverage_gap", result.p2_node)
