"""Tests for the structured event log."""

from repro.common.events import EventLog, EventRecord


class TestEmit:
    def test_emit_appends(self):
        log = EventLog()
        log.emit(1.0, "a", "x")
        log.emit(2.0, "b", "y")
        assert len(log) == 2

    def test_emit_returns_record(self):
        log = EventLog()
        record = log.emit(1.0, "keylime.verifier", "attestation.ok", agent="a1")
        assert record.time == 1.0
        assert record.details == {"agent": "a1"}

    def test_detail_keys_may_shadow_positional_names(self):
        # 'source' and 'kind' as detail keys must not collide with the
        # positional parameters (positional-only signature).
        log = EventLog()
        record = log.emit(1.0, "apt", "apt.upgraded", source="official", kind="x")
        assert record.details["source"] == "official"
        assert record.source == "apt"


class TestQueries:
    def _populated(self) -> EventLog:
        log = EventLog()
        log.emit(1.0, "keylime.verifier", "attestation.ok")
        log.emit(2.0, "keylime.verifier", "attestation.failed.policy")
        log.emit(3.0, "apt", "apt.upgraded")
        log.emit(4.0, "keylime.verifier", "attestation.ok")
        return log

    def test_select_by_source_prefix(self):
        log = self._populated()
        assert len(log.select(source="keylime")) == 3

    def test_select_by_kind_prefix(self):
        log = self._populated()
        assert len(log.select(kind="attestation")) == 3
        assert len(log.select(kind="attestation.failed")) == 1

    def test_select_time_window(self):
        log = self._populated()
        assert len(log.select(since=2.0, until=3.0)) == 2

    def test_count(self):
        log = self._populated()
        assert log.count(kind="attestation.ok") == 2

    def test_last(self):
        log = self._populated()
        last = log.last(kind="attestation")
        assert last is not None and last.time == 4.0

    def test_last_returns_none_when_no_match(self):
        assert EventLog().last(kind="zzz") is None

    def test_kinds_histogram(self):
        log = self._populated()
        assert log.kinds()["attestation.ok"] == 2

    def test_iteration(self):
        log = self._populated()
        assert [record.time for record in log] == [1.0, 2.0, 3.0, 4.0]


class TestSubscribe:
    def test_subscriber_sees_future_events(self):
        log = EventLog()
        seen: list[EventRecord] = []
        log.subscribe(seen.append)
        log.emit(1.0, "a", "x")
        assert len(seen) == 1

    def test_unsubscribe(self):
        log = EventLog()
        seen: list[EventRecord] = []
        unsubscribe = log.subscribe(seen.append)
        log.emit(1.0, "a", "x")
        unsubscribe()
        log.emit(2.0, "a", "y")
        assert len(seen) == 1

    def test_unsubscribe_twice_is_safe(self):
        log = EventLog()
        unsubscribe = log.subscribe(lambda record: None)
        unsubscribe()
        unsubscribe()


class TestMatches:
    def test_matches_prefixes(self):
        record = EventRecord(1.0, "keylime.verifier", "attestation.ok")
        assert record.matches(source="keylime")
        assert record.matches(kind="attestation")
        assert not record.matches(source="apt")
        assert not record.matches(kind="policy")
