"""Tests for the structured event log."""

from repro.common.events import EventLog, EventRecord


class TestEmit:
    def test_emit_appends(self):
        log = EventLog()
        log.emit(1.0, "a", "x")
        log.emit(2.0, "b", "y")
        assert len(log) == 2

    def test_emit_returns_record(self):
        log = EventLog()
        record = log.emit(1.0, "keylime.verifier", "attestation.ok", agent="a1")
        assert record.time == 1.0
        assert record.details == {"agent": "a1"}

    def test_detail_keys_may_shadow_positional_names(self):
        # 'source' and 'kind' as detail keys must not collide with the
        # positional parameters (positional-only signature).
        log = EventLog()
        record = log.emit(1.0, "apt", "apt.upgraded", source="official", kind="x")
        assert record.details["source"] == "official"
        assert record.source == "apt"


class TestQueries:
    def _populated(self) -> EventLog:
        log = EventLog()
        log.emit(1.0, "keylime.verifier", "attestation.ok")
        log.emit(2.0, "keylime.verifier", "attestation.failed.policy")
        log.emit(3.0, "apt", "apt.upgraded")
        log.emit(4.0, "keylime.verifier", "attestation.ok")
        return log

    def test_select_by_source_prefix(self):
        log = self._populated()
        assert len(log.select(source="keylime")) == 3

    def test_select_by_kind_prefix(self):
        log = self._populated()
        assert len(log.select(kind="attestation")) == 3
        assert len(log.select(kind="attestation.failed")) == 1

    def test_select_time_window(self):
        log = self._populated()
        assert len(log.select(since=2.0, until=3.0)) == 2

    def test_count(self):
        log = self._populated()
        assert log.count(kind="attestation.ok") == 2

    def test_last(self):
        log = self._populated()
        last = log.last(kind="attestation")
        assert last is not None and last.time == 4.0

    def test_last_returns_none_when_no_match(self):
        assert EventLog().last(kind="zzz") is None

    def test_kinds_histogram(self):
        log = self._populated()
        assert log.kinds()["attestation.ok"] == 2

    def test_iteration(self):
        log = self._populated()
        assert [record.time for record in log] == [1.0, 2.0, 3.0, 4.0]


class TestSubscribe:
    def test_subscriber_sees_future_events(self):
        log = EventLog()
        seen: list[EventRecord] = []
        log.subscribe(seen.append)
        log.emit(1.0, "a", "x")
        assert len(seen) == 1

    def test_unsubscribe(self):
        log = EventLog()
        seen: list[EventRecord] = []
        unsubscribe = log.subscribe(seen.append)
        log.emit(1.0, "a", "x")
        unsubscribe()
        log.emit(2.0, "a", "y")
        assert len(seen) == 1

    def test_unsubscribe_twice_is_safe(self):
        log = EventLog()
        unsubscribe = log.subscribe(lambda record: None)
        unsubscribe()
        unsubscribe()

    def test_unsubscribing_during_callback_does_not_skip_siblings(self):
        # The classic mutate-while-iterating bug: a subscriber that
        # unsubscribes itself must not cause the *next* subscriber to be
        # skipped for this round.
        log = EventLog()
        seen: list[str] = []
        unsubscribers = []

        def first(record: EventRecord) -> None:
            seen.append("first")
            unsubscribers[0]()

        unsubscribers.append(log.subscribe(first))
        log.subscribe(lambda record: seen.append("second"))
        log.emit(1.0, "a", "x")
        assert seen == ["first", "second"]
        log.emit(2.0, "a", "y")
        assert seen == ["first", "second", "second"]

    def test_subscribing_during_callback_defers_to_next_emit(self):
        log = EventLog()
        seen: list[str] = []

        def late(record: EventRecord) -> None:
            seen.append("late")

        def first(record: EventRecord) -> None:
            seen.append("first")
            log.subscribe(late)

        log.subscribe(first)
        log.emit(1.0, "a", "x")
        assert seen == ["first"]
        log.emit(2.0, "a", "y")
        assert seen == ["first", "first", "late"]


class TestIndexedQueries:
    def _populated(self) -> EventLog:
        log = EventLog()
        log.emit(1.0, "keylime.verifier", "attestation.ok")
        log.emit(2.0, "keylime.verifier", "attestation.failed.policy")
        log.emit(3.0, "apt", "apt.upgraded")
        log.emit(4.0, "keylime.verifier", "attestation.ok")
        return log

    def test_by_kind_is_exact(self):
        log = self._populated()
        assert len(log.by_kind("attestation.ok")) == 2
        # Exact match, unlike select()'s prefix semantics.
        assert log.by_kind("attestation") == []
        assert log.by_kind("missing") == []

    def test_by_source_is_exact(self):
        log = self._populated()
        assert len(log.by_source("keylime.verifier")) == 3
        assert log.by_source("keylime") == []

    def test_by_kind_returns_a_copy(self):
        log = self._populated()
        log.by_kind("attestation.ok").clear()
        assert len(log.by_kind("attestation.ok")) == 2

    def test_records_between_inclusive(self):
        log = self._populated()
        assert [r.time for r in log.records_between(2.0, 3.0)] == [2.0, 3.0]
        assert [r.time for r in log.records_between(0.0, 10.0)] == [1.0, 2.0, 3.0, 4.0]
        assert log.records_between(5.0, 10.0) == []
        assert log.records_between(3.0, 2.0) == []

    def test_records_between_with_out_of_order_times(self):
        # The bisect fast path assumes monotone emission times; a log
        # with out-of-order records must still answer correctly.
        log = EventLog()
        log.emit(5.0, "a", "x")
        log.emit(1.0, "a", "y")
        log.emit(3.0, "a", "z")
        assert [r.time for r in log.records_between(1.0, 3.0)] == [1.0, 3.0]

    def test_records_between_duplicate_timestamps(self):
        log = EventLog()
        for _ in range(3):
            log.emit(2.0, "a", "x")
        assert len(log.records_between(2.0, 2.0)) == 3


class TestMatches:
    def test_matches_prefixes(self):
        record = EventRecord(1.0, "keylime.verifier", "attestation.ok")
        assert record.matches(source="keylime")
        assert record.matches(kind="attestation")
        assert not record.matches(source="apt")
        assert not record.matches(kind="policy")
