"""Tests for the perf observatory: trajectory store, noise-aware
regression detection, the unified bench harness, and the CLI surface.

The acceptance pair lives in ``TestCompareTrajectory``: a synthetic
trajectory with seeded measurement noise never flags, while an injected
2x slowdown on one metric always flags exactly that metric -- and a
clean same-seed rerun afterwards goes back to all-ok.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import time

import pytest

import repro.obs.perf as perf
from repro.common.errors import ConfigurationError
from repro.obs.perf import (
    DEFAULT_REL_FLOOR,
    DEFAULT_Z_THRESHOLD,
    PERF_SERIES,
    BenchMetric,
    BenchRecord,
    BenchSpec,
    SamplingProfiler,
    TrajectoryStore,
    capture_environment,
    classify_metric,
    clear_registry,
    compare_trajectory,
    diff_folds,
    get_bench,
    load_folds,
    load_trajectory,
    record_from_run,
    register_bench,
    registered_benches,
    render_fold_diff,
    trajectory_to_store,
    write_trajectory,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")

#: The benches ISSUE 9 requires migrated onto the harness.
MIGRATED = {
    "pipeline", "trace", "obs", "chaos",
    "tsdb", "saturation", "push", "policy_scale",
}


@pytest.fixture(autouse=True)
def _registry_guard():
    """Snapshot/restore the process-global bench registry per test."""
    snapshot = dict(perf._REGISTRY)
    yield
    perf._REGISTRY.clear()
    perf._REGISTRY.update(snapshot)


def make_spec(name="demo", metrics=None, modes=("smoke", "full")):
    metrics = metrics or [BenchMetric("wall_s", "s", "lower")]
    return BenchSpec(
        name=name,
        metrics=tuple(metrics),
        runner=lambda mode, seed: {"wall_s": 1.0},
        seed=f"{name}-seed",
        modes=tuple(modes),
    )


def make_record(
    bench="pipeline",
    mode="smoke",
    seed="seed-a",
    metrics=None,
    better=None,
    units=None,
    seq=None,
    profile=None,
):
    metrics = dict(metrics or {"wall_s": 1.0})
    return BenchRecord(
        bench=bench,
        mode=mode,
        seed=seed,
        metrics=metrics,
        units={k: (units or {}).get(k, "s") for k in metrics},
        better={k: (better or {}).get(k, "lower") for k in metrics},
        env={"python": "3.x", "smoke": mode == "smoke"},
        recorded_at=1000.0 + (seq or 0),
        profile=profile,
        seq=seq,
    )


def noisy_history(
    noise_seed,
    runs,
    base=None,
    amplitude=0.03,
    bench="pipeline",
    mode="smoke",
    seed="seed-a",
):
    """*runs* records whose metrics jitter within ±*amplitude*."""
    base = base or {"wall_s": 2.0, "eps": 500.0}
    rng = random.Random(noise_seed)
    records = []
    for index in range(runs):
        metrics = {
            name: value * (1.0 + rng.uniform(-amplitude, amplitude))
            for name, value in sorted(base.items())
        }
        records.append(make_record(
            bench=bench, mode=mode, seed=seed, metrics=metrics, seq=index,
        ))
    return records


class TestSpecAndRegistry:
    def test_metric_validates_better(self):
        with pytest.raises(ConfigurationError):
            BenchMetric("x", "s", "sideways")

    def test_spec_rejects_duplicate_metrics(self):
        with pytest.raises(ConfigurationError):
            make_spec(metrics=[
                BenchMetric("wall_s", "s", "lower"),
                BenchMetric("wall_s", "ms", "lower"),
            ])

    def test_spec_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            make_spec(modes=("smoke", "warp"))

    def test_register_is_replace_on_reregister(self):
        register_bench(
            "demo", [BenchMetric("a", "s", "lower")],
            lambda mode, seed: {"a": 1.0}, seed="s1",
        )
        register_bench(
            "demo", [BenchMetric("b", "s", "lower")],
            lambda mode, seed: {"b": 1.0}, seed="s2",
        )
        spec = get_bench("demo")
        assert spec is not None and spec.seed == "s2"
        assert [m.name for m in spec.metrics] == ["b"]
        assert sum(
            1 for s in registered_benches() if s.name == "demo"
        ) == 1


class TestRecordFromRun:
    def test_keeps_only_declared_metrics_and_stamps_mode_seed(self):
        spec = make_spec()
        record = record_from_run(
            spec, "smoke", {"wall_s": 1.5, "scratch": 9.0}, seed="override",
        )
        assert record.metrics == {"wall_s": 1.5}
        assert record.mode == "smoke"
        assert record.seed == "override"
        assert record.env["smoke"] is True
        assert record.units == {"wall_s": "s"}
        assert record.better == {"wall_s": "lower"}

    def test_default_seed_is_the_spec_seed(self):
        record = record_from_run(make_spec(), "full", {"wall_s": 1.0})
        assert record.seed == "demo-seed"
        assert record.env["smoke"] is False

    def test_rejects_non_finite(self):
        with pytest.raises(ConfigurationError):
            record_from_run(make_spec(), "smoke", {"wall_s": float("inf")})

    def test_rejects_unsupported_mode(self):
        with pytest.raises(ConfigurationError):
            record_from_run(
                make_spec(modes=("full",)), "smoke", {"wall_s": 1.0},
            )

    def test_rejects_empty_result(self):
        with pytest.raises(ConfigurationError):
            record_from_run(make_spec(), "smoke", {"scratch": 1.0})

    def test_environment_capture_shape(self):
        env = capture_environment(cwd=REPO_ROOT)
        assert set(env) >= {"python", "platform", "git_sha"}
        assert env["git_sha"]  # "unknown" at worst, never empty


class TestTrajectoryStore:
    def test_append_load_round_trips_exactly(self, tmp_path):
        path = str(tmp_path / "perf" / "trajectory.jsonl")
        store = TrajectoryStore(path)
        written = [
            make_record(metrics={"wall_s": 1.25, "eps": 400.0}),
            make_record(bench="tsdb", mode="full", profile="p.folds"),
            make_record(seed="seed-b", metrics={"wall_s": 0.5}),
        ]
        for record in written:
            store.append(record)
        assert [r.seq for r in written] == [0, 1, 2]
        loaded = TrajectoryStore(path).load()
        assert [r.to_record() for r in loaded] \
            == [r.to_record() for r in written]

    def test_write_trajectory_round_trips(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        records = noisy_history(1, 4)
        write_trajectory(path, records)
        assert [r.to_record() for r in load_trajectory(path)] \
            == [r.to_record() for r in records]

    def test_torn_tail_is_tolerated_and_counted(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        store = TrajectoryStore(path)
        for record in noisy_history(2, 3):
            store.append(record)
        with open(path, "r+", encoding="utf-8") as handle:
            whole = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(whole[:-20])  # tear the final line mid-JSON
        recovered = TrajectoryStore(path)
        records = recovered.load()
        assert len(records) == 2
        assert recovered.torn_lines == 1
        assert [r.seq for r in records] == [0, 1]

    def test_append_after_torn_tail_repairs_the_file(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        store = TrajectoryStore(path)
        for record in noisy_history(3, 2):
            store.append(record)
        with open(path, "r+", encoding="utf-8") as handle:
            whole = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(whole[:-15])  # torn tail, no trailing newline
        recovered = TrajectoryStore(path)
        recovered.load()
        appended = recovered.append(make_record(metrics={"wall_s": 9.0}))
        assert appended.seq == 1
        final = TrajectoryStore(path)
        records = final.load()
        assert final.torn_lines == 1  # the fragment stays, skipped
        assert [r.metrics["wall_s"] for r in records][-1] == 9.0
        assert [r.seq for r in records] == list(range(len(records)))

    def test_non_record_lines_are_ignored(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "bench_verdict"}) + "\n")
            handle.write(
                json.dumps(make_record(seq=0).to_record()) + "\n"
            )
        assert len(load_trajectory(path)) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_trajectory(str(tmp_path / "nope.jsonl")) == []


class TestTrajectoryToStore:
    def test_series_labels_and_run_axis(self):
        records = [
            make_record(metrics={"wall_s": 1.0, "eps": 100.0},
                        better={"eps": "higher"}, seq=0),
            make_record(metrics={"wall_s": 2.0, "eps": 150.0},
                        better={"eps": "higher"}, seq=1),
        ]
        store = trajectory_to_store(records)
        series = store.select(PERF_SERIES, bench="pipeline", metric="eps")
        assert len(series) == 1
        assert series[0].label("better") == "higher"
        assert series[0].label("mode") == "smoke"
        values = series[0].range_values(float("-inf"), float("inf"))
        assert [(point[0], point[1]) for point in values] \
            == [(0.0, 100.0), (1.0, 150.0)]


class TestClassifyMetric:
    def test_within_threshold_is_ok(self):
        status, median, noise, score, _ = classify_metric(
            1.04, [1.0, 1.01, 0.99, 1.0], "lower",
        )
        assert status == "ok"
        assert median == pytest.approx(1.0, rel=0.02)
        assert noise >= DEFAULT_REL_FLOOR * median
        assert abs(score) <= DEFAULT_Z_THRESHOLD

    def test_no_baseline_is_noisy(self):
        status, median, noise, score, reason = classify_metric(
            1.0, [], "lower",
        )
        assert status == "noisy"
        assert (median, noise, score) == (None, None, None)
        assert "no baseline" in reason

    def test_single_run_baseline_beyond_floor_is_noisy(self):
        status, _, _, _, reason = classify_metric(2.0, [1.0], "lower")
        assert status == "noisy"
        assert "single-run" in reason

    def test_unstable_baseline_is_noisy(self):
        status, _, _, _, reason = classify_metric(
            1000.0, [100.0, 300.0, 50.0, 260.0, 10.0], "lower",
        )
        assert status == "noisy"
        assert "MAD noise" in reason

    def test_lower_better_directions(self):
        baseline = [1.0, 1.01, 0.99, 1.0, 1.02]
        assert classify_metric(2.0, baseline, "lower")[0] == "regressed"
        assert classify_metric(0.5, baseline, "lower")[0] == "improved"

    def test_higher_better_directions(self):
        baseline = [1000.0, 1010.0, 990.0, 1000.0, 1005.0]
        assert classify_metric(500.0, baseline, "higher")[0] == "regressed"
        assert classify_metric(2000.0, baseline, "higher")[0] == "improved"

    def test_bit_identical_baseline_uses_relative_floor(self):
        # MAD = 0: sub-floor drift stays ok, beyond-floor drift flags.
        baseline = [100.0] * 5
        assert classify_metric(104.0, baseline, "lower")[0] == "ok"
        assert classify_metric(200.0, baseline, "lower")[0] == "regressed"

    def test_invalid_better_raises(self):
        with pytest.raises(ConfigurationError):
            classify_metric(1.0, [1.0], "sideways")


class TestCompareTrajectory:
    @pytest.mark.parametrize("noise_seed", range(6))
    def test_seeded_noise_never_flags(self, noise_seed):
        records = noisy_history(noise_seed, 8)
        result = compare_trajectory(records)
        assert {v.status for v in result.verdicts} == {"ok"}
        assert result.status == "ok"

    @pytest.mark.parametrize("noise_seed", range(6))
    def test_injected_2x_slowdown_flags_exactly_that_metric(
        self, noise_seed,
    ):
        records = noisy_history(noise_seed, 7)
        candidate = records[-1]
        candidate.metrics["wall_s"] *= 2.0  # the injected regression
        result = compare_trajectory(records)
        regressed = result.regressed
        assert [(v.bench, v.metric) for v in regressed] \
            == [("pipeline", "wall_s")]
        others = [v for v in result.verdicts if v.metric != "wall_s"]
        assert {v.status for v in others} == {"ok"}
        assert result.status == "regressed"
        verdict = regressed[0]
        assert verdict.delta_ratio == pytest.approx(1.0, abs=0.15)
        assert verdict.score is not None \
            and abs(verdict.score) > DEFAULT_Z_THRESHOLD

    @pytest.mark.parametrize("noise_seed", range(6))
    def test_clean_same_seed_rerun_reports_all_ok(self, noise_seed):
        # The acceptance pair's second half: drop the injected run,
        # rerun clean with the same seed, everything is ok again.
        records = noisy_history(noise_seed, 7)
        records[-1].metrics["wall_s"] *= 2.0
        clean = noisy_history(noise_seed, 8)[-1]
        clean.seq = len(records)
        result = compare_trajectory(records + [clean])
        statuses = {v.status for v in result.verdicts}
        assert "regressed" not in statuses
        assert "improved" not in statuses

    def test_improved_respects_better_direction(self):
        base = {"eps": 500.0}
        records = [
            make_record(metrics=dict(base), better={"eps": "higher"}, seq=i)
            for i in range(5)
        ]
        records.append(make_record(
            metrics={"eps": 1000.0}, better={"eps": "higher"}, seq=5,
        ))
        result = compare_trajectory(records)
        assert [v.status for v in result.verdicts] == ["improved"]

    def test_modes_never_mix(self):
        smoke = [
            make_record(mode="smoke", metrics={"wall_s": 1.0}, seq=i)
            for i in range(4)
        ]
        full = [
            make_record(mode="full", metrics={"wall_s": 10.0}, seq=4 + i)
            for i in range(4)
        ]
        result = compare_trajectory(smoke + full)
        assert {v.status for v in result.verdicts} == {"ok"}
        only_full = compare_trajectory(smoke + full, mode="full")
        assert {v.mode for v in only_full.verdicts} == {"full"}

    def test_baseline_window_is_bounded(self):
        # Ancient 10x-slower history outside the window must not
        # make the current steady state look improved.
        old = [
            make_record(metrics={"wall_s": 10.0}, seq=i) for i in range(5)
        ]
        recent = [
            make_record(metrics={"wall_s": 1.0}, seq=5 + i)
            for i in range(6)
        ]
        result = compare_trajectory(old + recent, baseline_runs=5)
        assert [v.status for v in result.verdicts] == ["ok"]

    def test_new_metric_without_history_is_noisy(self):
        records = [
            make_record(metrics={"wall_s": 1.0}, seq=0),
            make_record(metrics={"wall_s": 1.0}, seq=1),
            make_record(metrics={"wall_s": 1.0, "fresh": 5.0}, seq=2),
        ]
        result = compare_trajectory(records)
        by_metric = {v.metric: v for v in result.verdicts}
        assert by_metric["fresh"].status == "noisy"
        assert by_metric["wall_s"].status == "ok"

    def test_single_run_baseline_stays_advisory(self):
        records = [
            make_record(metrics={"wall_s": 1.0}, seq=0),
            make_record(metrics={"wall_s": 2.0}, seq=1),
        ]
        result = compare_trajectory(records)
        assert [v.status for v in result.verdicts] == ["noisy"]

    def test_seed_mismatch_is_reported(self):
        records = [
            make_record(seed="seed-a", seq=0),
            make_record(seed="seed-a", seq=1),
            make_record(seed="seed-b", seq=2),
        ]
        result = compare_trajectory(records)
        assert all(not v.baseline_seeds_match for v in result.verdicts)

    def test_summary_record_and_counts(self):
        records = noisy_history(0, 6)
        records[-1].metrics["wall_s"] *= 2.0
        result = compare_trajectory(records)
        summary = result.to_record()
        assert summary["type"] == "bench_compare"
        assert summary["status"] == "regressed"
        assert summary["counts"]["regressed"] == 1
        assert summary["regressed"][0]["metric"] == "wall_s"
        verdict_record = result.regressed[0].to_record()
        assert verdict_record["type"] == "bench_verdict"
        assert verdict_record["status"] == "regressed"

    def test_bad_baseline_runs_raises(self):
        with pytest.raises(ConfigurationError):
            compare_trajectory([], baseline_runs=0)


class TestSamplingProfiler:
    def test_profiles_a_busy_loop(self):
        profiler = SamplingProfiler(interval=0.001)
        deadline = time.perf_counter() + 0.2
        with profiler:
            while time.perf_counter() < deadline:
                sum(range(200))
        assert profiler.samples > 0
        folds = profiler.folds()
        assert folds
        assert any("test_perf" in stack for stack in folds)
        text = profiler.collapsed()
        assert load_folds(text) == folds

    def test_fold_diff_orders_by_magnitude(self):
        before = {"a;b": 10, "a;c": 5}
        after = {"a;b": 40, "a;c": 6, "a;d": 2}
        deltas = diff_folds(before, after)
        assert deltas[0][0] == "a;b" and deltas[0][1] == 30
        rendered = render_fold_diff(deltas, "base", "cand")
        assert "base" in rendered and "cand" in rendered
        assert "a;b" in rendered


class TestHarnessDiscovery:
    def _harness(self):
        import importlib.util

        name = "repro_bench_harness"
        import sys
        if name in sys.modules:
            return sys.modules[name]
        spec = importlib.util.spec_from_file_location(
            name, os.path.join(BENCH_DIR, "harness.py"),
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
        return module

    def test_discovery_finds_every_migrated_bench(self):
        harness = self._harness()
        specs = harness.discover(BENCH_DIR)
        names = {spec.name for spec in specs}
        assert MIGRATED <= names
        assert len(names) >= 8
        for spec in specs:
            assert spec.metrics, spec.name
            assert spec.seed, spec.name

    def test_run_benches_records_deterministic_tiny_bench(self, tmp_path):
        harness = self._harness()
        bench_dir = tmp_path / "benches"
        bench_dir.mkdir()
        (bench_dir / "bench_unit_tiny.py").write_text(
            "from repro.obs.perf import BenchMetric, register_bench\n"
            "def run_bench(mode, seed):\n"
            "    return {'value': float(len(seed)), 'extra': 7.0}\n"
            "register_bench('unit_tiny',\n"
            "    [BenchMetric('value', 'n', 'lower')],\n"
            "    run_bench, seed='tiny-seed')\n"
        )
        trajectory = str(tmp_path / "perf" / "trajectory.jsonl")
        lines = []
        for _ in range(2):
            records = harness.run_benches(
                names=["unit_tiny"],
                mode="smoke",
                trajectory_path=trajectory,
                bench_dir=str(bench_dir),
                log=lines.append,
            )
            assert len(records) == 1
        loaded = load_trajectory(trajectory)
        assert [r.seq for r in loaded] == [0, 1]
        # Determinism audit: same seed + mode => identical metrics,
        # and the undeclared 'extra' metric never leaks into records.
        assert loaded[0].metrics == loaded[1].metrics == {"value": 9.0}
        assert {r.seed for r in loaded} == {"tiny-seed"}
        assert {r.mode for r in loaded} == {"smoke"}
        assert all("git_sha" in r.env for r in loaded)
        assert any("unit_tiny" in line for line in lines)

    def test_run_benches_skips_unsupported_mode(self, tmp_path):
        harness = self._harness()
        bench_dir = tmp_path / "benches"
        bench_dir.mkdir()
        (bench_dir / "bench_unit_fullonly.py").write_text(
            "from repro.obs.perf import BenchMetric, register_bench\n"
            "register_bench('unit_fullonly',\n"
            "    [BenchMetric('value', 'n', 'lower')],\n"
            "    lambda mode, seed: {'value': 1.0},\n"
            "    seed='s', modes=('full',))\n"
        )
        lines = []
        records = harness.run_benches(
            names=["unit_fullonly"],
            mode="smoke",
            trajectory_path=str(tmp_path / "t.jsonl"),
            bench_dir=str(bench_dir),
            log=lines.append,
        )
        assert records == []
        assert any("skip unit_fullonly" in line for line in lines)

    def test_run_benches_profile_links_folds(self, tmp_path):
        harness = self._harness()
        bench_dir = tmp_path / "benches"
        bench_dir.mkdir()
        (bench_dir / "bench_unit_busy.py").write_text(
            "import time\n"
            "from repro.obs.perf import BenchMetric, register_bench\n"
            "def run_bench(mode, seed):\n"
            "    deadline = time.perf_counter() + 0.1\n"
            "    while time.perf_counter() < deadline:\n"
            "        sum(range(100))\n"
            "    return {'value': 1.0}\n"
            "register_bench('unit_busy',\n"
            "    [BenchMetric('value', 'n', 'lower')],\n"
            "    run_bench, seed='s')\n"
        )
        trajectory = str(tmp_path / "perf" / "trajectory.jsonl")
        records = harness.run_benches(
            names=["unit_busy"],
            mode="smoke",
            trajectory_path=trajectory,
            bench_dir=str(bench_dir),
            profile=True,
            profile_interval=0.001,
        )
        assert len(records) == 1
        assert records[0].profile is not None
        assert os.path.exists(records[0].profile)
        loaded = load_trajectory(trajectory)
        assert loaded[0].profile == records[0].profile


class TestCliBench:
    """End-to-end through ``repro.cli.main`` with a tiny bench dir."""

    @pytest.fixture()
    def bench_dir(self, tmp_path):
        directory = tmp_path / "benches"
        directory.mkdir()
        shutil.copy(
            os.path.join(BENCH_DIR, "harness.py"),
            directory / "harness.py",
        )
        (directory / "bench_e2e_tiny.py").write_text(
            "from repro.obs.perf import BenchMetric, register_bench\n"
            "def run_bench(mode, seed):\n"
            "    return {'wall_s': 2.0, 'eps': 500.0}\n"
            "register_bench('e2e_tiny',\n"
            "    [BenchMetric('wall_s', 's', 'lower'),\n"
            "     BenchMetric('eps', '/s', 'higher')],\n"
            "    run_bench, seed='e2e-seed')\n"
        )
        return directory

    def _main(self, argv):
        from repro.cli import main

        return main(argv)

    def test_run_list_compare_history_cycle(
        self, bench_dir, tmp_path, capsys,
    ):
        clear_registry()
        trajectory = str(tmp_path / "perf" / "trajectory.jsonl")
        run_argv = [
            "bench", "run", "--smoke", "--all",
            "--bench-dir", str(bench_dir), "--trajectory", trajectory,
        ]
        for _ in range(3):
            assert self._main(list(run_argv)) == 0
        capsys.readouterr()

        assert self._main([
            "bench", "list", "--json", "--bench-dir", str(bench_dir),
        ]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert [spec["name"] for spec in listed] == ["e2e_tiny"]
        assert listed[0]["modes"] == ["smoke", "full"]

        verdicts_path = str(tmp_path / "verdicts.jsonl")
        assert self._main([
            "bench", "compare", "--trajectory", trajectory,
            "--mode", "smoke", "--json", "--out", verdicts_path,
            "--fail-on-regression",
        ]) == 0
        summary = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert summary["status"] == "ok"
        assert summary["counts"]["regressed"] == 0
        with open(verdicts_path, encoding="utf-8") as handle:
            dumped = [json.loads(line) for line in handle]
        assert dumped[-1]["type"] == "bench_compare"
        assert all(
            record["type"] == "bench_verdict" for record in dumped[:-1]
        )

        assert self._main([
            "bench", "history", "--trajectory", trajectory,
        ]) == 0
        out = capsys.readouterr().out
        assert "e2e_tiny" in out and "wall_s" in out

    def test_injected_regression_gates_then_clean_rerun_passes(
        self, bench_dir, tmp_path, capsys,
    ):
        clear_registry()
        trajectory = str(tmp_path / "perf" / "trajectory.jsonl")
        run_argv = [
            "bench", "run", "--smoke", "--all",
            "--bench-dir", str(bench_dir), "--trajectory", trajectory,
        ]
        for _ in range(3):
            assert self._main(list(run_argv)) == 0

        # Inject a 2x slowdown on wall_s only, as a fourth record.
        store = TrajectoryStore(trajectory)
        records = store.load()
        slow = BenchRecord.from_record(records[-1].to_record())
        slow.seq = None
        slow.metrics["wall_s"] *= 2.0
        store.append(slow)
        capsys.readouterr()

        compare_argv = [
            "bench", "compare", "--trajectory", trajectory,
            "--mode", "smoke", "--fail-on-regression",
        ]
        assert self._main(list(compare_argv)) == 1
        out = capsys.readouterr().out
        assert "FAIL: 1 regressed metric(s)" in out
        assert "e2e_tiny/wall_s" in out
        assert out.count("regressed") >= 1
        assert "eps" in out  # the clean metric is still reported (ok)

        # Clean same-seed rerun: back to all ok, gate passes.
        assert self._main(list(run_argv)) == 0
        capsys.readouterr()
        assert self._main(list(compare_argv)) == 0
        out = capsys.readouterr().out
        assert "regressed=0" in out

    def test_empty_trajectory_fails_cleanly(self, tmp_path, capsys):
        assert self._main([
            "bench", "compare",
            "--trajectory", str(tmp_path / "missing.jsonl"),
        ]) == 1
        assert "no bench records" in capsys.readouterr().out
