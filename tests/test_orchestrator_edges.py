"""Edge-case tests for the update orchestrator and agent plumbing."""

import pytest

from repro.common.clock import days, hours
from repro.experiments.testbed import build_testbed

from tests.conftest import small_config


class TestOrchestratorOptions:
    def test_dedupe_disabled_keeps_old_digests(self):
        testbed = build_testbed(small_config("orch-nodedupe"))
        testbed.orchestrator.dedupe_after_update = False
        testbed.stream.generate_day(1)
        testbed.scheduler.clock.advance_to(days(2))
        report = testbed.orchestrator.run_cycle()
        assert report.deduped_digests == 0
        if report.apt_report.packages:
            package = report.apt_report.packages[0]
            if package.executables:
                path = package.executables[0].path
                # Old + new digest both retained.
                assert len(testbed.policy.digests_for(path)) >= 1

    def test_no_reboot_option_defers_kernel(self):
        from repro.distro.workload import ReleaseStreamConfig

        config = small_config("orch-noreboot")
        config.stream = ReleaseStreamConfig(
            mean_packages_per_day=2.0, sd_packages_per_day=1.0,
            mean_exec_files_per_package=4.0, kernel_release_every_days=1,
        )
        testbed = build_testbed(config)
        testbed.orchestrator.reboot_on_new_kernel = False
        old_kernel = testbed.machine.current_kernel
        testbed.stream.generate_day(1)
        testbed.scheduler.clock.advance_to(days(2))
        report = testbed.orchestrator.run_cycle()
        assert not report.rebooted
        assert testbed.machine.current_kernel == old_kernel
        assert testbed.machine.pending_kernel is not None
        # The policy already admits the pending kernel, so the later
        # (maintenance-window) reboot attests green.
        testbed.machine.reboot()
        assert testbed.poll().ok

    def test_empty_day_cycle_is_cheap_and_green(self):
        testbed = build_testbed(small_config("orch-empty"))
        testbed.scheduler.clock.advance_to(days(1))
        report = testbed.orchestrator.run_cycle()
        assert report.apt_report.is_empty
        assert report.policy_report.entries_added == 0
        assert testbed.poll().ok

    def test_cycle_report_day_matches_clock(self):
        testbed = build_testbed(small_config("orch-day"))
        testbed.scheduler.clock.advance_to(days(5) + hours(5))
        report = testbed.orchestrator.run_cycle()
        assert report.day == 5

    def test_schedule_cycles_labels_and_cadence(self):
        testbed = build_testbed(small_config("orch-cadence"))
        for day in range(1, 9):
            testbed.stream.generate_day(day)
        testbed.orchestrator.schedule_cycles(start_day=1, n_cycles=4, cadence_days=2)
        testbed.scheduler.run_until(days(9))
        assert [report.day for report in testbed.orchestrator.reports] == [1, 3, 5, 7]


class TestAgentSelection:
    def test_custom_pcr_selection_always_includes_ima_pcr(self):
        testbed = build_testbed(small_config("agent-sel"))
        evidence = testbed.agent.attest("n", pcr_selection=[0, 7])
        assert 10 in evidence.quote.pcr_values
        assert 0 in evidence.quote.pcr_values

    def test_default_selection_is_pcr10_only(self):
        testbed = build_testbed(small_config("agent-sel2"))
        evidence = testbed.agent.attest("n")
        assert set(evidence.quote.pcr_values) == {10}

    def test_negative_offset_treated_as_full_log(self):
        testbed = build_testbed(small_config("agent-sel3"))
        evidence = testbed.agent.attest("n", offset=-5)
        assert evidence.offset == 0


class TestTestbedPlumbing:
    def test_new_policy_failures_window(self):
        testbed = build_testbed(small_config("plumbing"))
        testbed.poll()
        start = testbed.scheduler.clock.now
        testbed.machine.install_file("/usr/bin/evil", b"x", executable=True)
        testbed.machine.exec_file("/usr/bin/evil")
        testbed.poll()
        failures = testbed.new_policy_failures(since=start)
        assert [f.policy_failure.path for f in failures] == ["/usr/bin/evil"]
        assert testbed.new_policy_failures(since=testbed.scheduler.clock.now + 1) == []
