"""Tests for the serialised agent<->verifier channel."""

import json

import pytest

from repro.common.errors import IntegrityError
from repro.keylime.transport import (
    JsonTransportAgent,
    NegotiationReply,
    PushVerdict,
    challenge_from_json,
    challenge_to_json,
    evidence_from_json,
    evidence_to_json,
    negotiation_from_json,
    negotiation_reply_from_json,
    negotiation_reply_to_json,
    negotiation_to_json,
    quote_from_dict,
    quote_to_dict,
    submission_from_json,
    submission_to_json,
    verdict_from_json,
    verdict_to_json,
)
from repro.keylime.verifier import FailureKind
from repro.obs import runtime as obs_runtime

from tests.conftest import small_config
from repro.experiments.testbed import build_testbed


@pytest.fixture()
def testbed():
    return build_testbed(small_config("transport"))


class TestSerialisation:
    def test_quote_roundtrip(self, testbed):
        quote = testbed.agent.attest("nonce").quote
        restored = quote_from_dict(quote_to_dict(quote))
        assert restored == quote

    def test_evidence_roundtrip(self, testbed):
        testbed.machine.exec_file("/usr/bin/ls")
        evidence = testbed.agent.attest("nonce")
        restored = evidence_from_json(evidence_to_json(evidence))
        assert restored == evidence

    def test_malformed_json_rejected(self):
        with pytest.raises(IntegrityError):
            evidence_from_json("{not json")

    def test_missing_field_rejected(self, testbed):
        evidence = testbed.agent.attest("nonce")
        payload = json.loads(evidence_to_json(evidence))
        del payload["quote"]["signature"]
        with pytest.raises(IntegrityError):
            evidence_from_json(json.dumps(payload))

    def test_non_hex_signature_rejected(self, testbed):
        evidence = testbed.agent.attest("nonce")
        payload = json.loads(evidence_to_json(evidence))
        payload["quote"]["signature"] = "zz-not-hex"
        with pytest.raises(IntegrityError):
            evidence_from_json(json.dumps(payload))


class TestChallengeSerialisation:
    def test_roundtrip(self):
        blob = challenge_to_json(
            "abc123", offset=7, pcr_selection=(10,),
            traceparent="00-" + "1" * 32 + "-" + "2" * 16 + "-01",
        )
        challenge = challenge_from_json(blob)
        assert challenge.nonce == "abc123"
        assert challenge.offset == 7
        assert challenge.pcr_selection == (10,)
        assert challenge.traceparent == (
            "00-" + "1" * 32 + "-" + "2" * 16 + "-01"
        )

    def test_defaults_roundtrip(self):
        challenge = challenge_from_json(challenge_to_json("n"))
        assert challenge.offset == 0
        assert challenge.pcr_selection is None
        assert challenge.traceparent is None

    @pytest.mark.parametrize("blob", [
        "{not json",
        json.dumps([1, 2]),
        json.dumps({"offset": 0}),          # missing nonce
        json.dumps({"nonce": 5}),           # nonce not a string
        json.dumps({"nonce": "n", "offset": "x"}),
    ])
    def test_malformed_challenge_rejected(self, blob):
        with pytest.raises(IntegrityError):
            challenge_from_json(blob)

    def test_malformed_traceparent_is_not_an_integrity_failure(self):
        """The traceparent is observability metadata, never a gate."""
        payload = json.loads(challenge_to_json("n"))
        payload["traceparent"] = 12345  # wrong type, still decodes
        challenge = challenge_from_json(json.dumps(payload))
        assert challenge.nonce == "n"
        assert challenge.traceparent is None


class TestTransportAgent:
    def test_attestation_works_across_the_wire(self, testbed):
        proxy = JsonTransportAgent(testbed.agent)
        slot = testbed.verifier._slot(testbed.agent_id)
        slot.agent = proxy
        assert testbed.poll().ok
        assert proxy.bytes_transferred > 0

    def test_detection_works_across_the_wire(self, testbed):
        proxy = JsonTransportAgent(testbed.agent)
        testbed.verifier._slot(testbed.agent_id).agent = proxy
        assert testbed.poll().ok
        testbed.machine.install_file("/usr/bin/evil", b"x", executable=True)
        testbed.machine.exec_file("/usr/bin/evil")
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].policy_failure.path == "/usr/bin/evil"

    def test_mitm_nonce_swap_detected(self, testbed):
        """A man-in-the-middle rewriting the nonce field is caught."""

        def mitm(blob: str) -> str:
            payload = json.loads(blob)
            payload["quote"]["nonce"] = "0" * 40
            return json.dumps(payload)

        proxy = JsonTransportAgent(testbed.agent, channel=mitm)
        testbed.verifier._slot(testbed.agent_id).agent = proxy
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].kind is FailureKind.INVALID_QUOTE

    def test_mitm_log_edit_detected(self, testbed):
        """Rewriting a log line in transit breaks the replay."""
        testbed.machine.exec_file("/usr/bin/ls")

        def mitm(blob: str) -> str:
            payload = json.loads(blob)
            payload["ima_log"] = [
                line.replace("/usr/bin/ls", "/usr/bin/cp")
                for line in payload["ima_log"]
            ]
            return json.dumps(payload)

        proxy = JsonTransportAgent(testbed.agent, channel=mitm)
        testbed.verifier._slot(testbed.agent_id).agent = proxy
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].kind in (
            FailureKind.LOG_TAMPERED, FailureKind.PCR_MISMATCH,
        )

    def test_mitm_signature_corruption_detected(self, testbed):
        def mitm(blob: str) -> str:
            payload = json.loads(blob)
            signature = payload["quote"]["signature"]
            payload["quote"]["signature"] = ("00" if signature[:2] != "00" else "11") + signature[2:]
            return json.dumps(payload)

        proxy = JsonTransportAgent(testbed.agent, channel=mitm)
        testbed.verifier._slot(testbed.agent_id).agent = proxy
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].kind is FailureKind.INVALID_QUOTE

    def test_honest_channel_is_transparent(self, testbed):
        """With no tampering, wire and direct attestation agree."""
        direct = testbed.agent.attest("same-nonce")
        proxy = JsonTransportAgent(testbed.agent)
        # Same nonce and offset: identical evidence either way (the
        # TPM clock tick is monotonic with machine time, unchanged here).
        via_wire = proxy.attest("same-nonce")
        assert via_wire.ima_log_lines == direct.ima_log_lines
        assert via_wire.quote.pcr_values == direct.quote.pcr_values

    def test_request_channel_nonce_tamper_detected(self, testbed):
        """Tampering the challenge leg makes the agent quote the wrong
        nonce, which the verifier's freshness check catches."""

        def mitm(blob: str) -> str:
            payload = json.loads(blob)
            payload["nonce"] = "f" * 40
            return json.dumps(payload)

        proxy = JsonTransportAgent(testbed.agent, request_channel=mitm)
        testbed.verifier._slot(testbed.agent_id).agent = proxy
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].kind is FailureKind.INVALID_QUOTE

    def test_bytes_counted_on_both_legs(self, testbed):
        proxy = JsonTransportAgent(testbed.agent)
        testbed.verifier._slot(testbed.agent_id).agent = proxy
        with obs_runtime.session() as telemetry:
            assert testbed.poll().ok
            response_bytes = telemetry.registry.get(
                "transport_bytes_total"
            ).labels(direction="response").value
            request_bytes = telemetry.registry.get(
                "transport_bytes_total"
            ).labels(direction="request").value
            rounds = telemetry.registry.get(
                "transport_roundtrips_total"
            ).value
        assert request_bytes > 0 and response_bytes > 0
        assert rounds == 1
        # bytes_transferred is the wire total: both legs, not just the
        # evidence response.
        assert proxy.bytes_transferred == request_bytes + response_bytes
        assert proxy.bytes_transferred > response_bytes


class TestDecodeRobustnessSweep:
    """Exhaustive corruption sweep over the wire decoders.

    The regression net for the latent decode bugs: for *every* byte
    offset of a valid blob -- substitution, truncation, or raw byte
    garbage -- the decoder must either still decode (the corruption hit
    an ignorable field, e.g. the traceparent) or raise
    :class:`IntegrityError`.  It must never leak a bare ``KeyError`` /
    ``TypeError`` / ``UnicodeDecodeError`` / ``OverflowError`` for some
    offsets and an ``IntegrityError`` for others: the chaos layer's
    classifier treats anything else as an infrastructure crash.
    """

    #: Substitution characters chosen to break JSON structure, string
    #: delimiters, hex fields, and numeric fields respectively.
    _MUTATIONS = ('}', '"', 'z', '9')

    @staticmethod
    def _decodes_or_integrity_error(decode, blob, context):
        try:
            decode(blob)
        except IntegrityError:
            pass
        except Exception as exc:  # pragma: no cover - the failure net
            raise AssertionError(
                f"{context}: decoder leaked {type(exc).__name__}: {exc}"
            ) from exc

    def _sweep(self, decode, blob: str):
        for offset in range(len(blob)):
            for char in self._MUTATIONS:
                if blob[offset] == char:
                    continue
                mutated = blob[:offset] + char + blob[offset + 1:]
                self._decodes_or_integrity_error(
                    decode, mutated, f"substitute {char!r} at byte {offset}"
                )
            self._decodes_or_integrity_error(
                decode, blob[:offset], f"truncate at byte {offset}"
            )

    def test_challenge_corrupt_at_every_byte_offset(self):
        blob = challenge_to_json(
            "abc123", offset=7, pcr_selection=(0, 10),
            traceparent="00-" + "1" * 32 + "-" + "2" * 16 + "-01",
        )
        self._sweep(challenge_from_json, blob)

    def test_evidence_corrupt_at_every_byte_offset(self, testbed):
        testbed.machine.exec_file("/usr/bin/ls")
        blob = evidence_to_json(testbed.agent.attest("nonce"))
        self._sweep(evidence_from_json, blob)

    @pytest.mark.parametrize("payload", [
        b"\xff\xfe not utf-8 \x80\x81",
        b"\x00" * 16,
        bytes(range(256)),
    ])
    def test_raw_byte_garbage_is_an_integrity_error(self, payload):
        """A real channel hands the receiver bytes; invalid UTF-8 must
        surface as a payload integrity failure, not UnicodeDecodeError."""
        with pytest.raises(IntegrityError):
            evidence_from_json(payload)
        with pytest.raises(IntegrityError):
            challenge_from_json(payload)

    @pytest.mark.parametrize("offset", ["Infinity", "-Infinity", "NaN", -1, 1e400])
    def test_hostile_challenge_offsets_rejected(self, offset):
        """json accepts Infinity/NaN; int() of those raises Overflow /
        ValueError, and negatives would index backwards into the log --
        all must decode-fail as IntegrityError."""
        payload = json.loads(challenge_to_json("n"))
        payload["offset"] = offset
        with pytest.raises(IntegrityError):
            challenge_from_json(json.dumps(payload))

    @pytest.mark.parametrize("field,value", [
        ("clock", "Infinity"),
        ("reset_count", "NaN"),
        ("reset_count", -3),
        ("restart_count", "-Infinity"),
        ("signature", "abc"),       # odd-length hex
        ("selection", [1, "x"]),
        ("pcr_values", [1, 2, 3]),  # list where dict expected
    ])
    def test_hostile_quote_fields_rejected(self, testbed, field, value):
        evidence = testbed.agent.attest("nonce")
        payload = json.loads(evidence_to_json(evidence))
        payload["quote"][field] = value
        with pytest.raises(IntegrityError):
            evidence_from_json(json.dumps(payload))

    def test_hostile_ima_log_shapes_rejected(self, testbed):
        evidence = testbed.agent.attest("nonce")
        for bad_log in ({"a": 1}, "one big string", 42):
            payload = json.loads(evidence_to_json(evidence))
            payload["ima_log"] = bad_log
            with pytest.raises(IntegrityError):
                evidence_from_json(json.dumps(payload))


class TestPushFrameSerialisation:
    """The push exchange's four frames: strict decode, loud rejection."""

    def _negotiation_blob(self, testbed):
        return negotiation_to_json(
            testbed.agent_id, testbed.agent.capabilities(),
            traceparent="00-" + "1" * 32 + "-" + "2" * 16 + "-01",
        )

    def _reply_blob(self, testbed=None):
        return negotiation_reply_to_json(NegotiationReply(
            session_id="ps-abc", nonce="f" * 40, offset=7,
            pcr_selection=(0, 10), algorithm="sha256", expires_at=90.0,
        ))

    def _submission_blob(self, testbed):
        return submission_to_json(
            "ps-abc", testbed.agent_id, testbed.agent.attest("n" * 40)
        )

    def _verdict_blob(self, testbed=None):
        return verdict_to_json(PushVerdict(
            session_id="ps-abc", ok=False, state="failed",
            entries_processed=3, next_offset=12,
            failures=("not_in_policy",),
        ))

    def test_negotiation_roundtrip(self, testbed):
        request = negotiation_from_json(self._negotiation_blob(testbed))
        assert request.agent_id == testbed.agent_id
        assert request.capabilities == testbed.agent.capabilities()
        assert request.traceparent is not None

    def test_reply_roundtrip(self):
        reply = negotiation_reply_from_json(self._reply_blob())
        assert reply.session_id == "ps-abc"
        assert reply.pcr_selection == (0, 10)
        assert reply.expires_at == 90.0

    def test_submission_roundtrip(self, testbed):
        evidence = testbed.agent.attest("n" * 40)
        submission = submission_from_json(
            submission_to_json("ps-abc", testbed.agent_id, evidence)
        )
        assert submission.session_id == "ps-abc"
        assert submission.evidence == evidence

    def test_verdict_roundtrip(self):
        verdict = verdict_from_json(self._verdict_blob())
        assert verdict.ok is False
        assert verdict.failures == ("not_in_policy",)

    @pytest.mark.parametrize("codec,maker", [
        (negotiation_from_json, "_negotiation_blob"),
        (negotiation_reply_from_json, "_reply_blob"),
        (submission_from_json, "_submission_blob"),
        (verdict_from_json, "_verdict_blob"),
    ])
    def test_unknown_fields_rejected(self, testbed, codec, maker):
        """A frame carrying fields the receiver never asked for is
        hostile, not extensible: reject, don't silently drop."""
        payload = json.loads(getattr(self, maker)(testbed))
        payload["smuggled"] = True
        with pytest.raises(IntegrityError, match="unknown field"):
            codec(json.dumps(payload))

    @pytest.mark.parametrize("codec_name,field,value", [
        ("reply", "offset", -1),
        ("reply", "offset", 1 << 41),
        ("reply", "offset", "Infinity"),
        ("reply", "expires_at", "NaN"),
        ("verdict", "next_offset", -5),
        ("verdict", "next_offset", 1e400),
        ("verdict", "entries_processed", "-Infinity"),
        ("negotiation", "log_length", -1),
        ("negotiation", "boot_count", 1 << 41),
    ])
    def test_hostile_numeric_fields_rejected(
        self, testbed, codec_name, field, value
    ):
        codecs = {
            "reply": (negotiation_reply_from_json, self._reply_blob()),
            "verdict": (verdict_from_json, self._verdict_blob()),
            "negotiation": (
                negotiation_from_json, self._negotiation_blob(testbed)
            ),
        }
        codec, blob = codecs[codec_name]
        payload = json.loads(blob)
        payload[field] = value
        with pytest.raises(IntegrityError):
            codec(json.dumps(payload))

    @pytest.mark.parametrize("algorithms", [[], "sha256", 42, None])
    def test_hostile_algorithm_lists_rejected(self, testbed, algorithms):
        payload = json.loads(self._negotiation_blob(testbed))
        payload["hash_algorithms"] = algorithms
        with pytest.raises(IntegrityError):
            negotiation_from_json(json.dumps(payload))

    @pytest.mark.parametrize("ok", ["true", 1, None])
    def test_non_boolean_verdict_ok_rejected(self, ok):
        payload = json.loads(self._verdict_blob())
        payload["ok"] = ok
        with pytest.raises(IntegrityError):
            verdict_from_json(json.dumps(payload))

    def test_submission_evidence_is_strict(self, testbed):
        """Strictness recurses: junk inside the nested evidence bundle
        is caught even though the outer frame is intact."""
        payload = json.loads(self._submission_blob(testbed))
        payload["evidence"]["quote"]["reset_count"] = "NaN"
        with pytest.raises(IntegrityError):
            submission_from_json(json.dumps(payload))
        payload = json.loads(self._submission_blob(testbed))
        payload["evidence"]["extra"] = 1
        with pytest.raises(IntegrityError):
            submission_from_json(json.dumps(payload))

    @pytest.mark.parametrize("payload", [
        b"\xff\xfe not utf-8 \x80\x81",
        b"\x00" * 16,
        bytes(range(256)),
    ])
    def test_raw_byte_garbage_is_an_integrity_error(self, payload):
        for codec in (
            negotiation_from_json, negotiation_reply_from_json,
            submission_from_json, verdict_from_json,
        ):
            with pytest.raises(IntegrityError):
                codec(payload)


class TestPushFrameCorruptionSweep:
    """The every-byte-offset sweep, extended to the push frames.

    Reuses the sweep machinery without inheriting (subclassing would
    collect the pull-frame sweeps a second time).
    """

    _MUTATIONS = TestDecodeRobustnessSweep._MUTATIONS
    _decodes_or_integrity_error = staticmethod(
        TestDecodeRobustnessSweep._decodes_or_integrity_error
    )
    _sweep = TestDecodeRobustnessSweep._sweep

    def test_negotiation_corrupt_at_every_byte_offset(self, testbed):
        blob = negotiation_to_json(
            testbed.agent_id, testbed.agent.capabilities(),
            traceparent="00-" + "1" * 32 + "-" + "2" * 16 + "-01",
        )
        self._sweep(negotiation_from_json, blob)

    def test_negotiation_reply_corrupt_at_every_byte_offset(self):
        blob = negotiation_reply_to_json(NegotiationReply(
            session_id="ps-abc", nonce="f" * 40, offset=7,
            pcr_selection=(0, 10), algorithm="sha256", expires_at=90.0,
        ))
        self._sweep(negotiation_reply_from_json, blob)

    def test_submission_corrupt_at_every_byte_offset(self, testbed):
        testbed.machine.exec_file("/usr/bin/ls")
        blob = submission_to_json(
            "ps-abc", testbed.agent_id, testbed.agent.attest("n" * 40)
        )
        self._sweep(submission_from_json, blob)

    def test_verdict_corrupt_at_every_byte_offset(self):
        blob = verdict_to_json(PushVerdict(
            session_id="ps-abc", ok=True, state="attesting",
            entries_processed=3, next_offset=12,
        ))
        self._sweep(verdict_from_json, blob)


class TestWireTracePropagation:
    """The traceparent field joins agent spans across the wire."""

    def _wire_poll(self, testbed, request_channel=None):
        proxy = JsonTransportAgent(
            testbed.agent, request_channel=request_channel
        )
        testbed.verifier._slot(testbed.agent_id).agent = proxy
        return testbed.poll()

    def test_agent_spans_join_the_poll_trace(self, testbed):
        with obs_runtime.session() as telemetry:
            assert self._wire_poll(testbed).ok
            root = telemetry.tracer.last_trace()
        assert root.name == "verifier.poll"
        attest = root.find("agent.attest")
        assert attest is not None
        challenge = root.find("verifier.challenge")
        assert attest.parent_id == challenge.span_id
        assert attest.trace_id == root.trace_id
        assert "traceparent.resolved" not in attest.attributes

    def test_tampered_traceparent_detaches_but_does_not_fail(self, testbed):
        """A rewritten traceparent corrupts observability, not
        verification: the poll still passes, the agent spans become
        detached roots flagged as unresolved."""

        def mitm(blob: str) -> str:
            payload = json.loads(blob)
            payload["traceparent"] = "00-" + "d" * 32 + "-" + "d" * 16 + "-01"
            return json.dumps(payload)

        with obs_runtime.session() as telemetry:
            assert self._wire_poll(testbed, request_channel=mitm).ok
            roots = list(telemetry.tracer.roots)
        poll = next(r for r in roots if r.name == "verifier.poll")
        assert poll.find("agent.attest") is None
        detached = next(r for r in roots if r.name == "agent.attest")
        assert detached.attributes["traceparent.resolved"] is False
        assert detached.trace_id != poll.trace_id

    def test_stripped_traceparent_detaches(self, testbed):
        def strip(blob: str) -> str:
            payload = json.loads(blob)
            payload.pop("traceparent", None)
            return json.dumps(payload)

        with obs_runtime.session() as telemetry:
            assert self._wire_poll(testbed, request_channel=strip).ok
            roots = list(telemetry.tracer.roots)
        detached = next(r for r in roots if r.name == "agent.attest")
        assert detached.attributes["traceparent.resolved"] is False

    def test_unobserved_wire_sends_no_traceparent(self, testbed):
        """With telemetry off, the challenge omits the header entirely."""
        seen = []

        def record(blob: str) -> str:
            seen.append(json.loads(blob))
            return blob

        assert self._wire_poll(testbed, request_channel=record).ok
        assert seen and seen[0]["traceparent"] is None
