"""Tests for the serialised agent<->verifier channel."""

import json

import pytest

from repro.common.errors import IntegrityError
from repro.keylime.transport import (
    JsonTransportAgent,
    evidence_from_json,
    evidence_to_json,
    quote_from_dict,
    quote_to_dict,
)
from repro.keylime.verifier import FailureKind

from tests.conftest import small_config
from repro.experiments.testbed import build_testbed


@pytest.fixture()
def testbed():
    return build_testbed(small_config("transport"))


class TestSerialisation:
    def test_quote_roundtrip(self, testbed):
        quote = testbed.agent.attest("nonce").quote
        restored = quote_from_dict(quote_to_dict(quote))
        assert restored == quote

    def test_evidence_roundtrip(self, testbed):
        testbed.machine.exec_file("/usr/bin/ls")
        evidence = testbed.agent.attest("nonce")
        restored = evidence_from_json(evidence_to_json(evidence))
        assert restored == evidence

    def test_malformed_json_rejected(self):
        with pytest.raises(IntegrityError):
            evidence_from_json("{not json")

    def test_missing_field_rejected(self, testbed):
        evidence = testbed.agent.attest("nonce")
        payload = json.loads(evidence_to_json(evidence))
        del payload["quote"]["signature"]
        with pytest.raises(IntegrityError):
            evidence_from_json(json.dumps(payload))

    def test_non_hex_signature_rejected(self, testbed):
        evidence = testbed.agent.attest("nonce")
        payload = json.loads(evidence_to_json(evidence))
        payload["quote"]["signature"] = "zz-not-hex"
        with pytest.raises(IntegrityError):
            evidence_from_json(json.dumps(payload))


class TestTransportAgent:
    def test_attestation_works_across_the_wire(self, testbed):
        proxy = JsonTransportAgent(testbed.agent)
        slot = testbed.verifier._slot(testbed.agent_id)
        slot.agent = proxy
        assert testbed.poll().ok
        assert proxy.bytes_transferred > 0

    def test_detection_works_across_the_wire(self, testbed):
        proxy = JsonTransportAgent(testbed.agent)
        testbed.verifier._slot(testbed.agent_id).agent = proxy
        assert testbed.poll().ok
        testbed.machine.install_file("/usr/bin/evil", b"x", executable=True)
        testbed.machine.exec_file("/usr/bin/evil")
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].policy_failure.path == "/usr/bin/evil"

    def test_mitm_nonce_swap_detected(self, testbed):
        """A man-in-the-middle rewriting the nonce field is caught."""

        def mitm(blob: str) -> str:
            payload = json.loads(blob)
            payload["quote"]["nonce"] = "0" * 40
            return json.dumps(payload)

        proxy = JsonTransportAgent(testbed.agent, channel=mitm)
        testbed.verifier._slot(testbed.agent_id).agent = proxy
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].kind is FailureKind.INVALID_QUOTE

    def test_mitm_log_edit_detected(self, testbed):
        """Rewriting a log line in transit breaks the replay."""
        testbed.machine.exec_file("/usr/bin/ls")

        def mitm(blob: str) -> str:
            payload = json.loads(blob)
            payload["ima_log"] = [
                line.replace("/usr/bin/ls", "/usr/bin/cp")
                for line in payload["ima_log"]
            ]
            return json.dumps(payload)

        proxy = JsonTransportAgent(testbed.agent, channel=mitm)
        testbed.verifier._slot(testbed.agent_id).agent = proxy
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].kind in (
            FailureKind.LOG_TAMPERED, FailureKind.PCR_MISMATCH,
        )

    def test_mitm_signature_corruption_detected(self, testbed):
        def mitm(blob: str) -> str:
            payload = json.loads(blob)
            signature = payload["quote"]["signature"]
            payload["quote"]["signature"] = ("00" if signature[:2] != "00" else "11") + signature[2:]
            return json.dumps(payload)

        proxy = JsonTransportAgent(testbed.agent, channel=mitm)
        testbed.verifier._slot(testbed.agent_id).agent = proxy
        result = testbed.poll()
        assert not result.ok
        assert result.failures[0].kind is FailureKind.INVALID_QUOTE

    def test_honest_channel_is_transparent(self, testbed):
        """With no tampering, wire and direct attestation agree."""
        direct = testbed.agent.attest("same-nonce")
        proxy = JsonTransportAgent(testbed.agent)
        # Same nonce and offset: identical evidence either way (the
        # TPM clock tick is monotonic with machine time, unchanged here).
        via_wire = proxy.attest("same-nonce")
        assert via_wire.ima_log_lines == direct.ima_log_lines
        assert via_wire.quote.pcr_values == direct.quote.pcr_values
