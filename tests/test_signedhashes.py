"""Tests for maintainer-signed package hash manifests."""

import dataclasses

import pytest

from repro.common.errors import IntegrityError
from repro.common.rng import SeededRng
from repro.distro.package import Package, PackageFile, Priority, make_kernel_package
from repro.dynpolicy.costmodel import CostModelConfig, GeneratorCostModel
from repro.dynpolicy.signedhashes import (
    ManifestAuthority,
    SignedManifest,
    merge_signed_manifests,
    verify_manifest,
)
from repro.keylime.policy import RuntimePolicy


@pytest.fixture(scope="module")
def authority() -> ManifestAuthority:
    return ManifestAuthority("Canonical", SeededRng("manifest-tests"))


def _pkg(name: str = "tool", version: str = "1.0") -> Package:
    return Package(
        name=name, version=version, priority=Priority.OPTIONAL,
        files=(
            PackageFile(f"/usr/bin/{name}", True),
            PackageFile(f"/usr/share/doc/{name}", False),
        ),
    )


class TestSigning:
    def test_manifest_covers_executables_only(self, authority):
        manifest = authority.sign_package(_pkg())
        assert set(manifest.measurements) == {"/usr/bin/tool"}

    def test_manifest_verifies(self, authority):
        manifest = authority.sign_package(_pkg())
        verify_manifest(manifest, authority.public_key)

    def test_wrong_key_rejected(self, authority):
        other = ManifestAuthority("Rogue", SeededRng("rogue-authority"))
        manifest = authority.sign_package(_pkg())
        with pytest.raises(IntegrityError):
            verify_manifest(manifest, other.public_key)

    def test_tampered_measurement_rejected(self, authority):
        manifest = authority.sign_package(_pkg())
        forged = dataclasses.replace(
            manifest, measurements={"/usr/bin/tool": "ab" * 32}
        )
        with pytest.raises(IntegrityError):
            verify_manifest(forged, authority.public_key)

    def test_tampered_version_rejected(self, authority):
        manifest = authority.sign_package(_pkg())
        forged = dataclasses.replace(manifest, version="6.6.6")
        with pytest.raises(IntegrityError):
            verify_manifest(forged, authority.public_key)

    def test_sign_all(self, authority):
        manifests = authority.sign_all([_pkg("a"), _pkg("b")])
        assert [manifest.package for manifest in manifests] == ["a", "b"]


class TestMerge:
    def test_merge_valid_manifests(self, authority):
        policy = RuntimePolicy()
        manifests = authority.sign_all([_pkg("a"), _pkg("b")])
        added, rejected = merge_signed_manifests(
            policy, manifests, authority.public_key, set()
        )
        assert added == 2
        assert rejected == []
        assert policy.covers_path("/usr/bin/a")

    def test_merged_digests_match_package_contents(self, authority):
        policy = RuntimePolicy()
        package = _pkg("a")
        merge_signed_manifests(
            policy, [authority.sign_package(package)], authority.public_key, set()
        )
        assert policy.digests_for("/usr/bin/a") == (package.sha256_of("/usr/bin/a"),)

    def test_forged_manifest_rejected_not_merged(self, authority):
        policy = RuntimePolicy()
        good = authority.sign_package(_pkg("a"))
        bad = dataclasses.replace(
            authority.sign_package(_pkg("b")),
            measurements={"/usr/bin/b": "ab" * 32},
        )
        added, rejected = merge_signed_manifests(
            policy, [good, bad], authority.public_key, set()
        )
        assert added == 1
        assert [manifest.package for manifest in rejected] == ["b"]
        assert not policy.covers_path("/usr/bin/b")

    def test_kernel_modules_filtered(self, authority):
        policy = RuntimePolicy()
        kernel = make_kernel_package("6.0.0-new", module_count=2)
        manifest = authority.sign_package(kernel.package)
        added, rejected = merge_signed_manifests(
            policy, [manifest], authority.public_key, {"5.15.0-old"}
        )
        assert rejected == []
        assert not any(
            path.startswith("/lib/modules/6.0.0-new") for path in policy.digests
        )

    def test_allowed_kernel_modules_merged(self, authority):
        policy = RuntimePolicy()
        kernel = make_kernel_package("5.15.0-old", module_count=2)
        merge_signed_manifests(
            policy, [authority.sign_package(kernel.package)],
            authority.public_key, {"5.15.0-old"},
        )
        assert any(
            path.startswith("/lib/modules/5.15.0-old") for path in policy.digests
        )


class TestCostModel:
    def test_manifests_much_cheaper_than_hashing(self):
        model = GeneratorCostModel(CostModelConfig(jitter_sigma=0.0))
        packages = [_pkg(f"p{i}") for i in range(20)]
        hashing = model.batch_seconds(packages, include_refresh=False)
        manifests = model.manifest_batch_seconds(len(packages), include_refresh=False)
        assert manifests < hashing / 10

    def test_manifest_cost_scales_with_count(self):
        model = GeneratorCostModel(CostModelConfig(jitter_sigma=0.0))
        assert model.manifest_batch_seconds(100) > model.manifest_batch_seconds(10)
