"""Tests for PCR banks and the extend/replay rule."""

import pytest

from repro.common.errors import StateError
from repro.common.hexutil import sha256_hex, zero_digest
from repro.tpm.pcr import IMA_PCR_INDEX, NUM_PCRS, PcrBank, replay_extends


class TestPcrBank:
    def test_all_pcrs_start_zero(self):
        bank = PcrBank("sha256")
        for index in range(NUM_PCRS):
            assert bank.read(index) == zero_digest("sha256")

    def test_extend_changes_value(self):
        bank = PcrBank("sha256")
        before = bank.read(10)
        after = bank.extend(10, sha256_hex(b"m"))
        assert after != before
        assert bank.read(10) == after

    def test_extend_only_touches_target(self):
        bank = PcrBank("sha256")
        bank.extend(10, sha256_hex(b"m"))
        assert bank.read(11) == zero_digest("sha256")

    def test_extend_chains(self):
        bank = PcrBank("sha256")
        bank.extend(0, sha256_hex(b"a"))
        first = bank.read(0)
        bank.extend(0, sha256_hex(b"b"))
        assert bank.read(0) != first

    def test_index_bounds(self):
        bank = PcrBank("sha256")
        with pytest.raises(StateError):
            bank.read(NUM_PCRS)
        with pytest.raises(StateError):
            bank.extend(-1, sha256_hex(b"m"))

    def test_reset(self):
        bank = PcrBank("sha256")
        bank.extend(5, sha256_hex(b"m"))
        bank.reset()
        assert bank.read(5) == zero_digest("sha256")

    def test_read_selection_sorted_and_deduped(self):
        bank = PcrBank("sha256")
        selection = bank.read_selection([10, 0, 10])
        assert sorted(selection) == [0, 10]

    def test_snapshot_has_all(self):
        bank = PcrBank("sha1")
        snapshot = bank.snapshot()
        assert len(snapshot) == NUM_PCRS
        assert snapshot[0] == zero_digest("sha1")

    def test_sha1_bank(self):
        bank = PcrBank("sha1")
        value = bank.extend(10, "ab" * 20)
        assert len(value) == 40

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            PcrBank("md5")


class TestReplay:
    def test_replay_matches_bank(self):
        bank = PcrBank("sha256")
        values = [sha256_hex(f"entry-{i}".encode()) for i in range(5)]
        for value in values:
            bank.extend(IMA_PCR_INDEX, value)
        assert replay_extends("sha256", values) == bank.read(IMA_PCR_INDEX)

    def test_replay_empty_is_zero(self):
        assert replay_extends("sha256", []) == zero_digest("sha256")

    def test_replay_order_matters(self):
        a = sha256_hex(b"a")
        b = sha256_hex(b"b")
        assert replay_extends("sha256", [a, b]) != replay_extends("sha256", [b, a])

    def test_replay_prefix_differs(self):
        values = [sha256_hex(f"{i}".encode()) for i in range(3)]
        assert replay_extends("sha256", values[:2]) != replay_extends("sha256", values)
