"""The seeded chaos harness: system-wide invariants under injected faults.

Three invariants, each phrased over the fault plan's ground-truth
injection log joined against the verifier's verdict stream:

1. **No false positives from noise.**  Under a transient-only profile
   (drops, delays, duplicates, partitions -- any seed, any
   probability), no node ever reaches a FAILED verdict and no round
   ever records an attestation failure.  Transient weather degrades
   rounds; it must never be mistaken for tampering (the paper's FP
   study inverted).
2. **No masking of tampering.**  Any round during which a corrupt or
   replay fault actually fired must fail -- ``ok=False`` with real
   failures, never ``transient`` -- because retrying an integrity
   error would hand an attacker a laundering primitive (tamper, get
   re-asked, serve clean bytes).  One carve-out keeps the property
   honest: if an attempt-aborting transient fault fired *after* the
   integrity fault in the same round (e.g. the request nonce was
   flipped but the response was then dropped), the tampered payload
   never reached verification -- the verifier observed only a
   transport error, and re-asking is sound.  The test distinguishes
   the two by replaying the injection record order.
3. **No silent gaps.**  Over a full fleet run under chaos, every batch
   tick polls every pollable node: a node with no attestation event at
   a tick must have a prior *explaining* event (``node.quarantined`` or
   ``polling.halted``).  This is the anti-P2 invariant -- the
   attestation history may degrade, but it never goes dark without
   saying why.

The case grid is (profile x seed); ``REPRO_CHAOS_SEEDS`` scales the
seeds-per-profile axis (default 24, x9 profiles = 216 cases -- the CI
fast grid).  Each case runs a fresh verifier over a shared rig, so the
grid costs seconds, not minutes.
"""

from __future__ import annotations

import os

import pytest

from repro.common.rng import SeededRng
from repro.keylime.audit import AuditLog
from repro.keylime.faults import CHAOS_PROFILES, INTEGRITY_KINDS, chaos_profile
from repro.keylime.retrypolicy import RetryPolicy
from repro.keylime.verifier import POLLABLE_STATES, AgentState, KeylimeVerifier

#: Seeds per profile; 24 x 9 profiles = 216 cases in the default grid.
CHAOS_SEEDS = int(os.environ.get("REPRO_CHAOS_SEEDS", "24"))
POLLS_PER_CASE = 8

CASES = [
    (profile, seed)
    for profile in sorted(CHAOS_PROFILES)
    for seed in range(CHAOS_SEEDS)
]


@pytest.fixture(scope="module")
def rig():
    import sys

    sys.path.insert(0, os.path.dirname(__file__))
    from conftest import small_config
    from repro.experiments.testbed import build_testbed

    return build_testbed(small_config("chaos-rig"))


def run_case(rig, profile: str, seed: int, quarantine_after: int = 3):
    """One chaos case: fresh verifier + fault plan over the shared rig.

    Returns ``(verifier, plan, rounds)`` where *rounds* is a list of
    ``(result, injections)`` pairs -- the injections that fired during
    that specific round.
    """
    plan = chaos_profile(profile, SeededRng(f"chaos/{profile}/{seed}"))
    plan.bind_clock(rig.scheduler.clock)
    verifier = KeylimeVerifier(
        rig.registrar,
        rig.scheduler,
        SeededRng(f"verifier/{profile}/{seed}"),
        audit=AuditLog(),
        retry_policy=RetryPolicy(max_attempts=4),
        quarantine_after=quarantine_after,
    )
    verifier.add_agent(plan.wrap(rig.agent), rig.policy)
    rounds = []
    for _ in range(POLLS_PER_CASE):
        if verifier.state_of(rig.agent_id) not in POLLABLE_STATES:
            break
        seen = len(plan.injections)
        result = verifier.poll(rig.agent_id)
        rounds.append((result, plan.injections[seen:]))
    return verifier, plan, rounds


def _aborts_attempt(record, attempt_timeout: float) -> bool:
    """Whether a transient injection record killed its delivery attempt.

    Drops and partitions always do; a delay only when it exceeded the
    per-attempt timeout (the injected duration is in the record detail).
    Sub-timeout delays and duplicates deliver the payload unchanged.
    """
    from repro.keylime.faults import FaultKind

    if record.kind in (FaultKind.DROP, FaultKind.PARTITION):
        return True
    if record.kind is FaultKind.DELAY:
        return float(record.detail.rstrip("s")) > attempt_timeout
    return False


def _masked_by_weather(injected, index, attempt_timeout: float) -> bool:
    """True when injection *index* never reached verification: a later
    fault in the same round aborted the delivery attempt carrying it."""
    return any(
        _aborts_attempt(record, attempt_timeout)
        for record in injected[index + 1:]
    )


@pytest.mark.parametrize("profile,seed", CASES)
def test_chaos_invariants(rig, profile, seed):
    transient_only = CHAOS_PROFILES[profile]
    verifier, plan, rounds = run_case(rig, profile, seed)
    state = verifier.state_of(rig.agent_id)

    # Invariant 3 (single-node form): every loop iteration produced a
    # result until the node left the pollable states -- no silent skip.
    expected = POLLS_PER_CASE if state in POLLABLE_STATES else len(rounds)
    assert len(rounds) == expected

    for result, injected in rounds:
        delivered_integrity = [
            record
            for index, record in enumerate(injected)
            if record.kind in INTEGRITY_KINDS
            and not _masked_by_weather(injected, index, plan.attempt_timeout)
        ]
        if transient_only:
            # Invariant 1: transient weather never becomes a verdict.
            assert all(r.kind not in INTEGRITY_KINDS for r in injected)
            assert result.failures == ()
            assert result.ok or result.transient
        if delivered_integrity:
            # Invariant 2: a corrupt/replay fault that reached the
            # verifier must fail the round -- not be retried away, not
            # be degraded away.
            assert not result.ok
            assert not result.transient
            assert result.failures

    if transient_only:
        # Invariant 1, state form: noise may suspend or quarantine a
        # node, never FAIL it.
        assert state is not AgentState.FAILED
        assert all(
            record.kind not in INTEGRITY_KINDS for record in plan.injections
        )


@pytest.mark.parametrize("seed", range(min(CHAOS_SEEDS, 8)))
def test_quarantine_only_after_budget(rig, seed):
    """A quarantined node got exactly its budget of suspect windows."""
    verifier, plan, rounds = run_case(rig, "partition", seed, quarantine_after=2)
    slot = verifier._slot(rig.agent_id)
    state = verifier.state_of(rig.agent_id)
    if state is AgentState.QUARANTINED:
        assert slot.suspect_windows == 2
    # Partition is total: every completed round degraded.
    assert all(result.transient for result, _ in rounds)
    assert all(result.failures == () for result, _ in rounds)


def _fleet_tick_coverage(result):
    """Invariant 3 over a full fleet run: join ticks against events."""
    events = list(result.fleet.events)
    tick_times = sorted(
        {event.time for event in events if event.kind == "fleet.heartbeat"}
    )
    assert tick_times, "fleet run recorded no heartbeat ticks"
    per_node_attested = {}
    per_node_explained = {}
    for event in events:
        agent = event.details.get("agent")
        if agent is None:
            continue
        if event.kind.startswith("attestation.") and event.kind != "attestation.restarted":
            per_node_attested.setdefault(agent, set()).add(event.time)
        if event.kind in ("node.quarantined", "polling.halted"):
            per_node_explained.setdefault(agent, []).append(event.time)
    for node in result.fleet.nodes:
        agent_id = node.agent.agent_id
        attested = per_node_attested.get(agent_id, set())
        explained = per_node_explained.get(agent_id, [])
        for tick in tick_times:
            if tick in attested:
                continue
            # A missing poll is only legal after an explaining event.
            assert any(when <= tick for when in explained), (
                f"{agent_id} silently skipped the tick at t={tick}: no "
                f"attestation event and no quarantine/halt before it"
            )


@pytest.mark.parametrize("profile,chaos_seed", [
    ("transient-mixed", "fleet-a"),
    ("mixed", "fleet-b"),
    ("partition", "fleet-c"),
])
def test_fleet_ticks_never_silently_skip(profile, chaos_seed):
    from repro.experiments.fleet_run import ChaosInjection, run_fleet_scenario

    result = run_fleet_scenario(
        seed="chaos-fleet",
        n_nodes=3,
        n_days=1,
        n_filler_packages=8,
        chaos=ChaosInjection(
            profile=profile, chaos_seed=chaos_seed, quarantine_after=2
        ),
    )
    _fleet_tick_coverage(result)
    if CHAOS_PROFILES[profile]:
        # Invariant 1 at fleet scale: no FAILED state from noise.
        assert "failed" not in result.status.values()


def test_fleet_partition_window_recovers():
    """A bounded partition suspends nodes, then polling heals them."""
    from repro.common.clock import hours
    from repro.experiments.fleet_run import ChaosInjection, run_fleet_scenario

    result = run_fleet_scenario(
        seed="chaos-heal",
        n_nodes=2,
        n_days=1,
        n_filler_packages=8,
        chaos=ChaosInjection(
            profile="partition",
            chaos_seed="heal",
            start=hours(2),
            end=hours(4),
            quarantine_after=10,  # large budget: must not quarantine
        ),
    )
    kinds = [event.kind for event in result.fleet.events]
    assert "node.suspect" in kinds
    assert "node.recovered" in kinds
    assert "node.quarantined" not in kinds
    # Everyone healed: polling continued straight through the window.
    assert set(result.status.values()) == {"attesting"}
    _fleet_tick_coverage(result)
