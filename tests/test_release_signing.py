"""Tests for signed archive indexes (the InRelease model)."""

import dataclasses

import pytest

from repro.common.errors import ConfigurationError, IntegrityError
from repro.common.rng import SeededRng
from repro.distro.archive import Release, UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.package import Package, PackageFile, Priority
from repro.distro.release_signing import (
    ArchiveSigner,
    InRelease,
    verify_inrelease,
)


def _pkg(name: str, version: str, repo: str = "main") -> Package:
    return Package(
        name=name, version=version, priority=Priority.OPTIONAL,
        files=(PackageFile(f"/usr/bin/{name}", True),), repository=repo,
    )


@pytest.fixture(scope="module")
def signer() -> ArchiveSigner:
    return ArchiveSigner("UbuntuArchive", SeededRng("release-signing"))


@pytest.fixture()
def archive(signer) -> UbuntuArchive:
    archive = UbuntuArchive()
    archive.seed([_pkg("a", "1.0"), _pkg("b", "1.0")])
    archive.enable_signing(signer)
    return archive


class TestInRelease:
    def test_sign_and_verify(self, archive, signer):
        inrelease = archive.inrelease_for(("main",), now=0.0)
        verify_inrelease(inrelease, archive.effective_index(("main",)), signer.public_key)

    def test_unsigned_archive_refuses(self):
        archive = UbuntuArchive()
        with pytest.raises(ConfigurationError):
            archive.inrelease_for(("main",), now=0.0)

    def test_wrong_key_rejected(self, archive, signer):
        rogue = ArchiveSigner("Rogue", SeededRng("rogue-signer"))
        inrelease = archive.inrelease_for(("main",), now=0.0)
        with pytest.raises(IntegrityError, match="signature"):
            verify_inrelease(
                inrelease, archive.effective_index(("main",)), rogue.public_key
            )

    def test_forged_index_rejected(self, archive, signer):
        inrelease = archive.inrelease_for(("main",), now=0.0)
        forged = dataclasses.replace(
            inrelease, index={**inrelease.index, "a": "6.6.6"}
        )
        with pytest.raises(IntegrityError):
            verify_inrelease(
                forged, archive.effective_index(("main",)), signer.public_key
            )

    def test_tampered_serving_rejected(self, archive, signer):
        """Genuine InRelease, but the mirror serves a swapped package."""
        inrelease = archive.inrelease_for(("main",), now=0.0)
        served = archive.effective_index(("main",))
        served["a"] = _pkg("a", "6.6.6")
        with pytest.raises(IntegrityError, match="does not match"):
            verify_inrelease(inrelease, served, signer.public_key)

    def test_inrelease_tracks_releases(self, archive, signer):
        archive.schedule_release(
            Release(time=100.0, packages=(_pkg("a", "2.0", "updates"),))
        )
        early = archive.inrelease_for(("main", "updates"), now=50.0)
        late = archive.inrelease_for(("main", "updates"), now=150.0)
        assert early.index["a"] == "1.0"
        assert late.index["a"] == "2.0"


class TestVerifiedSync:
    def test_verified_sync_succeeds(self, archive, signer):
        mirror = LocalMirror(archive)
        report = mirror.sync(0.0, trusted_key=signer.public_key)
        assert report.total == 2

    def test_unverified_sync_still_works(self, archive):
        mirror = LocalMirror(archive)
        assert mirror.sync(0.0).total == 2

    def test_tampered_archive_aborts_sync(self, archive, signer, monkeypatch):
        """A compromised upstream cannot slip versions past the pin."""
        mirror = LocalMirror(archive)
        mirror.sync(0.0, trusted_key=signer.public_key)

        # Capture yesterday's genuine InRelease before the new release.
        stale = archive.inrelease_for(mirror.repositories, 0.0)
        archive.schedule_release(
            Release(time=43200.0, packages=(_pkg("a", "2.0", "updates"),))
        )
        # Attacker replays the stale (genuine!) InRelease while the
        # archive serves today's different content.
        monkeypatch.setattr(
            archive, "inrelease_for", lambda repositories, now: stale
        )
        with pytest.raises(IntegrityError):
            mirror.sync(86400.0 + 1.0, trusted_key=signer.public_key)
        # The mirror kept its last good state.
        assert mirror.latest("a").version == "1.0"

    def test_sync_with_wrong_pin_aborts(self, archive):
        rogue = ArchiveSigner("Rogue", SeededRng("rogue-pin"))
        mirror = LocalMirror(archive)
        with pytest.raises(IntegrityError):
            mirror.sync(0.0, trusted_key=rogue.public_key)
        assert len(mirror) == 0
