"""Tests for formatting and summary-statistics helpers."""

import pytest

from repro.common.units import (
    format_bytes,
    format_duration,
    format_minutes,
    mean,
    percentile,
    stddev,
    summarize,
)


class TestFormatting:
    def test_bytes_small(self):
        assert format_bytes(512) == "512 B"

    def test_kilobytes(self):
        assert format_bytes(2048) == "2.0 KB"

    def test_megabytes_two_decimals(self):
        assert format_bytes(1.5 * 1024**2) == "1.50 MB"

    def test_gigabytes(self):
        assert format_bytes(3 * 1024**3) == "3.00 GB"

    def test_minutes(self):
        assert format_minutes(141.6) == "2.36 min"

    def test_duration_ms(self):
        assert format_duration(0.5) == "500 ms"

    def test_duration_seconds(self):
        assert format_duration(45) == "45.0 s"

    def test_duration_minutes(self):
        assert format_duration(600) == "10.0 min"

    def test_duration_hours(self):
        assert format_duration(7200) == "2.0 h"

    def test_duration_days(self):
        assert format_duration(3 * 86400) == "3.0 d"


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_stddev(self):
        assert stddev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)

    def test_stddev_single(self):
        assert stddev([5]) == 0.0

    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_percentile_bounds(self):
        values = [3, 1, 2]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 3

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 150)

    def test_percentile_empty(self):
        assert percentile([], 50) == 0.0

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["n"] == 3
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["median"] == 2.0

    def test_summarize_empty(self):
        summary = summarize([])
        assert summary["n"] == 0
        assert summary["mean"] == 0.0
