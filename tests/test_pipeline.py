"""Tests for the staged verification pipeline and verdict caching.

Covers the pipeline decomposition of the attestation round (stage
objects, P2/M2 as pipeline configuration), the generation-stamped
verdict cache (no stale verdicts after a policy push or a reboot), the
idempotent ``stop_polling``, and the per-stage / cache telemetry.
"""

import pytest

from repro.common.clock import Scheduler
from repro.common.rng import SeededRng
from repro.keylime.agent import KeylimeAgent
from repro.keylime.pipeline import (
    ChallengeStage,
    LogReplayStage,
    MeasuredBootStage,
    PolicyEvalStage,
    QuoteVerifyStage,
    VerificationPipeline,
    default_stages,
)
from repro.keylime.policy import (
    RuntimePolicy,
    VerdictCache,
    build_policy_from_machine,
)
from repro.keylime.registrar import KeylimeRegistrar
from repro.keylime.verifier import AgentState, FailureKind, KeylimeVerifier
from repro.kernelsim.kernel import Machine
from repro.obs import runtime as obs_runtime
from repro.tpm.device import TpmManufacturer


@pytest.fixture()
def rig(machine: Machine, manufacturer: TpmManufacturer):
    scheduler = Scheduler(machine.clock)
    registrar = KeylimeRegistrar([manufacturer.root_certificate])
    verifier = KeylimeVerifier(registrar, scheduler, SeededRng("pipeline-tests"))
    agent = KeylimeAgent("a1", machine)
    registrar.register(agent)
    machine.install_file("/usr/bin/tool", b"tool-v1", executable=True)
    policy = build_policy_from_machine(machine)
    verifier.add_agent(agent, policy)
    return machine, agent, verifier, policy, scheduler


class TestStageComposition:
    def test_default_stage_order(self, rig):
        _, _, verifier, _, _ = rig
        assert verifier.pipeline.stage_names() == [
            "challenge", "quote_verify", "measured_boot",
            "log_replay", "policy_eval",
        ]

    def test_default_stages_are_fresh_instances(self):
        first, second = default_stages(), default_stages()
        assert [type(s) for s in first] == [
            ChallengeStage, QuoteVerifyStage, MeasuredBootStage,
            LogReplayStage, PolicyEvalStage,
        ]
        assert all(a is not b for a, b in zip(first, second))

    def test_continue_on_failure_delegates_to_pipeline(self, rig):
        _, _, verifier, _, _ = rig
        assert verifier.continue_on_failure is False
        verifier.continue_on_failure = True
        assert verifier.pipeline.continue_on_failure is True
        verifier.continue_on_failure = False
        assert verifier.pipeline.continue_on_failure is False

    def test_injected_pipeline_is_used(self, machine, manufacturer):
        scheduler = Scheduler(machine.clock)
        registrar = KeylimeRegistrar([manufacturer.root_certificate])
        pipeline = VerificationPipeline(continue_on_failure=True)
        verifier = KeylimeVerifier(
            registrar, scheduler, SeededRng("injected"), pipeline=pipeline,
        )
        assert verifier.pipeline is pipeline
        assert verifier.continue_on_failure is True

    def test_m2_continue_on_failure_collects_all(self, rig):
        machine, _, verifier, _, _ = rig
        verifier.continue_on_failure = True
        machine.install_file("/usr/bin/evil1", b"evil-1", executable=True)
        machine.install_file("/usr/bin/evil2", b"evil-2", executable=True)
        machine.exec_file("/usr/bin/evil1")
        machine.exec_file("/usr/bin/evil2")
        result = verifier.poll("a1")
        assert not result.ok
        failed = {f.policy_failure.path for f in result.failures}
        assert failed == {"/usr/bin/evil1", "/usr/bin/evil2"}
        # M2: the round completes, the agent keeps attesting.
        assert verifier.state_of("a1") is AgentState.ATTESTING

    def test_p2_halts_at_first_failure(self, rig):
        machine, _, verifier, _, _ = rig
        machine.install_file("/usr/bin/evil1", b"evil-1", executable=True)
        machine.install_file("/usr/bin/evil2", b"evil-2", executable=True)
        machine.exec_file("/usr/bin/evil1")
        machine.exec_file("/usr/bin/evil2")
        result = verifier.poll("a1")
        assert not result.ok
        assert len(result.failures) == 1  # halt-on-first (P2)
        assert verifier.state_of("a1") is AgentState.FAILED


class TestVerdictCache:
    def test_repeat_evaluation_hits_cache(self, rig):
        machine, _, verifier, _, _ = rig
        cache = verifier.verdict_cache
        assert cache is not None
        machine.exec_file("/usr/bin/tool")
        assert verifier.poll("a1").ok
        misses = cache.misses
        verifier.restart_attestation("a1")
        assert verifier.poll("a1").ok
        assert cache.misses == misses  # full replay answered from cache
        assert cache.hits > 0

    def test_update_policy_invalidates_cached_verdicts(self, rig):
        """A verdict cached before ``update_policy`` must not leak past
        the generation bump (satellite c)."""
        machine, _, verifier, policy, _ = rig
        machine.exec_file("/usr/bin/tool")
        assert verifier.poll("a1").ok  # ACCEPT verdicts now cached
        empty = RuntimePolicy(excludes=list(policy.excludes), name="empty")
        verifier.update_policy("a1", empty)
        verifier.restart_attestation("a1")
        result = verifier.poll("a1")
        assert not result.ok
        assert result.failures[0].policy_failure.path == "/usr/bin/tool"

    def test_mutating_installed_policy_invalidates(self, rig):
        machine, _, verifier, policy, _ = rig
        machine.exec_file("/usr/bin/tool")
        assert verifier.poll("a1").ok
        # The same policy object mutates in place (the dynamic
        # generator's append): the bump must outdate cached verdicts.
        generation = policy.generation
        policy.add_exclude(r"^/usr/bin/tool$")
        assert policy.generation > generation
        verifier.restart_attestation("a1")
        before = verifier.verdict_cache.misses
        assert verifier.poll("a1").ok
        assert verifier.verdict_cache.misses > before  # re-evaluated

    def test_reboot_restarts_replay_without_stale_verdicts(self, rig):
        """Reboot mid-run (reset_count change) must restart the replay
        and re-verify, not serve verdicts for entries that no longer
        exist in the fresh log (satellite c)."""
        machine, _, verifier, _, _ = rig
        machine.exec_file("/usr/bin/tool")
        assert verifier.poll("a1").ok
        machine.reboot()
        machine.exec_file("/usr/bin/tool")
        result = verifier.poll("a1")
        assert result.ok
        # Fresh log: boot aggregate + the one post-reboot measurement.
        assert result.entries_processed == 2

    def test_reboot_with_changed_binary_fails(self, rig):
        machine, _, verifier, _, _ = rig
        machine.exec_file("/usr/bin/tool")
        assert verifier.poll("a1").ok
        machine.reboot()
        machine.install_file("/usr/bin/tool", b"tool-tampered", executable=True)
        machine.exec_file("/usr/bin/tool")
        result = verifier.poll("a1")
        assert not result.ok
        assert "hash mismatch" in result.failures[0].detail

    def test_cache_disabled_verifier_still_polls(self, machine, manufacturer):
        scheduler = Scheduler(machine.clock)
        registrar = KeylimeRegistrar([manufacturer.root_certificate])
        verifier = KeylimeVerifier(
            registrar, scheduler, SeededRng("nocache"), cache_verdicts=False,
        )
        agent = KeylimeAgent("a1", machine)
        registrar.register(agent)
        machine.install_file("/usr/bin/tool", b"tool-v1", executable=True)
        verifier.add_agent(agent, build_policy_from_machine(machine))
        assert verifier.verdict_cache is None
        machine.exec_file("/usr/bin/tool")
        assert verifier.poll("a1").ok

    def test_shared_cache_across_verifiers(self, machine, manufacturer):
        """Two verifiers handed the same VerdictCache share verdicts --
        the fleet's same-distro de-duplication in miniature."""
        shared = VerdictCache()
        machine.install_file("/usr/bin/tool", b"tool-v1", executable=True)
        policy = build_policy_from_machine(machine)
        results = []
        for label in ("left", "right"):
            scheduler = Scheduler(machine.clock)
            registrar = KeylimeRegistrar([manufacturer.root_certificate])
            verifier = KeylimeVerifier(
                registrar, scheduler, SeededRng(label), verdict_cache=shared,
            )
            agent = KeylimeAgent(f"a-{label}", machine)
            registrar.register(agent)
            verifier.add_agent(agent, policy)
            results.append(verifier.poll(f"a-{label}"))
        assert all(result.ok for result in results)
        assert shared.hits > 0  # second verifier reused the first's work


class TestStopPollingIdempotent:
    def test_double_stop_is_noop(self, rig):
        _, _, verifier, _, scheduler = rig
        verifier.start_polling("a1", interval=60.0)
        scheduler.run_for(130.0)
        verifier.stop_polling("a1")
        assert verifier.state_of("a1") is AgentState.STOPPED
        verifier.stop_polling("a1")  # second cancel: no error, no change
        assert verifier.state_of("a1") is AgentState.STOPPED

    def test_stop_never_scheduled_is_noop(self, rig):
        _, _, verifier, _, _ = rig
        verifier.stop_polling("a1")  # never scheduled: nothing to cancel
        assert verifier.state_of("a1") is AgentState.ATTESTING

    def test_double_cancel_keeps_failed_state(self, rig):
        """Double-cancel must not flip a FAILED agent to STOPPED."""
        machine, _, verifier, _, scheduler = rig
        verifier.start_polling("a1", interval=60.0)
        machine.install_file("/usr/bin/evil", b"evil", executable=True)
        machine.exec_file("/usr/bin/evil")
        scheduler.run_for(70.0)
        assert verifier.state_of("a1") is AgentState.FAILED
        verifier.stop_polling("a1")
        verifier.stop_polling("a1")
        assert verifier.state_of("a1") is AgentState.FAILED

    def test_slot_callback_is_typed(self, rig):
        _, _, verifier, _, _ = rig
        slot = verifier._slot("a1")
        assert slot.stop_polling is None
        verifier.start_polling("a1", interval=60.0)
        assert callable(slot.stop_polling)
        verifier.stop_polling("a1")
        assert slot.stop_polling is None


class TestPipelineTelemetry:
    def test_stage_histogram_and_cache_counters(self, rig):
        machine, _, verifier, _, _ = rig
        machine.exec_file("/usr/bin/tool")
        with obs_runtime.session(clock=machine.clock) as telemetry:
            assert verifier.poll("a1").ok
            verifier.restart_attestation("a1")
            assert verifier.poll("a1").ok
            family = telemetry.registry.get("verifier_stage_wall_seconds")
            stages = {labels["stage"] for labels, _ in family.samples()}
            assert stages == {
                "challenge", "quote_verify", "measured_boot",
                "log_replay", "policy_eval",
            }
            cache_family = telemetry.registry.get("verifier_verdict_cache_total")
            counts = {
                labels["result"]: child.value
                for labels, child in cache_family.samples()
            }
            assert counts.get("miss", 0) > 0
            assert counts.get("hit", 0) > 0  # second poll replayed from cache

    def test_pipeline_spans_nest_under_poll(self, rig):
        machine, _, verifier, _, _ = rig
        machine.exec_file("/usr/bin/tool")
        with obs_runtime.session(clock=machine.clock) as telemetry:
            assert verifier.poll("a1").ok
            spans = {span.name: span for span in telemetry.tracer.iter_spans()}
            root = spans["verifier.poll"]
            for stage in ("challenge", "quote_verify", "log_replay", "policy_eval"):
                span = spans[f"verifier.{stage}"]
                assert span.parent_id == root.span_id
            eval_span = spans["verifier.policy_eval"]
            assert eval_span.attributes["cache_misses"] > 0
