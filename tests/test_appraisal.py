"""Tests for IMA appraisal (signature enforcement)."""

import pytest

from repro.common.rng import SeededRng
from repro.crypto.rsa import generate_keypair
from repro.kernelsim.appraisal import (
    AppraisalDenied,
    AppraisalPolicy,
    appraise_content,
    get_signature,
    sign_all_executables,
    sign_content,
    sign_file,
)
from repro.kernelsim.kernel import Machine
from repro.kernelsim.vfs import FilesystemType


@pytest.fixture(scope="module")
def distro_key():
    return generate_keypair(SeededRng("appraisal-key"), bits=1024)


@pytest.fixture(scope="module")
def rogue_key():
    return generate_keypair(SeededRng("appraisal-rogue"), bits=1024)


@pytest.fixture()
def enforced(machine: Machine, distro_key) -> Machine:
    machine.install_file("/usr/bin/signed-tool", b"tool", executable=True)
    machine.install_file("/usr/bin/python3", b"python", executable=True)
    machine.install_file("/usr/bin/wget", b"wget", executable=True)
    sign_all_executables(machine.vfs, distro_key, "UbuntuIMA")
    machine.appraisal.enforce = True
    machine.appraisal.trust_key(distro_key.public)
    return machine


class TestSignatures:
    def test_sign_verify_roundtrip(self, distro_key):
        signature = sign_content(b"payload", distro_key, "UbuntuIMA")
        assert appraise_content(b"payload", signature, [distro_key.public])

    def test_wrong_content_fails(self, distro_key):
        signature = sign_content(b"payload", distro_key, "UbuntuIMA")
        assert not appraise_content(b"other", signature, [distro_key.public])

    def test_untrusted_key_fails(self, distro_key, rogue_key):
        signature = sign_content(b"payload", rogue_key, "Rogue")
        assert not appraise_content(b"payload", signature, [distro_key.public])

    def test_missing_signature_fails(self, distro_key):
        assert not appraise_content(b"payload", None, [distro_key.public])

    def test_sign_file_sets_xattr(self, machine, distro_key):
        machine.install_file("/usr/bin/x", b"x", executable=True)
        sign_file(machine.vfs, "/usr/bin/x", distro_key, "UbuntuIMA")
        signature = get_signature(machine.vfs, "/usr/bin/x")
        assert signature is not None and signature.signer == "UbuntuIMA"

    def test_sign_all_counts_executables_only(self, machine, distro_key):
        machine.install_file("/usr/bin/a", b"a", executable=True)
        machine.install_file("/etc/passwd", b"p", executable=False)
        count = sign_all_executables(machine.vfs, distro_key, "U", prefix="/usr")
        assert count == 1


class TestEnforcement:
    def test_signed_binary_runs(self, enforced):
        result = enforced.exec_file("/usr/bin/signed-tool")
        assert result.measured

    def test_unsigned_binary_blocked(self, enforced):
        enforced.install_file("/usr/bin/dropper", b"evil", executable=True)
        with pytest.raises(AppraisalDenied, match="no security.ima signature"):
            enforced.exec_file("/usr/bin/dropper")

    def test_rogue_signed_binary_blocked(self, enforced, rogue_key):
        enforced.install_file("/usr/bin/dropper", b"evil", executable=True)
        sign_file(enforced.vfs, "/usr/bin/dropper", rogue_key, "Rogue")
        with pytest.raises(AppraisalDenied, match="does not verify"):
            enforced.exec_file("/usr/bin/dropper")

    def test_tampered_signed_binary_blocked(self, enforced):
        """Overwriting content invalidates the existing signature."""
        enforced.vfs.write_file("/usr/bin/signed-tool", b"trojaned", executable=True)
        with pytest.raises(AppraisalDenied):
            enforced.exec_file("/usr/bin/signed-tool")

    def test_signature_survives_rename(self, enforced):
        enforced.move_file("/usr/bin/signed-tool", "/usr/bin/renamed-tool")
        result = enforced.exec_file("/usr/bin/renamed-tool")
        assert result is not None  # runs: the xattr travelled with the inode

    def test_module_load_appraised(self, enforced, distro_key):
        enforced.install_file("/lib/modules/k/mod.ko", b"ko", executable=True)
        with pytest.raises(AppraisalDenied):
            enforced.load_kernel_module("/lib/modules/k/mod.ko")
        sign_file(enforced.vfs, "/lib/modules/k/mod.ko", distro_key, "UbuntuIMA")
        enforced.load_kernel_module("/lib/modules/k/mod.ko")

    def test_interpreter_appraised_but_script_is_data(self, enforced):
        """P5 persists under appraisal: the script is never appraised."""
        enforced.install_file("/home/user/implant.py", b"evil code", executable=False)
        result = enforced.run_with_interpreter(
            "/usr/bin/python3", "/home/user/implant.py"
        )
        assert result is not None  # ran fine: only python3 was appraised

    def test_excluded_fstype_skips_appraisal(self, enforced):
        enforced.appraisal.excluded_fstypes = (FilesystemType.TMPFS,)
        enforced.install_file("/dev/shm/unsigned", b"x", executable=True)
        enforced.exec_file("/dev/shm/unsigned")  # no AppraisalDenied

    def test_enforcement_off_by_default(self, machine):
        machine.install_file("/usr/bin/unsigned", b"x", executable=True)
        machine.exec_file("/usr/bin/unsigned")  # paper's measurement-only mode


class TestAppraisalVsAttacks:
    def test_basic_droppers_blocked_outright(self, enforced):
        """Enforcement turns detection into prevention for file drops."""
        from repro.attacks import AttackMode
        from repro.attacks.botnets import Mirai

        with pytest.raises(AppraisalDenied):
            Mirai().run(enforced, AttackMode.BASIC)

    def test_aoyama_inline_still_works_under_appraisal(self, enforced):
        """...but pure-interpreter attacks still evade (P5's deep end)."""
        from repro.attacks import AttackMode
        from repro.attacks.botnets import Aoyama

        report = Aoyama().run(enforced, AttackMode.ADAPTIVE)
        assert report.executions  # the inline payload ran unhindered
