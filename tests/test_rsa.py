"""Tests for the from-scratch RSA implementation."""

import pytest

from repro.common.rng import SeededRng
from repro.crypto.rsa import (
    RsaKeyPair,
    generate_keypair,
    is_probable_prime,
)


@pytest.fixture(scope="module")
def keypair() -> RsaKeyPair:
    return generate_keypair(SeededRng("rsa-tests"), bits=1024)


class TestPrimality:
    def test_small_primes(self):
        for prime in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert is_probable_prime(prime)

    def test_small_composites(self):
        for composite in (0, 1, 4, 6, 9, 15, 91, 7917):
            assert not is_probable_prime(composite)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat but not Miller-Rabin.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(carmichael)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2**127 - 1)

    def test_large_known_composite(self):
        assert not is_probable_prime((2**127 - 1) * 3)


class TestKeyGeneration:
    def test_modulus_size(self, keypair: RsaKeyPair):
        assert keypair.public.n.bit_length() == 1024
        assert keypair.public.size_bytes == 128

    def test_deterministic_from_seed(self):
        a = generate_keypair(SeededRng("same"), bits=512)
        b = generate_keypair(SeededRng("same"), bits=512)
        assert a.public.n == b.public.n
        assert a.d == b.d

    def test_different_seeds_give_different_keys(self):
        a = generate_keypair(SeededRng("one"), bits=512)
        b = generate_keypair(SeededRng("two"), bits=512)
        assert a.public.n != b.public.n

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            generate_keypair(SeededRng(0), bits=256)

    def test_rejects_odd_bit_count(self):
        with pytest.raises(ValueError):
            generate_keypair(SeededRng(0), bits=1023)

    def test_exponent_roundtrip(self, keypair: RsaKeyPair):
        message = 0xDEADBEEF
        cipher = pow(message, keypair.public.e, keypair.public.n)
        assert pow(cipher, keypair.d, keypair.public.n) == message


class TestSignatures:
    def test_sign_verify_roundtrip(self, keypair: RsaKeyPair):
        signature = keypair.sign(b"attestation quote")
        assert keypair.public.verify(b"attestation quote", signature)

    def test_wrong_message_fails(self, keypair: RsaKeyPair):
        signature = keypair.sign(b"message")
        assert not keypair.public.verify(b"other message", signature)

    def test_tampered_signature_fails(self, keypair: RsaKeyPair):
        signature = bytearray(keypair.sign(b"message"))
        signature[0] ^= 0xFF
        assert not keypair.public.verify(b"message", bytes(signature))

    def test_truncated_signature_fails(self, keypair: RsaKeyPair):
        signature = keypair.sign(b"message")
        assert not keypair.public.verify(b"message", signature[:-1])

    def test_signature_length_is_modulus_size(self, keypair: RsaKeyPair):
        assert len(keypair.sign(b"x")) == keypair.public.size_bytes

    def test_signatures_are_deterministic(self, keypair: RsaKeyPair):
        assert keypair.sign(b"m") == keypair.sign(b"m")

    def test_verify_with_wrong_key_fails(self, keypair: RsaKeyPair):
        other = generate_keypair(SeededRng("other-key"), bits=1024)
        signature = keypair.sign(b"m")
        assert not other.public.verify(b"m", signature)

    def test_oversized_signature_int_rejected(self, keypair: RsaKeyPair):
        bogus = (keypair.public.n).to_bytes(keypair.public.size_bytes + 1, "big")
        bogus = bogus[-keypair.public.size_bytes:]
        # Value >= n after truncation is unlikely; just assert no crash.
        keypair.public.verify(b"m", bogus)

    def test_empty_message(self, keypair: RsaKeyPair):
        signature = keypair.sign(b"")
        assert keypair.public.verify(b"", signature)


class TestFingerprint:
    def test_stable(self, keypair: RsaKeyPair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()

    def test_unique_per_key(self, keypair: RsaKeyPair):
        other = generate_keypair(SeededRng("fp-key"), bits=512)
        assert keypair.public.fingerprint() != other.public.fingerprint()

    def test_format(self, keypair: RsaKeyPair):
        fingerprint = keypair.public.fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)
