"""The examples are deliverables: run each one end to end.

Each example must exit 0 and print its headline lines.  Run as
subprocesses so import-time state cannot leak between them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

_EXPECTATIONS = {
    "quickstart.py": ["poll #1: ok=True", "ALERT: hash mismatch"],
    "dynamic_policy_demo.py": [
        "false positives before the injected error: 0",
        "operator error fired as expected",
    ],
    "attack_detection.py": ["Aoyama", "adaptive  mitigated  no"],
    "snap_false_positive.py": [
        "FALSE POSITIVE: file not found in policy: /usr/bin/chromium",
        "attestation after the fix: ok=True",
    ],
    "fleet_demo.py": ["8/8 green", "QUARANTINED"],
    "appraisal_demo.py": ["BLOCKED before execution", "executed: True"],
    "hardened_pipeline.py": ["sync ABORTED", "rejected=1"],
}


@pytest.mark.parametrize("script", sorted(_EXPECTATIONS))
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for expected in _EXPECTATIONS[script]:
        assert expected in result.stdout, (
            f"{script}: expected {expected!r} in output;\n{result.stdout[-2000:]}"
        )


def test_every_example_has_an_expectation():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(_EXPECTATIONS), (
        "examples and test expectations out of sync"
    )
