"""Tests for the attack corpus and P1-P5 exploit primitives."""

import pytest

from repro.attacks import AttackMode, all_attacks
from repro.attacks.botnets import Aoyama, Bashlite, Mirai, MortemQbot
from repro.attacks.framework import PersistenceSpec
from repro.attacks.problems import (
    Problem,
    p1_stage_and_run,
    p2_blind_verifier,
    p3_stage_and_run,
    p4_stage_move_run,
    p5_run_inline,
    p5_run_script,
)
from repro.attacks.ransomware import AvosLocker
from repro.attacks.rootkits import Diamorphine, Reptile, Vlany
from repro.kernelsim.kernel import Machine


@pytest.fixture()
def box(machine: Machine) -> Machine:
    for path in ("/usr/bin/python3", "/bin/bash", "/bin/sh", "/usr/bin/make",
                 "/usr/bin/gcc", "/usr/bin/wget", "/usr/bin/tar"):
        machine.install_file(path, path.encode(), executable=True)
    return machine


class TestPrimitives:
    def test_p1_measured_under_tmp_path(self, box):
        path, result = p1_stage_and_run(box, "x", b"payload")
        assert path.startswith("/tmp/")
        assert result.measured
        assert result.entries[0].path == path

    def test_p2_decoy_is_benign_and_measured(self, box):
        decoy = p2_blind_verifier(box)
        assert decoy.startswith("/usr/bin/")
        assert decoy in box.require_booted().measured_paths()

    def test_p3_produces_no_entry(self, box):
        path, result = p3_stage_and_run(box, "x", b"payload")
        assert path.startswith("/dev/shm/")
        assert not result.measured

    def test_p4_destination_never_in_log(self, box):
        staged, destination, result = p4_stage_move_run(
            box, "x", b"payload", "/usr/bin/x"
        )
        assert not result.measured
        measured = box.require_booted().measured_paths()
        assert staged in measured
        assert destination not in measured

    def test_p4_defeated_by_m3(self, box):
        box.ima_policy.re_evaluate_on_path_change = True
        staged, destination, result = p4_stage_move_run(
            box, "x", b"payload", "/usr/bin/x"
        )
        assert result.measured
        assert destination in box.require_booted().measured_paths()

    def test_p5_script_unmeasured(self, box):
        result = p5_run_script(box, "/usr/bin/implant.py", b"code")
        assert "/usr/bin/implant.py" not in box.require_booted().measured_paths()

    def test_p5_script_measured_with_m4(self, box):
        box.enable_script_exec_control(["/usr/bin/python3"])
        p5_run_script(box, "/usr/bin/implant.py", b"code")
        assert "/usr/bin/implant.py" in box.require_booted().measured_paths()

    def test_p5_inline_unmeasured_even_with_m4(self, box):
        box.enable_script_exec_control(["/usr/bin/python3"])
        result = p5_run_inline(box, "evil()")
        paths = {entry.path for entry in result.entries}
        assert paths <= {"/usr/bin/python3"}


class TestCorpus:
    def test_all_attacks_lists_eight(self):
        attacks = all_attacks()
        assert len(attacks) == 8
        assert [a.name for a in attacks] == [
            "AvosLocker", "Diamorphine", "Reptile", "Vlany",
            "Mirai", "BASHLITE", "Mortem-qBot", "Aoyama",
        ]

    def test_categories(self):
        by_category = {}
        for attack in all_attacks():
            by_category.setdefault(attack.category, []).append(attack.name)
        assert len(by_category["ransomware"]) == 1
        assert len(by_category["rootkit"]) == 3
        assert len(by_category["botnet"]) == 4

    def test_avoslocker_has_no_p5(self):
        assert Problem.P5_SCRIPT_INTERPRETERS not in AvosLocker().problems_exploitable
        assert not AvosLocker().uses_scripts

    def test_every_attack_reports_artifacts_or_executions(self, box):
        for attack in all_attacks():
            report = attack.run(box, AttackMode.BASIC)
            assert report.artifacts or report.executions, attack.name

    def test_every_attack_has_persistence(self, box):
        for attack in all_attacks():
            report = attack.run(box, AttackMode.ADAPTIVE)
            assert report.persistence, attack.name

    @pytest.mark.parametrize("attack_cls", [
        AvosLocker, Diamorphine, Reptile, Vlany, Mirai, Bashlite, MortemQbot, Aoyama,
    ])
    def test_adaptive_produces_no_monitored_entries(self, box, attack_cls):
        """Adaptive runs leave nothing outside excluded paths in the log."""
        from repro.keylime.policy import IBM_STYLE_EXCLUDES, RuntimePolicy

        policy = RuntimePolicy(excludes=list(IBM_STYLE_EXCLUDES))
        attack = attack_cls()
        report = attack.run(box, AttackMode.ADAPTIVE)
        interesting = set(report.artifacts) - set(report.decoys)
        for entry_path in report.measured_paths:
            if entry_path in interesting:
                assert policy.is_excluded(entry_path), (
                    f"{attack.name} leaked {entry_path} into a monitored path"
                )


class TestSpecificBehaviours:
    def test_avoslocker_encrypts(self, box):
        AvosLocker().run(box, AttackMode.BASIC)
        assert box.vfs.exists("/var/backups/db-dump.sql.avos")
        assert not box.vfs.exists("/var/backups/db-dump.sql")

    def test_avoslocker_adaptive_uses_decoy(self, box):
        report = AvosLocker().run(box, AttackMode.ADAPTIVE)
        assert report.decoys
        assert Problem.P2_INCOMPLETE_LOG in report.problems_used

    def test_lkm_rootkits_load_modules(self, box):
        Diamorphine().run(box, AttackMode.BASIC)
        assert any(path.endswith("diamorphine.ko") for path in box.loaded_modules)

    def test_lkm_adaptive_module_in_tmp(self, box):
        report = Reptile().run(box, AttackMode.ADAPTIVE)
        module = [a for a in report.artifacts if a.endswith(".ko")][0]
        assert module.startswith("/tmp/")

    def test_vlany_adaptive_moves_library(self, box):
        report = Vlany().run(box, AttackMode.ADAPTIVE)
        assert "/lib/x86_64-linux-gnu/libselinux.so.9" in report.artifacts
        assert Problem.P4_NO_REEVALUATION in report.problems_used

    def test_mirai_adaptive_uses_tmpfs(self, box):
        report = Mirai().run(box, AttackMode.ADAPTIVE)
        assert report.problems_used == (Problem.P3_UNMONITORED_FILESYSTEMS,)
        bot = report.artifacts[0]
        assert bot.startswith("/dev/shm/")
        assert bot not in box.require_booted().measured_paths()

    def test_aoyama_adaptive_is_fileless(self, box):
        report = Aoyama().run(box, AttackMode.ADAPTIVE)
        assert report.artifacts == []
        assert report.persistence[0].method == "inline"


class TestPersistence:
    def test_exec_persistence_relaunches(self, box):
        box.install_file("/usr/bin/bot", b"bot", executable=True)
        spec = PersistenceSpec(method="exec", path="/usr/bin/bot")
        result = spec.relaunch(box)
        assert result is not None

    def test_missing_file_returns_none(self, box):
        spec = PersistenceSpec(method="exec", path="/usr/bin/gone")
        assert spec.relaunch(box) is None

    def test_module_persistence(self, box):
        box.install_file("/lib/modules/x.ko", b"ko", executable=True)
        spec = PersistenceSpec(method="module", path="/lib/modules/x.ko")
        assert spec.relaunch(box) is not None

    def test_interpreter_persistence(self, box):
        box.install_file("/opt/bot.py", b"code", executable=False)
        spec = PersistenceSpec(
            method="interpreter", path="/opt/bot.py", interpreter="/usr/bin/python3"
        )
        assert spec.relaunch(box) is not None

    def test_inline_persistence(self, box):
        spec = PersistenceSpec(
            method="inline", path="", interpreter="/usr/bin/python3", code="c2()"
        )
        assert spec.relaunch(box) is not None

    def test_unknown_method_raises(self, box):
        spec = PersistenceSpec(method="warp", path="/x")
        with pytest.raises(ValueError):
            spec.relaunch(box)

    def test_tmp_persistence_gone_after_reboot(self, box):
        report = MortemQbot().run(box, AttackMode.ADAPTIVE)
        box.reboot()
        results = [spec.relaunch(box) for spec in report.persistence]
        assert all(result is None for result in results)
