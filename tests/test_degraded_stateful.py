"""Stateful model-based test of the verifier's degraded-mode lifecycle.

Hypothesis drives a real :class:`KeylimeVerifier` through random
interleavings of clean polls, transport-degraded polls, integrity
failures, ``stop_polling`` and ``restart_attestation``, and checks it
step-by-step against a plain-dict reference model of the intended
state machine:

    ATTESTING --degraded--> SUSPECT --clean poll--> ATTESTING
    ATTESTING --degraded (window budget spent)--> QUARANTINED
    any pollable --integrity--> FAILED
    ATTESTING/SUSPECT --stop_polling--> STOPPED
    anything --restart_attestation--> ATTESTING (fresh budget)

The interesting edges this guards (beyond the happy path):

* ``stop_polling`` never rewrites FAILED or QUARANTINED to STOPPED --
  a verdict or an escalation survives the operator cancelling the
  schedule (the PR-3 edge, generalised to the new state set).
* ``suspect_windows`` increments only on the ATTESTING -> SUSPECT
  entry, never while already SUSPECT, so the quarantine budget counts
  distinct outage windows, not degraded rounds.
* QUARANTINED is reached at *exactly* ``quarantine_after`` windows.
* Every poll of a pollable node appends a result -- the per-step form
  of the "no silent gap" invariant.
"""

from __future__ import annotations

import os
import sys

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.common.clock import Scheduler
from repro.common.errors import IntegrityError, TransientTransportError
from repro.common.rng import SeededRng
from repro.keylime.audit import AuditLog
from repro.keylime.retrypolicy import RetryPolicy
from repro.keylime.verifier import POLLABLE_STATES, AgentState, KeylimeVerifier

sys.path.insert(0, os.path.dirname(__file__))

_RIG = None


def _rig():
    """One shared testbed (machine + registered agent); verifiers are
    cheap and built fresh per machine instance."""
    global _RIG
    if _RIG is None:
        from conftest import small_config
        from repro.experiments.testbed import build_testbed

        _RIG = build_testbed(small_config("degraded-stateful-rig"))
    return _RIG


class _ModeAgent:
    """Wraps the real agent; ``attest`` obeys a switchable fault mode."""

    def __init__(self, inner):
        self._inner = inner
        self.mode = "ok"

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def attest(self, *args, **kwargs):
        if self.mode == "transient":
            raise TransientTransportError("stateful: injected drop", kind="drop")
        if self.mode == "integrity":
            raise IntegrityError("stateful: injected tamper")
        return self._inner.attest(*args, **kwargs)


class DegradedModeMachine(RuleBasedStateMachine):
    QUARANTINE_AFTER = 3

    def __init__(self):
        super().__init__()
        rig = _rig()
        self.scheduler = Scheduler()
        self.verifier = KeylimeVerifier(
            rig.registrar,
            self.scheduler,
            SeededRng("degraded-stateful-verifier"),
            audit=AuditLog(),
            retry_policy=RetryPolicy(max_attempts=2),
            quarantine_after=self.QUARANTINE_AFTER,
        )
        self.agent = _ModeAgent(rig.agent)
        self.agent_id = rig.agent.agent_id
        self.verifier.add_agent(self.agent, rig.policy)
        # Install a real cancel handle so stop_polling's state edge is
        # exercised (the schedule itself never fires: we poll directly).
        self.verifier.start_polling(self.agent_id, interval=600.0)
        # Reference model.
        self.model_state = AgentState.ATTESTING
        self.model_windows = 0
        self.model_suspect_since_set = False
        self.model_handle = True
        self.model_results = 0

    # -- driving ----------------------------------------------------------

    def _poll(self):
        """Mirror the periodic tick's guard: only pollable nodes poll."""
        if self.verifier.state_of(self.agent_id) not in POLLABLE_STATES:
            return None
        self.scheduler.clock.advance_by(60.0)
        result = self.verifier.poll(self.agent_id)
        self.model_results += 1
        return result

    @rule()
    def poll_clean(self):
        self.agent.mode = "ok"
        result = self._poll()
        if result is None:
            return
        assert result.ok and not result.transient
        if self.model_state is AgentState.SUSPECT:
            # Recovery: back to ATTESTING, window budget NOT refunded.
            self.model_state = AgentState.ATTESTING
            self.model_suspect_since_set = False

    @rule()
    def poll_degraded(self):
        self.agent.mode = "transient"
        result = self._poll()
        if result is None:
            return
        # Degraded, never a verdict: no failures, budget fully burned.
        assert result.transient and not result.ok
        assert result.failures == ()
        assert result.retry_attempts == self.verifier.retry_policy.max_attempts - 1
        if self.model_state is AgentState.ATTESTING:
            self.model_windows += 1
            self.model_suspect_since_set = True
            if self.model_windows >= self.QUARANTINE_AFTER:
                self.model_state = AgentState.QUARANTINED
                self.model_handle = False  # quarantine cancels the schedule
            else:
                self.model_state = AgentState.SUSPECT
        # Already SUSPECT: stays SUSPECT, window count unchanged.

    @rule()
    def poll_tampered(self):
        self.agent.mode = "integrity"
        result = self._poll()
        if result is None:
            return
        # An integrity error is a verdict, never retried or degraded.
        assert not result.ok and not result.transient
        assert result.failures
        self.model_state = AgentState.FAILED

    @rule()
    def stop_polling(self):
        self.verifier.stop_polling(self.agent_id)
        if self.model_handle:
            self.model_handle = False
            # Only a still-pollable node becomes STOPPED; FAILED and
            # QUARANTINED survive the cancel untouched.
            if self.model_state in (AgentState.ATTESTING, AgentState.SUSPECT):
                self.model_state = AgentState.STOPPED

    @rule()
    def restart_attestation(self):
        self.verifier.restart_attestation(self.agent_id)
        self.model_state = AgentState.ATTESTING
        self.model_windows = 0
        self.model_suspect_since_set = False
        # restart does NOT reinstall the schedule: model_handle unchanged.

    # -- invariants -------------------------------------------------------

    @invariant()
    def state_matches_model(self):
        assert self.verifier.state_of(self.agent_id) is self.model_state

    @invariant()
    def window_budget_matches_model(self):
        slot = self.verifier._slot(self.agent_id)
        assert slot.suspect_windows == self.model_windows
        assert (slot.suspect_since is not None) == self.model_suspect_since_set
        assert slot.suspect_windows <= self.QUARANTINE_AFTER

    @invariant()
    def quarantine_means_budget_exactly_spent(self):
        if self.model_state is AgentState.QUARANTINED:
            slot = self.verifier._slot(self.agent_id)
            assert slot.suspect_windows == self.QUARANTINE_AFTER

    @invariant()
    def failed_has_evidence(self):
        if self.model_state is AgentState.FAILED:
            assert self.verifier.failures_of(self.agent_id)

    @invariant()
    def no_silent_gap(self):
        # Every poll of a pollable node produced a recorded result.
        assert len(self.verifier.results_of(self.agent_id)) == self.model_results

    @invariant()
    def handle_matches_model(self):
        slot = self.verifier._slot(self.agent_id)
        assert (slot.stop_polling is not None) == self.model_handle


TestDegradedStateful = DegradedModeMachine.TestCase
TestDegradedStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
