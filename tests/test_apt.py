"""Tests for the apt-like installer."""

import pytest

from repro.distro.apt import AptInstaller
from repro.distro.package import Package, PackageFile, Priority, make_kernel_package
from repro.kernelsim.kernel import Machine


def _pkg(name: str, version: str, executable: bool = True) -> Package:
    return Package(
        name=name, version=version, priority=Priority.OPTIONAL,
        files=(
            PackageFile(f"/usr/bin/{name}", executable),
            PackageFile(f"/usr/share/doc/{name}/readme", False),
        ),
    )


@pytest.fixture()
def apt(machine: Machine) -> AptInstaller:
    return AptInstaller(machine)


class TestInstall:
    def test_install_writes_files(self, apt, machine):
        package = _pkg("tool", "1.0")
        written = apt.install(package)
        assert written == 2
        assert machine.vfs.read_file("/usr/bin/tool") == package.content_of("/usr/bin/tool")
        assert machine.vfs.stat("/usr/bin/tool").executable

    def test_install_tracks_version(self, apt):
        apt.install(_pkg("tool", "1.0"))
        assert apt.installed_version("tool") == "1.0"
        assert apt.is_installed("tool")

    def test_install_baseline(self, apt):
        total = apt.install_baseline([_pkg("a", "1"), _pkg("b", "1")])
        assert total == 4
        assert apt.is_installed("a") and apt.is_installed("b")

    def test_upgrade_changes_content(self, apt, machine):
        apt.install(_pkg("tool", "1.0"))
        before = machine.vfs.read_file("/usr/bin/tool")
        apt.install(_pkg("tool", "2.0"))
        assert machine.vfs.read_file("/usr/bin/tool") != before

    def test_upgrade_bumps_iversion(self, apt, machine):
        apt.install(_pkg("tool", "1.0"))
        v1 = machine.vfs.stat("/usr/bin/tool").iversion
        apt.install(_pkg("tool", "2.0"))
        assert machine.vfs.stat("/usr/bin/tool").iversion > v1

    def test_kernel_install_sets_pending(self, apt, machine):
        kernel = make_kernel_package("9.9.9-generic", module_count=2)
        apt.install(kernel.package)
        assert machine.pending_kernel == "9.9.9-generic"

    def test_current_kernel_install_not_pending(self, apt, machine):
        kernel = make_kernel_package(machine.current_kernel, module_count=2)
        apt.install(kernel.package)
        assert machine.pending_kernel is None


class TestUpgradeFrom:
    def test_upgrades_installed_only(self, apt):
        apt.install(_pkg("a", "1.0"))
        source = {"a": _pkg("a", "2.0"), "b": _pkg("b", "1.0")}
        report = apt.upgrade_from(source)
        assert [p.name for p in report.upgraded] == ["a"]
        assert report.newly_installed == ()
        assert not apt.is_installed("b")

    def test_install_new_flag(self, apt):
        apt.install(_pkg("a", "1.0"))
        source = {"a": _pkg("a", "2.0"), "b": _pkg("b", "1.0")}
        report = apt.upgrade_from(source, install_new=True)
        assert [p.name for p in report.newly_installed] == ["b"]

    def test_same_version_skipped(self, apt):
        apt.install(_pkg("a", "1.0"))
        report = apt.upgrade_from({"a": _pkg("a", "1.0")})
        assert report.is_empty

    def test_kernel_pulled_by_metapackage(self, apt, machine):
        """New kernel package names install without install_new."""
        apt.install(make_kernel_package(machine.current_kernel, module_count=1).package)
        new_kernel = make_kernel_package("9.9.9-generic", module_count=1)
        report = apt.upgrade_from({new_kernel.package.name: new_kernel.package})
        assert [p.name for p in report.newly_installed] == [new_kernel.package.name]
        assert machine.pending_kernel == "9.9.9-generic"

    def test_kernel_not_pulled_without_lineage(self, apt):
        """A machine with no kernel package installed follows none."""
        new_kernel = make_kernel_package("9.9.9-generic", module_count=1)
        report = apt.upgrade_from({new_kernel.package.name: new_kernel.package})
        assert report.is_empty

    def test_kernel_pull_disabled(self, apt, machine):
        apt.install(make_kernel_package(machine.current_kernel, module_count=1).package)
        new_kernel = make_kernel_package("9.9.9-generic", module_count=1)
        report = apt.upgrade_from(
            {new_kernel.package.name: new_kernel.package}, install_kernels=False
        )
        assert report.is_empty

    def test_report_counters(self, apt):
        apt.install(_pkg("a", "1.0"))
        report = apt.upgrade_from({"a": _pkg("a", "2.0")})
        assert report.files_written == 2
        assert report.executables_written == 1
        assert report.bytes_downloaded > 0
        assert report.source == "mirror"

    def test_source_label(self, apt):
        apt.install(_pkg("a", "1.0"))
        report = apt.upgrade_from({"a": _pkg("a", "2.0")}, source="official")
        assert report.source == "official"

    def test_packages_property(self, apt):
        apt.install(_pkg("a", "1.0"))
        report = apt.upgrade_from(
            {"a": _pkg("a", "2.0"), "b": _pkg("b", "1.0")}, install_new=True
        )
        assert {p.name for p in report.packages} == {"a", "b"}
