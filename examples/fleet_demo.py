#!/usr/bin/env python3
"""Fleet attestation: one verifier, eight nodes, one shared policy.

Demonstrates the operational story the paper motivates -- cloud
providers attesting *fleets* -- end to end:

1. eight identically provisioned machines, each with its own TPM,
   attest against one mirror-derived runtime policy;
2. a fleet-wide update cycle syncs the mirror once, generates the
   policy delta once, and upgrades every node -- attestation stays
   green throughout (the generator's work is independent of fleet
   size);
3. one node is compromised; only it fails, revocation notifications
   quarantine it, and the hash-chained audit log records the history
   tamper-evidently.

Run:  python examples/fleet_demo.py
"""

from repro.common.clock import Scheduler, days
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import (
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
)
from repro.dynpolicy import DynamicPolicyGenerator
from repro.keylime.fleet import Fleet
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.tpm import TpmManufacturer

FLEET_SIZE = 8


def main() -> None:
    rng = SeededRng("fleet-demo")
    scheduler = Scheduler()
    archive = UbuntuArchive()
    base = build_base_system(rng.fork("base"), n_filler_packages=40, mean_exec_files=8)
    archive.seed(base)
    stream = SyntheticReleaseStream(
        archive, base, rng.fork("stream"),
        ReleaseStreamConfig(
            mean_packages_per_day=6.0, sd_packages_per_day=5.0,
            mean_exec_files_per_package=8.0, kernel_release_every_days=0,
        ),
    )
    mirror = LocalMirror(archive)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(
        list(IBM_STYLE_EXCLUDES), {"5.15.0-91-generic"}
    )

    manufacturer = TpmManufacturer("Infineon", rng.fork("tpm"))
    fleet = Fleet(
        FLEET_SIZE, mirror, manufacturer, scheduler, rng.fork("fleet"), policy
    )
    print(f"provisioned {len(fleet)} nodes; shared policy: "
          f"{policy.line_count()} entries")

    results = fleet.poll_all()
    print(f"initial attestation: {sum(r.ok for r in results.values())}"
          f"/{len(results)} green")

    # A fleet-wide controlled update.
    stream.generate_day(1)
    scheduler.clock.advance_to(days(2))
    report = fleet.run_update_cycle()
    print(f"\nfleet update cycle: {report.policy_report.packages_total} packages, "
          f"{report.policy_report.entries_added} policy entries generated ONCE, "
          f"{report.nodes_updated} nodes upgraded "
          f"({report.files_written_total} files)")
    results = fleet.poll_all()
    print(f"post-update attestation: {sum(r.ok for r in results.values())}"
          f"/{len(results)} green")

    # One node gets compromised.
    victim = fleet.node("node-004")
    victim.machine.install_file("/usr/sbin/cryptominer", b"xmrig", executable=True)
    victim.machine.exec_file("/usr/sbin/cryptominer")
    scheduler.clock.advance_by(60.0)
    fleet.poll_all()

    print("\nafter compromising node-004:")
    for name, state in fleet.status().items():
        marker = "  <-- QUARANTINED" if fleet.quarantine.is_quarantined(
            f"agent-{name}") else ""
        print(f"  {name}: {state}{marker}")
    print(f"healthy nodes: {fleet.healthy_count()}/{len(fleet)}")

    event = fleet.notifier.history[0]
    print(f"\nrevocation notification: agent={event.agent_id} "
          f"reason={event.reason} path={event.path}")

    fleet.audit.verify_chain()
    summary = fleet.audit.tamper_evident_summary()
    print(f"audit trail: {summary['records']} chained records, "
          f"{summary['failures']} failure(s), head={summary['head'][:16]}...")


if __name__ == "__main__":
    main()
