#!/usr/bin/env python3
"""The SNAP false positive and its fix (Section III-B/C).

SNAPs execute inside a confinement whose filesystem root is the snap
image, so IMA records their paths relative to that root: the policy
says ``/snap/core20/1974/usr/bin/chromium`` but the measurement list
says ``/usr/bin/chromium``.  Keylime then cannot match the entry.

This demo triggers the false positive, shows the failing entry, and
applies the paper's fix (a): post-process the policy to duplicate SNAP
entries under their truncated, confinement-relative paths.

Run:  python examples/snap_false_positive.py
"""

from repro.distro.snap import install_snap
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.keylime.policy import build_policy_from_machine


def main() -> None:
    testbed = build_testbed(TestbedConfig(seed="snap-demo"))

    snap = install_snap(
        testbed.machine, "core20", 1974, ["usr/bin/chromium", "usr/bin/snapctl"]
    )
    policy = build_policy_from_machine(testbed.machine)
    testbed.tenant.push_policy(testbed.agent_id, policy)
    print(f"policy rebuilt after snap install: {policy.line_count()} entries")
    print(f"  covers {snap.binary_path('usr/bin/chromium')}: "
          f"{policy.covers_path(snap.binary_path('usr/bin/chromium'))}")

    assert testbed.poll().ok
    print("baseline attestation: green")

    result = snap.run(testbed.machine, "usr/bin/chromium")
    print(f"\nconfined snap execution measured as: {result.entries[0].path!r}")
    poll = testbed.poll()
    print(f"attestation after snap run: ok={poll.ok}")
    for failure in poll.failures:
        print(f"  FALSE POSITIVE: {failure.detail}")
    assert not poll.ok

    added = DynamicPolicyGenerator.scrub_snap_prefixes(policy)
    print(f"\nfix (a): scrubbed snap prefixes, {added} truncated entries added")
    testbed.tenant.resolve_failure(testbed.agent_id, policy)
    poll = testbed.poll()
    print(f"attestation after the fix: ok={poll.ok}")
    assert poll.ok
    print("\nfix (b) per the paper -- simply not installing SNAPs -- needs no code.")


if __name__ == "__main__":
    main()
