#!/usr/bin/env python3
"""The fully hardened update pipeline (paper Section V, realised).

Stacks every trust anchor this repository implements onto the dynamic
policy workflow:

1. the archive signs its package index (InRelease) -- the mirror
   refuses to sync content that does not match the signature;
2. maintainers sign per-package hash manifests -- the policy generator
   verifies and merges them instead of hashing packages itself
   (faster, and a tainted mirror cannot poison the policy);
3. the update cycle runs end to end and attestation stays green;
4. then we tamper with each anchor and watch the pipeline fail closed.

Run:  python examples/hardened_pipeline.py
"""

import dataclasses

from repro.common.clock import days
from repro.common.errors import IntegrityError
from repro.common.rng import SeededRng
from repro.distro.release_signing import ArchiveSigner
from repro.dynpolicy.signedhashes import ManifestAuthority, merge_signed_manifests
from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.keylime.policy import RuntimePolicy


def main() -> None:
    testbed = build_testbed(TestbedConfig(seed="hardened-demo"))
    rng = SeededRng("hardened-demo/keys")

    signer = ArchiveSigner("UbuntuArchive", rng.fork("release"))
    authority = ManifestAuthority("UbuntuMaintainers", rng.fork("manifests"))
    testbed.archive.enable_signing(signer)
    testbed.archive.enable_manifests(authority)
    testbed.orchestrator.archive_release_key = signer.public_key
    testbed.orchestrator.manifest_key = authority.public_key
    print("anchors pinned: archive release key + maintainer manifest key")

    # A normal hardened update cycle.
    testbed.stream.generate_day(1)
    testbed.scheduler.clock.advance_to(days(2))
    report = testbed.orchestrator.run_cycle()
    print(f"\nhardened cycle: {report.policy_report.packages_total} packages, "
          f"{report.policy_report.entries_added} policy entries from signed "
          f"manifests in {report.policy_report.duration_seconds:.1f}s (modelled)")
    testbed.workload.daily(5)
    print(f"attestation: ok={testbed.poll().ok}")

    # Tamper test 1: a forged manifest.
    package = testbed.mirror.packages()[0]
    genuine = authority.sign_package(package)
    forged = dataclasses.replace(
        genuine, measurements={"/usr/bin/backdoor": "ab" * 32}
    )
    probe = RuntimePolicy()
    added, rejected = merge_signed_manifests(
        probe, [forged], authority.public_key, set()
    )
    print(f"\nforged manifest: merged={added}, rejected={len(rejected)} "
          "-- the backdoor hash never enters the policy")

    # Tamper test 2: a replayed (stale) InRelease over fresh content.
    stale = testbed.archive.inrelease_for(testbed.mirror.repositories, 0.0)
    testbed.stream.generate_day(2)
    testbed.archive.inrelease_for = lambda repos, now: stale  # the MITM
    testbed.scheduler.clock.advance_to(days(3))
    try:
        testbed.orchestrator.run_cycle()
        print("sync accepted stale InRelease (unexpected!)")
    except IntegrityError as exc:
        print(f"replayed InRelease: sync ABORTED ({exc})")
        print("the mirror kept its last verified state; attestation "
              f"still ok={testbed.poll().ok}")


if __name__ == "__main__":
    main()
