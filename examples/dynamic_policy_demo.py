#!/usr/bin/env python3
"""Dynamic policy generation over two simulated weeks of OS updates.

Reproduces the paper's Section III-C/D workflow at demo scale: a local
mirror syncs daily at 05:00, the policy generator measures the day's
new/changed packages and appends them to the runtime policy, the policy
is pushed to the verifier, and only then does the machine upgrade --
so attestation never fails, even across a kernel update and its reboot.

The last day injects the paper's one observed failure: the operator
installs from the *official* archive after the mirror sync, pulling
package versions the policy has never seen.

Run:  python examples/dynamic_policy_demo.py
"""

from repro.common.clock import days, hours
from repro.distro.workload import ReleaseStreamConfig
from repro.experiments.testbed import TestbedConfig, build_testbed

N_DAYS = 14
INCIDENT_DAY = 14


def main() -> None:
    config = TestbedConfig(
        seed="dynamic-policy-demo",
        stream=ReleaseStreamConfig(
            mean_packages_per_day=8.0,
            sd_packages_per_day=8.0,
            mean_exec_files_per_package=15.0,
            kernel_release_every_days=6,
        ),
    )
    testbed = build_testbed(config)
    print(f"initial dynamic policy: {testbed.policy.line_count()} entries "
          f"(built from the mirror's {len(testbed.mirror)} packages)")

    for day in range(1, N_DAYS + 1):
        testbed.stream.generate_day(day)
    testbed.orchestrator.schedule_cycles(
        start_day=1, n_cycles=N_DAYS, official_on_days={INCIDENT_DAY},
    )
    testbed.verifier.start_polling(testbed.agent_id, 1800.0)
    testbed.scheduler.every(
        days(1), lambda: testbed.workload.daily(8), start=hours(12),
    )
    testbed.scheduler.run_until(days(N_DAYS + 1))

    print(f"\n{'day':>4} {'pkgs':>5} {'hi-pri':>6} {'entries':>8} "
          f"{'minutes':>8} {'reboot':>7} {'source':>9}")
    for report in testbed.orchestrator.reports:
        pr = report.policy_report
        print(f"{report.day:>4} {pr.packages_total:>5} {pr.packages_high:>6} "
              f"{pr.entries_added:>8} {pr.duration_seconds / 60:>8.2f} "
              f"{'yes' if report.rebooted else '':>7} {report.source:>9}")

    results = testbed.verifier.results_of(testbed.agent_id)
    failures = testbed.verifier.failures_of(testbed.agent_id)
    print(f"\nattestation polls: {len(results)} "
          f"({sum(1 for result in results if result.ok)} green)")
    print(f"machine kernel after the run: {testbed.machine.current_kernel}")

    if failures:
        first = failures[0]
        print(f"\nthe day-{INCIDENT_DAY} operator error fired as expected:")
        print(f"  {first.detail}")
        print("  (installing from the official archive bypassed the mirror,")
        print("   so the policy had never seen those package versions)")
    clean_failures = [f for f in failures if f.time < days(INCIDENT_DAY)]
    print(f"\nfalse positives before the injected error: {len(clean_failures)} "
          "(the paper's 66-day validation saw zero)")


if __name__ == "__main__":
    main()
