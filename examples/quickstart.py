#!/usr/bin/env python3
"""Quickstart: continuous integrity attestation in ~60 lines.

Builds the full stack by hand -- TPM, machine, IMA, Keylime agent /
registrar / verifier -- runs a green attestation, then tampers with a
system binary and watches the verifier catch it.

Run:  python examples/quickstart.py
"""

from repro.common.clock import Scheduler
from repro.common.rng import SeededRng
from repro.keylime import (
    KeylimeAgent,
    KeylimeRegistrar,
    KeylimeTenant,
    KeylimeVerifier,
    build_policy_from_machine,
)
from repro.kernelsim import Machine
from repro.tpm import TpmManufacturer


def main() -> None:
    rng = SeededRng("quickstart")
    scheduler = Scheduler()

    # 1. A TPM manufacturer provisions a device with a certified EK.
    manufacturer = TpmManufacturer("Infineon", rng.fork("tpm"))
    tpm = manufacturer.manufacture()

    # 2. The prover machine boots: measured boot extends PCRs 0-7 and
    #    IMA starts measuring executions into PCR 10.
    machine = Machine("prover", tpm, clock=scheduler.clock)
    machine.boot()
    for tool in ("ls", "cat", "sshd"):
        machine.install_file(f"/usr/bin/{tool}", f"{tool}-v1".encode(), executable=True)

    # 3. The operator snapshots the machine into a runtime policy and
    #    onboards the agent (registrar validates the TPM identity).
    policy = build_policy_from_machine(machine)
    agent = KeylimeAgent("agent-1", machine)
    registrar = KeylimeRegistrar([manufacturer.root_certificate])
    verifier = KeylimeVerifier(registrar, scheduler, rng.fork("verifier"))
    tenant = KeylimeTenant(registrar, verifier)
    tenant.onboard(agent, policy, start_polling=False)
    print(f"onboarded {agent.agent_id}: policy has {policy.line_count()} entries")

    # 4. Normal operation attests green.
    machine.exec_file("/usr/bin/ls")
    machine.exec_file("/usr/bin/sshd")
    result = verifier.poll(agent.agent_id)
    print(f"poll #1: ok={result.ok}, entries verified={result.entries_processed}")
    assert result.ok

    # 5. An attacker replaces sshd; the next execution is measured with
    #    the new hash and the verifier flags the mismatch.
    machine.install_file("/usr/bin/sshd", b"sshd-with-backdoor", executable=True)
    machine.exec_file("/usr/bin/sshd")
    result = verifier.poll(agent.agent_id)
    print(f"poll #2: ok={result.ok}")
    for failure in result.failures:
        print(f"  ALERT: {failure.detail}")
    assert not result.ok

    # 6. Tamper-evidence: the log itself cannot be doctored, because it
    #    must replay to the TPM-signed PCR 10 value.
    print("quote-anchored log replay prevents hiding the entry after the fact")


if __name__ == "__main__":
    main()
