#!/usr/bin/env python3
"""Attack detection: basic vs adaptive attackers, stock vs mitigated.

Runs three of the paper's samples (one per category) against a fresh
Keylime testbed in each configuration and prints what the verifier
actually saw -- reproducing Table II's pattern: Keylime-unaware attacks
are caught, Keylime-aware attacks evade via P1-P5, and the recommended
mitigations close the gap for everything except the pure-interpreter
Aoyama.

Run:  python examples/attack_detection.py
"""

from repro.attacks import AttackMode
from repro.attacks.botnets import Aoyama, Mirai
from repro.attacks.ransomware import AvosLocker
from repro.attacks.rootkits import Diamorphine
from repro.experiments.fn_matrix import run_attack_trial
from repro.experiments.testbed import TestbedConfig

SAMPLES = [AvosLocker(), Diamorphine(), Mirai(), Aoyama()]


def main() -> None:
    print(f"{'sample':<14} {'mode':<9} {'ruleset':<10} "
          f"{'detected':<9} {'alerting paths'}")
    print("-" * 78)
    for sample in SAMPLES:
        for mode in (AttackMode.BASIC, AttackMode.ADAPTIVE):
            for mitigated in (False, True):
                if mode is AttackMode.BASIC and mitigated:
                    continue  # basic attacks are already caught stock
                trial = run_attack_trial(
                    sample, mode, mitigated=mitigated,
                    config=TestbedConfig(
                        seed=f"demo/{sample.name}/{mode.value}/{mitigated}"
                    ),
                )
                verdict = "YES" if trial.detected_live else (
                    "reboot" if trial.detected_after_reboot else "no"
                )
                paths = ", ".join(trial.failing_paths[:2]) or "-"
                print(f"{sample.name:<14} {mode.value:<9} "
                      f"{trial.ruleset:<10} {verdict:<9} {paths}")

    print("\nreading the table:")
    print(" * basic attacks drop unknown executables in monitored paths ->")
    print("   the IMA measurement misses the allowlist and Keylime alerts;")
    print(" * adaptive attacks exploit P1 (/tmp excluded), P3 (tmpfs never")
    print("   measured), P4 (no re-measure after mv) and P5 (interpreter")
    print("   invocation) -> the verifier sees nothing attributable;")
    print(" * with M1-M4 applied, every sample except Aoyama is caught --")
    print("   Aoyama pipes its payload into python3 inline, so no file-based")
    print("   measurement (even script execution control) can observe it.")


if __name__ == "__main__":
    main()
