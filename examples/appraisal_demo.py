#!/usr/bin/env python3
"""IMA appraisal: from detecting attacks to preventing them.

The paper studies IMA's *measurement* mode -- everything runs, a remote
verifier judges after the fact, and P1-P5 show how judgement can be
evaded.  Real IMA also offers *appraisal*: every executable carries a
maintainer signature in its ``security.ima`` xattr and the kernel
refuses to run anything unsigned.  This demo shows both sides of that
trade:

1. a fully signed system boots, attests, and runs normally under
   enforcement;
2. every file-dropping attack from the paper's corpus is blocked
   outright -- before any measurement or verifier is even involved;
3. the pure-interpreter attack (Aoyama) still executes: P5's deepest
   form defeats fail-closed enforcement too;
4. the operational catch: an updated-but-unsigned binary bricks itself,
   which is why appraisal demands the signed-update pipeline of
   Section V (see the signed-hashes ablation bench).

Run:  python examples/appraisal_demo.py
"""

from repro.attacks import AttackMode
from repro.attacks.botnets import Aoyama, Mirai
from repro.common.rng import SeededRng
from repro.crypto.rsa import generate_keypair
from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.kernelsim.appraisal import AppraisalDenied, sign_all_executables


def main() -> None:
    testbed = build_testbed(TestbedConfig(seed="appraisal-demo"))
    machine = testbed.machine

    # Provision first (local scripts included), then sign EVERYTHING on
    # disk, then flip enforcement on -- the order matters: anything
    # created after signing will refuse to run, as step 4 shows.
    testbed.workload.daily(2)
    distro_key = generate_keypair(SeededRng("appraisal-demo/key"), bits=1024)
    signed = sign_all_executables(machine.vfs, distro_key, "UbuntuIMA")
    machine.appraisal.enforce = True
    machine.appraisal.trust_key(distro_key.public)
    print(f"signed {signed} executables; appraisal ENFORCING")

    testbed.workload.daily(5)
    print(f"signed system under enforcement: attestation ok={testbed.poll().ok}")

    print("\n-- Mirai, basic deployment --")
    try:
        Mirai().run(machine, AttackMode.BASIC)
        print("bot executed (unexpected!)")
    except AppraisalDenied as exc:
        print(f"BLOCKED before execution: {exc}")

    print("\n-- Aoyama, adaptive (inline python payload) --")
    report = Aoyama().run(machine, AttackMode.ADAPTIVE)
    print(f"executed: {bool(report.executions)} -- no file crossed an exec "
          "boundary, so there was nothing to appraise (P5)")

    print("\n-- the operational catch --")
    machine.vfs.write_file(
        "/usr/bin/sha256sum",
        b"legit update, but nobody re-signed it",
        executable=True,
    )
    try:
        machine.exec_file("/usr/bin/sha256sum")
    except AppraisalDenied as exc:
        print(f"legitimate update now refuses to run: {exc}")
        print("=> enforcement requires maintainer-signed updates end to end")
        print("   (the paper's Section V proposal; see "
              "benchmarks/bench_ablation_signed_hashes.py)")


if __name__ == "__main__":
    main()
