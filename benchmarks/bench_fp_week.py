"""E1 / Section III-B: the false-positive week against a static policy.

Prints the FP root-cause breakdown and benchmarks a verifier poll over
a dirty batch (the operation whose failures the week catalogues).

Paper narrative: alerts during a benign week come from (a) system
updates -- hash mismatches and files missing from the policy -- and
(b) SNAP path truncation.
"""

from __future__ import annotations

from repro.analysis import render_fp_week
from repro.experiments.testbed import build_testbed, TestbedConfig


def test_fp_week_causes(benchmark, emit, fp_week_result):
    # Benchmark: one poll over a batch containing a policy mismatch.
    testbed = build_testbed(TestbedConfig(seed="fp-bench", continue_on_failure=True))
    testbed.poll()

    counter = {"n": 0}

    def dirty_poll():
        counter["n"] += 1
        path = f"/usr/bin/unknown-{counter['n']}"
        testbed.machine.install_file(path, b"x" * 64, executable=True)
        testbed.machine.exec_file(path)
        return testbed.poll()

    result = benchmark.pedantic(dirty_poll, rounds=25, iterations=1)
    assert not result.ok

    emit()
    emit(render_fp_week(fp_week_result))
    causes = fp_week_result.counts_by_cause
    assert causes.get("update_hash_mismatch", 0) > 0, "updates must cause FPs"
    assert causes.get("update_new_file", 0) > 0, "new files must cause FPs"
    assert causes.get("snap_truncation", 0) >= 1, "SNAP truncation must cause FPs"
    emit(
        "\npaper: FPs during benign operation stem from OS updates "
        "(hash mismatch / missing file) and SNAP path truncation -- "
        "all three causes reproduced above."
    )
