"""Extension bench: fleet-scale attestation and amortised updates.

Not a paper figure -- the paper runs one VM -- but its motivation is
fleet-scale attestation, so this bench quantifies the two scaling
claims the design rests on:

* attestation cost grows linearly with fleet size (one quote + replay
  per node per poll);
* dynamic-policy generation cost is *independent* of fleet size (one
  mirror sync + one delta, shared by every node).
"""

from __future__ import annotations

from repro.common.clock import Scheduler, days
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import (
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
)
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.fleet import Fleet
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.tpm.device import TpmManufacturer


def _build_fleet(size: int):
    rng = SeededRng(f"fleet-bench-{size}")
    scheduler = Scheduler()
    archive = UbuntuArchive()
    base = build_base_system(rng.fork("base"), n_filler_packages=20, mean_exec_files=5)
    archive.seed(base)
    stream = SyntheticReleaseStream(
        archive, base, rng.fork("stream"),
        ReleaseStreamConfig(
            mean_packages_per_day=5.0, sd_packages_per_day=3.0,
            mean_exec_files_per_package=5.0, kernel_release_every_days=0,
        ),
    )
    mirror = LocalMirror(archive)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(
        list(IBM_STYLE_EXCLUDES), {"5.15.0-91-generic"}
    )
    manufacturer = TpmManufacturer("Bench", rng.fork("tpm"))
    fleet = Fleet(size, mirror, manufacturer, scheduler, rng.fork("fleet"), policy)
    return fleet, stream, scheduler


def test_fleet_poll_scaling(benchmark, emit):
    fleet, _, _ = _build_fleet(8)
    fleet.poll_all()  # prime: first poll replays the whole log

    results = benchmark(fleet.poll_all)
    assert all(result.ok for result in results.values())

    emit()
    emit("Fleet attestation scaling (steady-state poll of the whole fleet)")
    for size in (2, 8):
        other, stream, scheduler = _build_fleet(size)
        other.poll_all()
        stream.generate_day(1)
        scheduler.clock.advance_to(days(2))
        report = other.run_update_cycle()
        emit(
            f"  fleet={size}: policy delta computed once "
            f"({report.policy_report.packages_total} pkgs, "
            f"{report.policy_report.entries_added} entries), "
            f"{report.nodes_updated} nodes upgraded, all green="
            f"{all(r.ok for r in other.poll_all().values())}"
        )
    emit(
        "  generator work per cycle is independent of fleet size; only the\n"
        "  per-node apt fan-out and polling scale with N."
    )
