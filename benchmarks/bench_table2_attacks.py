"""E7 / Table II: the 8-attack detection matrix.

Prints the reproduced Table II (stock basic/adaptive verdicts, the
P1-P5 dot matrix, and the post-mitigation outcome) and benchmarks one
full attack trial (fresh testbed + attack + verdict).

Paper targets: basic 8/8 detected; adaptive 0/8 detected; with the
recommended mitigations 7/8 detectable (Aoyama never, because its
payload runs inline through the Python interpreter).
"""

from __future__ import annotations

from repro.analysis import render_table2
from repro.attacks import AttackMode
from repro.attacks.botnets import Mirai
from repro.experiments.fn_matrix import run_attack_trial
from repro.experiments.testbed import TestbedConfig


def test_table2_attack_matrix(benchmark, emit, stock_matrix, mitigated_matrix):
    def one_trial():
        return run_attack_trial(
            Mirai(), AttackMode.BASIC, mitigated=False,
            config=TestbedConfig(seed="table2-bench"),
        )

    trial = benchmark.pedantic(one_trial, rounds=3, iterations=1)
    assert trial.detected_live

    emit()
    emit(render_table2(stock_matrix, mitigated_matrix))

    # The paper's three headline numbers.
    basic_detected = stock_matrix.detected_count(AttackMode.BASIC)
    adaptive_live = sum(
        1 for t in stock_matrix.trials
        if t.mode is AttackMode.ADAPTIVE and t.detected_live
    )
    mitigated_detected = mitigated_matrix.detected_count(AttackMode.ADAPTIVE)
    assert basic_detected == 8, "paper: all 8 basic attacks detected"
    assert adaptive_live == 0, "paper: all 8 adaptive attacks evade"
    assert mitigated_detected == 7, "paper: 7/8 detectable after mitigations"
    aoyama = mitigated_matrix.trial("Aoyama", AttackMode.ADAPTIVE)
    assert not aoyama.detected, "paper: Aoyama evades even the mitigations"
    emit(
        "\nreproduced: basic 8/8 detected, adaptive 0/8 detected (stock), "
        "7/8 detected after M1-M4 with Aoyama evading -- matching Table II."
    )
