"""Extension bench: policy-engine behaviour at production scale.

The paper's day-1 policy is 323,734 lines (46 MB).  For continuous
attestation to be viable, per-entry policy evaluation must not degrade
with policy size, and (de)serialising the policy must stay tractable.
This bench builds a paper-scale policy and measures both.
"""

from __future__ import annotations

import time

from repro.common.units import format_bytes, format_duration
from repro.keylime.policy import IBM_STYLE_EXCLUDES, RuntimePolicy
from repro.kernelsim.ima import ImaLogEntry, template_hash

PAPER_SCALE_LINES = 323_734


def _build_policy(lines: int) -> RuntimePolicy:
    policy = RuntimePolicy(excludes=list(IBM_STYLE_EXCLUDES))
    measurements = {
        f"/usr/lib/pkg{i // 77:05d}/exec-{i % 77:03d}": format(i, "064x")
        for i in range(lines)
    }
    policy.merge_measurements(measurements)
    return policy


def _entry_for(policy: RuntimePolicy, path: str) -> ImaLogEntry:
    digest = "sha256:" + policy.digests_for(path)[0]
    return ImaLogEntry(
        pcr=10, template_hash=template_hash(digest, path),
        template="ima-ng", filedata_hash=digest, path=path,
    )


def test_policy_scale(benchmark, emit):
    policy = _build_policy(PAPER_SCALE_LINES)
    probe = _entry_for(policy, "/usr/lib/pkg02102/exec-042")

    verdict, failure = benchmark(lambda: policy.evaluate_entry(probe))
    assert failure is None

    emit()
    emit("Policy engine at the paper's production scale")
    emit(f"  policy size: {policy.line_count():,} lines "
         f"({format_bytes(policy.size_bytes())}; paper: 323,734 lines / 46 MB)")

    started = time.perf_counter()
    blob = policy.to_json()
    serialise_seconds = time.perf_counter() - started
    started = time.perf_counter()
    RuntimePolicy.from_json(blob)
    parse_seconds = time.perf_counter() - started
    emit(f"  serialise: {format_duration(serialise_seconds)} "
         f"({format_bytes(len(blob))} JSON); parse: {format_duration(parse_seconds)}")
    emit("  per-entry evaluation is O(1) dict lookup -- see the benchmark")
    emit("  table row for the measured sub-microsecond figure.")
    assert serialise_seconds < 30
    assert parse_seconds < 30
