"""Extension bench: policy-engine behaviour at production scale.

The paper's day-1 policy is 323,734 lines (46 MB).  For continuous
attestation to be viable, per-entry policy evaluation must not degrade
with policy size, and (de)serialising the policy must stay tractable.
This bench builds a paper-scale policy and measures both.

Smoke mode (``REPRO_BENCH_SMOKE=1`` under pytest, ``--smoke`` under the
harness) builds a 20k-line policy instead; previously this bench had no
smoke shape and CI paid the full 46 MB build on every run.
"""

from __future__ import annotations

import time

from common import bench_mode, pick
from repro.common.units import format_bytes, format_duration
from repro.keylime.policy import IBM_STYLE_EXCLUDES, RuntimePolicy
from repro.kernelsim.ima import ImaLogEntry, template_hash
from repro.obs.perf import BenchMetric, register_bench

MODE = bench_mode()
PAPER_SCALE_LINES = 323_734

#: Evaluation calls timed by the harness core (pytest uses the
#: ``benchmark`` fixture's own calibration instead).
EVAL_LOOPS = 20_000


def _n_lines(mode: str) -> int:
    return pick(mode, 20_000, PAPER_SCALE_LINES)


def _build_policy(lines: int) -> RuntimePolicy:
    policy = RuntimePolicy(excludes=list(IBM_STYLE_EXCLUDES))
    measurements = {
        f"/usr/lib/pkg{i // 77:05d}/exec-{i % 77:03d}": format(i, "064x")
        for i in range(lines)
    }
    policy.merge_measurements(measurements)
    return policy


def _entry_for(policy: RuntimePolicy, path: str) -> ImaLogEntry:
    digest = "sha256:" + policy.digests_for(path)[0]
    return ImaLogEntry(
        pcr=10, template_hash=template_hash(digest, path),
        template="ima-ng", filedata_hash=digest, path=path,
    )


def _probe_path(lines: int) -> str:
    """An existing mid-policy path, valid at any policy size."""
    probe = lines // 2
    return f"/usr/lib/pkg{probe // 77:05d}/exec-{probe % 77:03d}"


def _roundtrip_seconds(policy: RuntimePolicy) -> tuple[float, float, int]:
    """(serialise seconds, parse seconds, JSON bytes)."""
    started = time.perf_counter()
    blob = policy.to_json()
    serialise_s = time.perf_counter() - started
    started = time.perf_counter()
    RuntimePolicy.from_json(blob)
    parse_s = time.perf_counter() - started
    return serialise_s, parse_s, len(blob)


def run_bench(mode: str, seed: str) -> dict[str, float]:
    """Harness core: eval latency + (de)serialisation at scale.

    ``policy_lines`` / ``policy_bytes`` are pure functions of the mode
    (the synthetic measurement set is fixed, no RNG at all), so they
    compare exactly across runs -- byte drift means the serialisation
    format changed.
    """
    lines = _n_lines(mode)
    policy = _build_policy(lines)
    probe = _entry_for(policy, _probe_path(lines))

    start = time.perf_counter()
    for _ in range(EVAL_LOOPS):
        verdict, failure = policy.evaluate_entry(probe)
    eval_s = time.perf_counter() - start
    assert failure is None

    serialise_s, parse_s, blob_bytes = _roundtrip_seconds(policy)
    return {
        "eval_us_per_entry": eval_s / EVAL_LOOPS * 1e6,
        "serialise_s": serialise_s,
        "parse_s": parse_s,
        "policy_lines": float(policy.line_count()),
        "policy_bytes": float(blob_bytes),
    }


register_bench(
    "policy_scale",
    [
        BenchMetric("eval_us_per_entry", "us", "lower",
                    "per-entry policy evaluation latency"),
        BenchMetric("serialise_s", "s", "lower",
                    "whole-policy JSON serialisation time"),
        BenchMetric("parse_s", "s", "lower",
                    "whole-policy JSON parse time"),
        BenchMetric("policy_lines", "lines", "lower",
                    "deterministic policy line count for the mode"),
        BenchMetric("policy_bytes", "B", "lower",
                    "deterministic serialised policy size"),
    ],
    run_bench,
    seed="policy-scale",
    description="Policy engine at the paper's production scale",
)


def test_policy_scale(benchmark, emit):
    lines = _n_lines(MODE)
    smoke = MODE == "smoke"
    policy = _build_policy(lines)
    probe = _entry_for(policy, _probe_path(lines))

    verdict, failure = benchmark(lambda: policy.evaluate_entry(probe))
    assert failure is None

    emit()
    emit("Policy engine at the paper's production scale"
         f"{' (smoke: scaled down)' if smoke else ''}")
    emit(f"  policy size: {policy.line_count():,} lines "
         f"({format_bytes(policy.size_bytes())}; paper: 323,734 lines / 46 MB)")

    serialise_s, parse_s, blob_bytes = _roundtrip_seconds(policy)
    emit(f"  serialise: {format_duration(serialise_s)} "
         f"({format_bytes(blob_bytes)} JSON); parse: {format_duration(parse_s)}")
    emit("  per-entry evaluation is O(1) dict lookup -- see the benchmark")
    emit("  table row for the measured sub-microsecond figure.")
    assert serialise_s < 30
    assert parse_s < 30
