"""Ablation: static policy vs dynamic policy generation.

DESIGN.md section 5: the paper's core comparison, quantified on one
identical update stream -- how many failed attestation polls each
policy strategy produces over a week of unattended/controlled updates.
"""

from __future__ import annotations

from repro.common.clock import days, hours
from repro.experiments.testbed import build_testbed, TestbedConfig


def _run(policy_mode: str, n_days: int = 7) -> tuple[int, int]:
    testbed = build_testbed(TestbedConfig(
        seed="ablation-static", policy_mode=policy_mode, continue_on_failure=True,
    ))
    for day in range(1, n_days + 1):
        testbed.stream.generate_day(day)

    if policy_mode == "dynamic":
        testbed.orchestrator.schedule_cycles(start_day=1, n_cycles=n_days)
    else:
        def unattended() -> None:
            testbed.archive.apply_releases_until(testbed.scheduler.clock.now)
            report = testbed.apt.upgrade_from(
                testbed.archive.latest_index(), source="official"
            )
            if not report.is_empty:
                testbed.workload.exec_updated_files(report)

        for day in range(1, n_days + 1):
            testbed.scheduler.call_at(days(day) + hours(6.5), unattended)

    testbed.verifier.start_polling(testbed.agent_id, 1800.0)
    testbed.scheduler.every(days(1), lambda: testbed.workload.daily(5), start=hours(12))
    testbed.scheduler.run_until(days(n_days + 1))
    results = testbed.verifier.results_of(testbed.agent_id)
    failed = sum(1 for result in results if not result.ok)
    return failed, len(results)


def test_ablation_static_vs_dynamic(benchmark, emit):
    failed_dynamic, total_dynamic = benchmark.pedantic(
        lambda: _run("dynamic", n_days=3), rounds=1, iterations=1
    )

    failed_static, total_static = _run("static")
    failed_dyn7, total_dyn7 = _run("dynamic")

    emit()
    emit("Ablation: policy strategy over one week of updates")
    emit(f"  static policy:  {failed_static}/{total_static} polls failed (false positives)")
    emit(f"  dynamic policy: {failed_dyn7}/{total_dyn7} polls failed")
    assert failed_static > 0, "static policy must rot under updates"
    assert failed_dyn7 == 0, "dynamic policy must stay green"
