"""Extension bench: detection latency vs polling cadence.

The paper positions Keylime as an *alert system*: detection happens at
the next successful poll after the malicious measurement, so the
operationally relevant number is the gap between compromise and alert.
This bench strikes at randomized offsets within the polling period and
reports the latency distribution for several cadences -- quantifying
the "what happens between polls" residual gap noted in
docs/THREATMODEL.md.
"""

from __future__ import annotations

from repro.attacks import AttackMode
from repro.attacks.botnets import Mirai
from repro.common.units import format_duration, summarize
from repro.experiments.testbed import build_testbed, TestbedConfig
from repro.keylime.verifier import AgentState


def _latency_for(interval: float, strike_fraction: float, seed: str) -> float:
    """Seconds from attack execution to the failing poll."""
    testbed = build_testbed(TestbedConfig(seed=seed))
    testbed.verifier.start_polling(testbed.agent_id, interval)
    testbed.scheduler.run_until(interval * 2.5)  # steady state

    strike_time = testbed.scheduler.clock.now + interval * strike_fraction
    testbed.scheduler.call_at(
        strike_time,
        lambda: Mirai().run(testbed.machine, AttackMode.BASIC),
        label="strike",
    )
    testbed.scheduler.run_until(strike_time + interval * 2)
    assert testbed.verifier.state_of(testbed.agent_id) is AgentState.FAILED
    failure = testbed.verifier.failures_of(testbed.agent_id)[0]
    return failure.time - strike_time


def test_detection_latency(benchmark, emit):
    latency = benchmark.pedantic(
        lambda: _latency_for(600.0, 0.5, "latency-bench"), rounds=3, iterations=1
    )
    assert latency >= 0

    emit()
    emit("Detection latency vs polling cadence (Mirai, basic)")
    fractions = [0.1, 0.3, 0.5, 0.7, 0.9]
    for interval in (60.0, 600.0, 3600.0):
        latencies = [
            _latency_for(interval, fraction, f"latency/{interval}/{fraction}")
            for fraction in fractions
        ]
        stats = summarize(latencies)
        emit(
            f"  poll every {format_duration(interval):>8}: latency mean="
            f"{format_duration(stats['mean'])}, max={format_duration(stats['max'])}"
        )
        assert stats["max"] <= interval + 1.0, "alert must land by the next poll"
    emit("  detection always lands at the first poll after the strike:")
    emit("  mean latency ~= half the polling period, worst case one period --")
    emit("  the window the paper's P2 exploit deliberately stretches to infinity.")
