"""Microbenchmarks of the attestation hot path.

Not a paper artifact -- these keep an eye on the cost of the operations
the long-run experiments execute tens of thousands of times: TPM
quoting, quote verification, the full verifier poll, IMA measurement,
and policy evaluation.
"""

from __future__ import annotations

import pytest

from repro.common.hexutil import extend_digest, sha256_hex, zero_digest
from repro.experiments.testbed import build_testbed, TestbedConfig
from repro.kernelsim.ima import ImaLogEntry, template_hash
from repro.tpm.quote import verify_quote


@pytest.fixture(scope="module")
def rig():
    testbed = build_testbed(TestbedConfig(seed="micro"))
    testbed.poll()
    return testbed


def test_micro_pcr_extend(benchmark):
    value = sha256_hex(b"entry")
    current = zero_digest("sha256")
    benchmark(lambda: extend_digest("sha256", current, value))


def test_micro_tpm_quote(benchmark, rig):
    tpm = rig.machine.tpm
    ak_fingerprint = rig.agent.attestation_key.public.fingerprint()
    quote = benchmark(lambda: tpm.quote(ak_fingerprint, "nonce", [10]))
    assert quote.pcr_values


def test_micro_quote_verification(benchmark, rig):
    tpm = rig.machine.tpm
    ak = rig.agent.attestation_key
    quote = tpm.quote(ak.public.fingerprint(), "nonce", [10])
    benchmark(lambda: verify_quote(quote, ak.public, "nonce"))


def test_micro_verifier_poll_steady_state(benchmark, rig):
    result = benchmark(lambda: rig.poll())
    assert result.ok


def test_micro_ima_measurement(benchmark, rig):
    machine = rig.machine
    counter = {"n": 0}

    def measure_fresh_file():
        counter["n"] += 1
        path = f"/tmp/micro-{counter['n']}"
        machine.install_file(path, b"payload", executable=True)
        return machine.exec_file(path)

    result = benchmark.pedantic(measure_fresh_file, rounds=200, iterations=1)
    assert result.measured


def test_micro_policy_evaluation(benchmark, rig):
    policy = rig.policy
    path, digests = next(iter(policy.digests.items()))
    filedata = "sha256:" + digests[0]
    entry = ImaLogEntry(
        pcr=10, template_hash=template_hash(filedata, path),
        template="ima-ng", filedata_hash=filedata, path=path,
    )
    verdict, failure = benchmark(lambda: policy.evaluate_entry(entry))
    assert failure is None
