"""Extension bench: embedded TSDB scrape + recording-rule overhead.

The observatory only earns its keep if collection is cheap: an operator
will not run an embedded metrics store whose per-tick scrape slows the
attestation loop it is supposed to watch.  This bench runs a
steady-state N-tick poll loop over a bench-scale fleet with a
per-tick :class:`~repro.obs.rules.Observatory` collection, timing the
``collect`` calls *inside* the loop -- the increment is measured
directly rather than as the difference of two multi-second loop totals,
which on a shared CI box drifts by more than the quantity under test.
A scrape-only rig (empty rule set) isolates scrape cost from rule cost.

The acceptance bound from the observatory issue: scrape + standard
recording rules must stay within 5% of the attestation loop on a
50-node fleet.  Scrape cost is proportional to live series (a few
hundred appends), while the loop pays one quote + log replay per node,
so the ratio should be comfortable; the assertion catches accidental
O(history) work creeping into the scrape or rule path.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the fleet and loop and
skips the ratio assertion -- a 6-node loop is small enough that the
fixed scrape cost dominates it, which says nothing about fleet scale.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.common.clock import Scheduler
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import build_base_system
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.fleet import Fleet
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.obs import runtime as obs_runtime
from repro.obs.rules import Observatory
from repro.tpm.device import TpmManufacturer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: (fleet size, ticks per timed loop, min-of rounds per rig)
FLEET_SIZE, N_TICKS, ROUNDS = (6, 6, 1) if SMOKE else (50, 24, 3)

POLL_INTERVAL = 1800.0

#: Acceptance ceiling: scrape + recording rules over the bare loop.
MAX_OVERHEAD = 0.05


def _build_fleet(size: int, mode: str) -> tuple[Fleet, Scheduler]:
    rng = SeededRng(f"tsdb-bench-{size}-{mode}")
    scheduler = Scheduler()
    archive = UbuntuArchive()
    base = build_base_system(
        rng.fork("base"), n_filler_packages=20, mean_exec_files=5
    )
    archive.seed(base)
    mirror = LocalMirror(archive)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(
        list(IBM_STYLE_EXCLUDES), {"5.15.0-91-generic"}
    )
    manufacturer = TpmManufacturer("Bench", rng.fork("tpm"))
    fleet = Fleet(size, mirror, manufacturer, scheduler, rng.fork("fleet"), policy)
    return fleet, scheduler


def _mode_rig(mode: str):
    """Fresh telemetry + fleet + observatory for one collection mode."""
    telemetry = obs_runtime.activate()
    fleet, scheduler = _build_fleet(FLEET_SIZE, mode)
    observatory = Observatory(
        registry=telemetry.registry,
        # Scrape-only mode runs an empty rule set so the difference
        # between the two rigs' increments isolates rule cost.
        rules=[] if mode == "scrape" else None,
        poll_interval=POLL_INTERVAL,
    )
    fleet.poll_all()  # prime: first poll replays the whole log
    return fleet, scheduler, observatory


def _loop_times(fleet, scheduler, observatory) -> tuple[float, float]:
    """(whole-loop seconds, seconds spent inside collect) for N_TICKS."""
    collect_s = 0.0
    start = perf_counter()
    for _ in range(N_TICKS):
        scheduler.clock.advance_by(POLL_INTERVAL)
        results = fleet.poll_all()
        tick = perf_counter()
        observatory.collect(scheduler.clock.now)
        collect_s += perf_counter() - tick
    elapsed = perf_counter() - start
    assert all(result.ok for result in results.values())
    return elapsed, collect_s


def _best_round(fleet, scheduler, observatory) -> tuple[float, float, float]:
    """(overhead ratio, bare ms/tick, collect ms/tick), min over rounds.

    The ratio divides collect time by the *same round's* attestation
    time, so slow drift on a shared box cancels instead of landing in
    the difference of two separately-timed loops.
    """
    rounds = [
        _loop_times(fleet, scheduler, observatory) for _ in range(ROUNDS)
    ]
    ratios = [
        (collect / (total - collect), total - collect, collect)
        for total, collect in rounds
    ]
    ratio, bare, collect = min(ratios)
    return ratio, bare / N_TICKS * 1e3, collect / N_TICKS * 1e3


def test_tsdb_scrape_and_rules_overhead(benchmark, emit):
    scrape_ratio, scrape_bare_ms, scrape_ms = _best_round(
        *_mode_rig("scrape"))

    rules_fleet, rules_sched, rules_obs = _mode_rig("rules")
    rules_ratio, rules_bare_ms, rules_ms = _best_round(
        rules_fleet, rules_sched, rules_obs)

    # One extra instrumented loop so the pytest-benchmark JSON carries
    # a real wall number for the full scrape+rules configuration.
    benchmark.pedantic(
        lambda: _loop_times(rules_fleet, rules_sched, rules_obs),
        rounds=1, iterations=1,
    )

    stats = rules_obs.store.stats()
    emit()
    emit(f"TSDB collection overhead ({FLEET_SIZE} nodes, {N_TICKS} ticks"
         f"{', smoke' if SMOKE else ''})")
    emit(f"  attestation loop:  {rules_bare_ms:8.2f} ms/tick")
    emit(f"  + registry scrape: {scrape_ms:8.2f} ms/tick "
         f"({scrape_ratio:+.2%})")
    emit(f"  + scrape and recording rules: {rules_ms:8.2f} ms/tick "
         f"({rules_ratio:+.2%})")
    emit(f"  store after run: {stats['series']} series, "
         f"{stats['samples']} samples, {stats['scrapes']} scrapes")
    emit(f"  acceptance ceiling: {MAX_OVERHEAD:.0%} over the bare loop"
         f"{' (not asserted in smoke)' if SMOKE else ''}")

    benchmark.extra_info["tsdb_overhead"] = {
        "smoke": SMOKE,
        "fleet_size": FLEET_SIZE,
        "bare_ms_per_tick": round(rules_bare_ms, 3),
        "scrape_ms_per_tick": round(scrape_ms, 3),
        "rules_ms_per_tick": round(rules_ms, 3),
        "scrape_overhead": round(scrape_ratio, 4),
        "rules_overhead": round(rules_ratio, 4),
        "series": stats["series"],
        "samples": stats["samples"],
    }
    assert rules_obs.store.counter_resets == 0
    if not SMOKE:
        assert rules_ratio <= MAX_OVERHEAD, (
            f"scrape+rules overhead {rules_ratio:.2%} exceeds "
            f"{MAX_OVERHEAD:.0%} ceiling"
        )
