"""Extension bench: embedded TSDB scrape + recording-rule overhead.

The observatory only earns its keep if collection is cheap: an operator
will not run an embedded metrics store whose per-tick scrape slows the
attestation loop it is supposed to watch.  This bench runs a
steady-state N-tick poll loop over a bench-scale fleet with a
per-tick :class:`~repro.obs.rules.Observatory` collection, timing the
``collect`` calls *inside* the loop -- the increment is measured
directly rather than as the difference of two multi-second loop totals,
which on a shared CI box drifts by more than the quantity under test.
A scrape-only rig (empty rule set) isolates scrape cost from rule cost.

The acceptance bound from the observatory issue: scrape + standard
recording rules must stay within 5% of the attestation loop on a
50-node fleet.  Scrape cost is proportional to live series (a few
hundred appends), while the loop pays one quote + log replay per node,
so the ratio should be comfortable; the assertion catches accidental
O(history) work creeping into the scrape or rule path.

Smoke mode (``REPRO_BENCH_SMOKE=1`` under pytest, ``--smoke`` under the
harness) shrinks the fleet and loop and skips the ratio assertion -- a
6-node loop is small enough that the fixed scrape cost dominates it,
which says nothing about fleet scale.
"""

from __future__ import annotations

from time import perf_counter

from common import bench_mode, build_bench_fleet, pick, restored_telemetry
from repro.obs.perf import BenchMetric, register_bench
from repro.obs.rules import Observatory

MODE = bench_mode()
POLL_INTERVAL = 1800.0

#: Acceptance ceiling: scrape + recording rules over the bare loop.
MAX_OVERHEAD = 0.05


def _params(mode: str) -> tuple[int, int, int]:
    """(fleet size, ticks per timed loop, min-of rounds per rig)."""
    return pick(mode, (6, 6, 1), (50, 24, 3))


def _mode_rig(mode: str, seed: str, rig: str):
    """Fresh fleet + observatory for one collection mode.

    Runs against whatever telemetry the caller activated; the caller
    owns the activation lifecycle (see :func:`common.restored_telemetry`).
    """
    from repro.obs import runtime as obs_runtime

    size = _params(mode)[0]
    telemetry = obs_runtime.get()
    fleet = build_bench_fleet(size, f"{seed}-{size}-{rig}")
    observatory = Observatory(
        registry=telemetry.registry,
        # Scrape-only mode runs an empty rule set so the difference
        # between the two rigs' increments isolates rule cost.
        rules=[] if rig == "scrape" else None,
        poll_interval=POLL_INTERVAL,
    )
    fleet.poll_all()  # prime: first poll replays the whole log
    return fleet, fleet.scheduler, observatory


def _loop_times(fleet, scheduler, observatory, n_ticks) -> tuple[float, float]:
    """(whole-loop seconds, seconds spent inside collect) for N ticks."""
    collect_s = 0.0
    start = perf_counter()
    for _ in range(n_ticks):
        scheduler.clock.advance_by(POLL_INTERVAL)
        results = fleet.poll_all()
        tick = perf_counter()
        observatory.collect(scheduler.clock.now)
        collect_s += perf_counter() - tick
    elapsed = perf_counter() - start
    assert all(result.ok for result in results.values())
    return elapsed, collect_s


def _best_round(
    fleet, scheduler, observatory, n_ticks, rounds
) -> tuple[float, float, float]:
    """(overhead ratio, bare ms/tick, collect ms/tick), min over rounds.

    The ratio divides collect time by the *same round's* attestation
    time, so slow drift on a shared box cancels instead of landing in
    the difference of two separately-timed loops.
    """
    timings = [
        _loop_times(fleet, scheduler, observatory, n_ticks)
        for _ in range(rounds)
    ]
    ratios = [
        (collect / (total - collect), total - collect, collect)
        for total, collect in timings
    ]
    ratio, bare, collect = min(ratios)
    return ratio, bare / n_ticks * 1e3, collect / n_ticks * 1e3


def run_bench(mode: str, seed: str) -> dict[str, float]:
    """Harness core: scrape and rule cost over the attestation loop.

    The post-run sample count is a pure function of the seeded loop
    (fixed ticks x fixed rule set), so it compares exactly across
    same-seed runs -- sample-count drift means the scrape changed shape.
    """
    _, n_ticks, rounds = _params(mode)
    with restored_telemetry():
        _, scrape_bare, scrape_ms = _best_round(
            *_mode_rig(mode, seed, "scrape"), n_ticks, rounds
        )
        scrape_ratio = scrape_ms / scrape_bare if scrape_bare > 0 else 0.0
    with restored_telemetry():
        rules_fleet, rules_sched, rules_obs = _mode_rig(mode, seed, "rules")
        _, rules_bare, rules_ms = _best_round(
            rules_fleet, rules_sched, rules_obs, n_ticks, rounds
        )
        rules_ratio = rules_ms / rules_bare if rules_bare > 0 else 0.0
        stats = rules_obs.store.stats()
    assert rules_obs.store.counter_resets == 0
    return {
        "scrape_ms_per_tick": scrape_ms,
        "rules_ms_per_tick": rules_ms,
        "scrape_overhead": scrape_ratio,
        "rules_overhead": rules_ratio,
        "tsdb_samples": float(stats["samples"]),
    }


register_bench(
    "tsdb",
    [
        BenchMetric("scrape_ms_per_tick", "ms", "lower",
                    "registry scrape cost per poll tick"),
        BenchMetric("rules_ms_per_tick", "ms", "lower",
                    "scrape + recording-rule cost per poll tick"),
        BenchMetric("scrape_overhead", "ratio", "lower",
                    "scrape cost over the bare attestation loop"),
        BenchMetric("rules_overhead", "ratio", "lower",
                    "scrape + rules cost over the bare attestation loop"),
        BenchMetric("tsdb_samples", "samples", "lower",
                    "seed-deterministic sample count after the loop"),
    ],
    run_bench,
    seed="tsdb-bench",
    description="Embedded TSDB scrape + recording-rule overhead",
)


def test_tsdb_scrape_and_rules_overhead(benchmark, emit):
    fleet_size, n_ticks, rounds = _params(MODE)
    smoke = MODE == "smoke"
    with restored_telemetry():
        scrape_ratio, scrape_bare_ms, scrape_ms = _best_round(
            *_mode_rig(MODE, "tsdb-bench", "scrape"), n_ticks, rounds
        )
    with restored_telemetry():
        rules_fleet, rules_sched, rules_obs = _mode_rig(
            MODE, "tsdb-bench", "rules"
        )
        rules_ratio, rules_bare_ms, rules_ms = _best_round(
            rules_fleet, rules_sched, rules_obs, n_ticks, rounds
        )

        # One extra instrumented loop so the pytest-benchmark JSON
        # carries a real wall number for the full scrape+rules rig.
        benchmark.pedantic(
            lambda: _loop_times(rules_fleet, rules_sched, rules_obs, n_ticks),
            rounds=1, iterations=1,
        )
        stats = rules_obs.store.stats()

    emit()
    emit(f"TSDB collection overhead ({fleet_size} nodes, {n_ticks} ticks"
         f"{', smoke' if smoke else ''})")
    emit(f"  attestation loop:  {rules_bare_ms:8.2f} ms/tick")
    emit(f"  + registry scrape: {scrape_ms:8.2f} ms/tick "
         f"({scrape_ratio:+.2%})")
    emit(f"  + scrape and recording rules: {rules_ms:8.2f} ms/tick "
         f"({rules_ratio:+.2%})")
    emit(f"  store after run: {stats['series']} series, "
         f"{stats['samples']} samples, {stats['scrapes']} scrapes")
    emit(f"  acceptance ceiling: {MAX_OVERHEAD:.0%} over the bare loop"
         f"{' (not asserted in smoke)' if smoke else ''}")

    benchmark.extra_info["tsdb_overhead"] = {
        "smoke": smoke,
        "fleet_size": fleet_size,
        "bare_ms_per_tick": round(rules_bare_ms, 3),
        "scrape_ms_per_tick": round(scrape_ms, 3),
        "rules_ms_per_tick": round(rules_ms, 3),
        "scrape_overhead": round(scrape_ratio, 4),
        "rules_overhead": round(rules_ratio, 4),
        "series": stats["series"],
        "samples": stats["samples"],
    }
    assert rules_obs.store.counter_resets == 0
    if not smoke:
        assert rules_ratio <= MAX_OVERHEAD, (
            f"scrape+rules overhead {rules_ratio:.2%} exceeds "
            f"{MAX_OVERHEAD:.0%} ceiling"
        )
