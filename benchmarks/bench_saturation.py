"""Acceptance bench: saturation knee vs the capacity planner.

Two claims from the saturation-observability issue are checked here.

**Prediction.** The planner's whole value is answering "how many nodes
before my verifier can't keep its poll interval" *before* the fleet gets
there.  The bench sweeps fleet sizes with
:func:`repro.experiments.saturation.run_saturation_sweep`, measures
the knee (the interpolated size whose mean busy time crosses the tick
budget) and asserts the model's ``max_nodes(budget)`` lands within
±20% of it.  The budget is auto-calibrated to the sweep midpoint so the
knee is real measured data on any hardware, not a hard-coded constant
that only saturates one machine.

**Overhead.** Tick accounting rides inside every ``poll_batch``; it
must not meaningfully tax the loop it measures.  The accountant times
its own ``observe_tick`` bodies (``self_wall_seconds``), so the cost is
measured directly in-loop -- same reasoning as the TSDB bench: on a
shared CI box the difference of two separately-timed multi-second loops
drifts by more than the quantity under test.  Acceptance: ≤1% of the
50-node attestation loop.

Smoke mode (``REPRO_BENCH_SMOKE=1`` under pytest, ``--smoke`` under the
harness) shrinks the sweep and the loop and skips both assertions -- a
3-point, 2-tick sweep has too few samples for the fit bound to be
meaningful.
"""

from __future__ import annotations

from time import perf_counter

from common import bench_mode, pick
from repro.experiments.saturation import (
    build_probe_fleet,
    render_sweep,
    run_saturation_sweep,
)
from repro.obs.perf import BenchMetric, register_bench

MODE = bench_mode()
POLL_INTERVAL = 1800.0

#: Planner prediction must land within ±20% of the measured knee.
MAX_PREDICTION_ERROR = 0.20

#: Accounting self-cost over the bare attestation loop.
MAX_ACCOUNTING_OVERHEAD = 0.01


def _sweep_params(mode: str) -> tuple[tuple[int, ...], int]:
    """(sweep sizes, measured ticks/size) for the knee fit."""
    return pick(mode, ((3, 6, 10), 2), ((4, 8, 16, 28), 6))


def _loop_params(mode: str) -> tuple[int, int]:
    """(fleet size, ticks) for the accounting-overhead loop."""
    return pick(mode, (6, 4), (50, 24))


def _accounting_overhead(
    loop_size: int, loop_ticks: int, seed: str
) -> tuple[float, float, float]:
    """(overhead ratio, loop ms/tick, accounting ms/tick).

    The loop runs with accounting fully live (budget set, so the
    overrun/saturation path executes too) and divides the accountant's
    own measured wall time by the rest of the same loop.
    """
    fleet, scheduler = build_probe_fleet(
        loop_size, seed=f"{seed}-overhead", n_filler_packages=20,
    )
    accountant = fleet.poll_scheduler.accounting
    accountant.configure(interval=POLL_INTERVAL, budget=POLL_INTERVAL)
    fleet.poll_all()  # prime: first poll replays the whole log
    accountant.self_wall_seconds = 0.0
    start = perf_counter()
    for _ in range(loop_ticks):
        scheduler.clock.advance_by(POLL_INTERVAL)
        results = fleet.poll_all()
    elapsed = perf_counter() - start
    assert all(result.ok for result in results.values())
    self_s = accountant.self_wall_seconds
    bare = elapsed - self_s
    return (
        self_s / bare, bare / loop_ticks * 1e3, self_s / loop_ticks * 1e3
    )


def run_bench(mode: str, seed: str) -> dict[str, float]:
    """Harness core: sweep the knee and price the accounting layer.

    ``knee_nodes`` / ``prediction_error`` are absent in smoke mode (a
    2-tick sweep rarely crosses its budget), which the record schema
    allows -- absent metrics simply are not scored.
    """
    sweep_sizes, sweep_ticks = _sweep_params(mode)
    loop_size, loop_ticks = _loop_params(mode)
    sweep = run_saturation_sweep(
        sizes=sweep_sizes, ticks=sweep_ticks, seed=seed,
        poll_interval=POLL_INTERVAL,
    )
    overhead, loop_ms, accounting_ms = _accounting_overhead(
        loop_size, loop_ticks, seed
    )
    values: dict[str, float] = {
        "per_node_ms": sweep.model.per_node_seconds * 1e3,
        "loop_ms_per_tick": loop_ms,
        "accounting_ms_per_tick": accounting_ms,
        "accounting_overhead": overhead,
        "predicted_max_nodes": sweep.predicted_max_nodes,
    }
    if sweep.knee_nodes is not None:
        values["knee_nodes"] = sweep.knee_nodes
    if sweep.prediction_error is not None:
        values["prediction_error"] = sweep.prediction_error
    return values


register_bench(
    "saturation",
    [
        BenchMetric("per_node_ms", "ms", "lower",
                    "fitted per-node busy cost from the sweep"),
        BenchMetric("loop_ms_per_tick", "ms", "lower",
                    "accounted attestation loop cost per tick"),
        BenchMetric("accounting_ms_per_tick", "ms", "lower",
                    "tick-accounting self cost per tick"),
        BenchMetric("accounting_overhead", "ratio", "lower",
                    "accounting self cost over the bare loop"),
        BenchMetric("predicted_max_nodes", "nodes", "higher",
                    "planner max_nodes at the calibrated budget"),
        BenchMetric("knee_nodes", "nodes", "higher",
                    "measured saturation knee (full mode only)"),
        BenchMetric("prediction_error", "ratio", "lower",
                    "planner error vs the measured knee (full mode only)"),
    ],
    run_bench,
    seed="saturation-bench",
    description="Saturation knee vs capacity planner + accounting cost",
)


def test_saturation_knee_and_accounting_overhead(benchmark, emit):
    sweep_sizes, sweep_ticks = _sweep_params(MODE)
    loop_size, loop_ticks = _loop_params(MODE)
    smoke = MODE == "smoke"
    sweep = run_saturation_sweep(
        sizes=sweep_sizes, ticks=sweep_ticks, seed="saturation-bench",
        poll_interval=POLL_INTERVAL,
    )
    overhead, loop_ms, accounting_ms = _accounting_overhead(
        loop_size, loop_ticks, "saturation"
    )

    # One extra probe at the largest sweep size so the pytest-benchmark
    # JSON carries a real wall number for an accounted batch tick.
    from repro.experiments.saturation import probe_tick_cost

    benchmark.pedantic(
        lambda: probe_tick_cost(
            sweep_sizes[-1], ticks=1, seed="saturation-bench",
            poll_interval=POLL_INTERVAL,
        ),
        rounds=1, iterations=1,
    )

    emit()
    emit(render_sweep(sweep))
    emit()
    emit(f"accounting overhead ({loop_size} nodes, {loop_ticks} ticks"
         f"{', smoke' if smoke else ''})")
    emit(f"  attestation loop: {loop_ms:8.2f} ms/tick")
    emit(f"  + tick accounting: {accounting_ms:8.3f} ms/tick "
         f"({overhead:+.3%})")
    emit(f"  acceptance: prediction within ±{MAX_PREDICTION_ERROR:.0%} "
         f"of knee, accounting ≤{MAX_ACCOUNTING_OVERHEAD:.0%} of loop"
         f"{' (not asserted in smoke)' if smoke else ''}")

    benchmark.extra_info["saturation"] = {
        "smoke": smoke,
        "sweep_sizes": list(sweep.sizes),
        "budget_seconds": round(sweep.budget, 6),
        "knee_nodes": (
            round(sweep.knee_nodes, 2) if sweep.knee_nodes is not None
            else None
        ),
        "predicted_max_nodes": round(sweep.predicted_max_nodes, 2),
        "prediction_error": (
            round(sweep.prediction_error, 4)
            if sweep.prediction_error is not None else None
        ),
        "fit_r_squared": round(sweep.model.r_squared, 4),
        "per_node_ms": round(sweep.model.per_node_seconds * 1e3, 4),
        "loop_ms_per_tick": round(loop_ms, 3),
        "accounting_ms_per_tick": round(accounting_ms, 4),
        "accounting_overhead": round(overhead, 5),
    }

    if not smoke:
        assert sweep.knee_nodes is not None, (
            "calibrated sweep never crossed its budget; "
            f"points={[(p.nodes, p.busy_mean_seconds) for p in sweep.points]}"
        )
        error = sweep.prediction_error
        assert error is not None and error <= MAX_PREDICTION_ERROR, (
            f"planner predicted {sweep.predicted_max_nodes:.1f} nodes vs "
            f"measured knee {sweep.knee_nodes:.1f} "
            f"({error:.1%} > {MAX_PREDICTION_ERROR:.0%})"
        )
        assert overhead <= MAX_ACCOUNTING_OVERHEAD, (
            f"tick accounting overhead {overhead:.3%} exceeds "
            f"{MAX_ACCOUNTING_OVERHEAD:.0%} ceiling"
        )
