"""Acceptance bench: saturation knee vs the capacity planner.

Two claims from the saturation-observability issue are checked here.

**Prediction.** The planner's whole value is answering "how many nodes
before my verifier can't keep its poll interval" *before* the fleet gets
there.  The bench sweeps fleet sizes with
:func:`repro.experiments.saturation.run_saturation_sweep`, measures
the knee (the interpolated size whose mean busy time crosses the tick
budget) and asserts the model's ``max_nodes(budget)`` lands within
±20% of it.  The budget is auto-calibrated to the sweep midpoint so the
knee is real measured data on any hardware, not a hard-coded constant
that only saturates one machine.

**Overhead.** Tick accounting rides inside every ``poll_batch``; it
must not meaningfully tax the loop it measures.  The accountant times
its own ``observe_tick`` bodies (``self_wall_seconds``), so the cost is
measured directly in-loop -- same reasoning as the TSDB bench: on a
shared CI box the difference of two separately-timed multi-second loops
drifts by more than the quantity under test.  Acceptance: ≤1% of the
50-node attestation loop.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the sweep and the loop and
skips both assertions -- a 3-point, 2-tick sweep has too few samples
for the fit bound to be meaningful.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.experiments.saturation import (
    build_probe_fleet,
    render_sweep,
    run_saturation_sweep,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: (sweep sizes, measured ticks/size) for the knee fit.
SWEEP_SIZES, SWEEP_TICKS = ((3, 6, 10), 2) if SMOKE else ((4, 8, 16, 28), 6)

#: (fleet size, ticks) for the accounting-overhead loop.
LOOP_SIZE, LOOP_TICKS = (6, 4) if SMOKE else (50, 24)

POLL_INTERVAL = 1800.0

#: Planner prediction must land within ±20% of the measured knee.
MAX_PREDICTION_ERROR = 0.20

#: Accounting self-cost over the bare attestation loop.
MAX_ACCOUNTING_OVERHEAD = 0.01


def _accounting_overhead() -> tuple[float, float, float]:
    """(overhead ratio, loop ms/tick, accounting ms/tick).

    The loop runs with accounting fully live (budget set, so the
    overrun/saturation path executes too) and divides the accountant's
    own measured wall time by the rest of the same loop.
    """
    fleet, scheduler = build_probe_fleet(
        LOOP_SIZE, seed="saturation-overhead", n_filler_packages=20,
    )
    accountant = fleet.poll_scheduler.accounting
    accountant.configure(interval=POLL_INTERVAL, budget=POLL_INTERVAL)
    fleet.poll_all()  # prime: first poll replays the whole log
    accountant.self_wall_seconds = 0.0
    start = perf_counter()
    for _ in range(LOOP_TICKS):
        scheduler.clock.advance_by(POLL_INTERVAL)
        results = fleet.poll_all()
    elapsed = perf_counter() - start
    assert all(result.ok for result in results.values())
    self_s = accountant.self_wall_seconds
    bare = elapsed - self_s
    return self_s / bare, bare / LOOP_TICKS * 1e3, self_s / LOOP_TICKS * 1e3


def test_saturation_knee_and_accounting_overhead(benchmark, emit):
    sweep = run_saturation_sweep(
        sizes=SWEEP_SIZES, ticks=SWEEP_TICKS, seed="saturation-bench",
        poll_interval=POLL_INTERVAL,
    )
    overhead, loop_ms, accounting_ms = _accounting_overhead()

    # One extra probe at the largest sweep size so the pytest-benchmark
    # JSON carries a real wall number for an accounted batch tick.
    from repro.experiments.saturation import probe_tick_cost

    benchmark.pedantic(
        lambda: probe_tick_cost(
            SWEEP_SIZES[-1], ticks=1, seed="saturation-bench",
            poll_interval=POLL_INTERVAL,
        ),
        rounds=1, iterations=1,
    )

    emit()
    emit(render_sweep(sweep))
    emit()
    emit(f"accounting overhead ({LOOP_SIZE} nodes, {LOOP_TICKS} ticks"
         f"{', smoke' if SMOKE else ''})")
    emit(f"  attestation loop: {loop_ms:8.2f} ms/tick")
    emit(f"  + tick accounting: {accounting_ms:8.3f} ms/tick "
         f"({overhead:+.3%})")
    emit(f"  acceptance: prediction within ±{MAX_PREDICTION_ERROR:.0%} "
         f"of knee, accounting ≤{MAX_ACCOUNTING_OVERHEAD:.0%} of loop"
         f"{' (not asserted in smoke)' if SMOKE else ''}")

    benchmark.extra_info["saturation"] = {
        "smoke": SMOKE,
        "sweep_sizes": list(sweep.sizes),
        "budget_seconds": round(sweep.budget, 6),
        "knee_nodes": (
            round(sweep.knee_nodes, 2) if sweep.knee_nodes is not None
            else None
        ),
        "predicted_max_nodes": round(sweep.predicted_max_nodes, 2),
        "prediction_error": (
            round(sweep.prediction_error, 4)
            if sweep.prediction_error is not None else None
        ),
        "fit_r_squared": round(sweep.model.r_squared, 4),
        "per_node_ms": round(sweep.model.per_node_seconds * 1e3, 4),
        "loop_ms_per_tick": round(loop_ms, 3),
        "accounting_ms_per_tick": round(accounting_ms, 4),
        "accounting_overhead": round(overhead, 5),
    }

    if not SMOKE:
        assert sweep.knee_nodes is not None, (
            "calibrated sweep never crossed its budget; "
            f"points={[(p.nodes, p.busy_mean_seconds) for p in sweep.points]}"
        )
        error = sweep.prediction_error
        assert error is not None and error <= MAX_PREDICTION_ERROR, (
            f"planner predicted {sweep.predicted_max_nodes:.1f} nodes vs "
            f"measured knee {sweep.knee_nodes:.1f} "
            f"({error:.1%} > {MAX_PREDICTION_ERROR:.0%})"
        )
        assert overhead <= MAX_ACCOUNTING_OVERHEAD, (
            f"tick accounting overhead {overhead:.3%} exceeds "
            f"{MAX_ACCOUNTING_OVERHEAD:.0%} ceiling"
        )
