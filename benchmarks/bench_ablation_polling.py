"""Ablation: stop-on-failure (stock, P2) vs continue-on-failure (M2).

DESIGN.md section 5: quantifies what the verifier's failure behaviour
costs in *coverage* -- how many log entries go unexamined once a single
false positive lands -- and what that means for detecting an attack
hidden behind the FP.
"""

from __future__ import annotations

from repro.attacks.problems import p2_blind_verifier
from repro.experiments.testbed import build_testbed, TestbedConfig


def _scenario(continue_on_failure: bool):
    testbed = build_testbed(TestbedConfig(
        seed="ablation-polling", continue_on_failure=continue_on_failure,
    ))
    testbed.poll()
    p2_blind_verifier(testbed.machine)
    # The hidden attack lands *after* the FP in the log.
    testbed.machine.install_file("/usr/bin/backdoor", b"bd", executable=True)
    testbed.machine.exec_file("/usr/bin/backdoor")
    result = testbed.poll()
    detected = any(
        failure.policy_failure is not None
        and failure.policy_failure.path == "/usr/bin/backdoor"
        for failure in testbed.verifier.failures_of(testbed.agent_id)
    )
    return result, detected


def test_ablation_polling_behaviour(benchmark, emit):
    result, _ = benchmark.pedantic(
        lambda: _scenario(False), rounds=3, iterations=1
    )

    stock_result, stock_detected = _scenario(False)
    m2_result, m2_detected = _scenario(True)

    emit()
    emit("Ablation: verifier failure behaviour (P2 vs M2)")
    emit(f"  stock (halt):    entries skipped={stock_result.entries_skipped}, "
          f"backdoor detected={stock_detected}")
    emit(f"  M2 (continue):   entries skipped={m2_result.entries_skipped}, "
          f"backdoor detected={m2_detected}")
    assert not stock_detected, "stock verifier must miss the hidden attack"
    assert m2_detected, "M2 must surface the hidden attack"
    assert stock_result.entries_skipped > 0
    assert m2_result.entries_skipped == 0
