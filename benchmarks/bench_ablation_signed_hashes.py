"""Ablation: operator-hashed packages vs maintainer-signed manifests.

Section V proposes that package maintainers ship signed file hashes
(ostree-style) so operators need not download/decompress/hash packages
themselves.  This bench implements both pipelines over one identical
update batch and compares (a) the modelled generator runtime and
(b) the security behaviour -- a tampered manifest is rejected outright.
"""

from __future__ import annotations

import dataclasses

from repro.common.rng import SeededRng
from repro.common.units import format_duration
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import (
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
)
from repro.dynpolicy.costmodel import CostModelConfig, GeneratorCostModel
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.dynpolicy.signedhashes import ManifestAuthority, merge_signed_manifests
from repro.keylime.policy import RuntimePolicy


def test_ablation_signed_hash_manifests(benchmark, emit):
    rng = SeededRng("signed-hashes-bench")
    archive = UbuntuArchive()
    base = build_base_system(rng.fork("base"), n_filler_packages=100, mean_exec_files=20)
    archive.seed(base)
    stream = SyntheticReleaseStream(
        archive, base, rng.fork("stream"), ReleaseStreamConfig()
    )
    stream.generate_day(1)
    mirror = LocalMirror(archive)
    mirror.sync(0.0)
    sync = mirror.sync(2 * 86400.0)
    changed = list(sync.new_packages) + list(sync.changed_packages)

    authority = ManifestAuthority("Canonical", rng.fork("authority"))
    manifests = authority.sign_all(changed)

    def merge_manifests():
        policy = RuntimePolicy()
        return merge_signed_manifests(
            policy, manifests, authority.public_key, {"5.15.0-91-generic"}
        )

    added, rejected = benchmark(merge_manifests)
    assert rejected == []

    # Equivalence: both pipelines admit the same digests.
    model = GeneratorCostModel(CostModelConfig(jitter_sigma=0.0))
    generator = DynamicPolicyGenerator(mirror, cost_model=model)
    hashed_policy = RuntimePolicy()
    generator.generate_update(hashed_policy, changed, {"5.15.0-91-generic"})
    manifest_policy = RuntimePolicy()
    merge_signed_manifests(
        manifest_policy, manifests, authority.public_key, {"5.15.0-91-generic"}
    )
    assert manifest_policy.digests == hashed_policy.digests

    hash_seconds = model.batch_seconds(changed, include_refresh=False)
    manifest_seconds = model.manifest_batch_seconds(
        len(manifests), include_refresh=False
    )

    emit()
    emit("Ablation: operator hashing vs maintainer-signed manifests")
    emit(f"  batch: {len(changed)} packages, {added} policy entries")
    emit(f"  operator hashing pipeline (modelled): {format_duration(hash_seconds)}")
    emit(f"  signed-manifest pipeline (modelled):  {format_duration(manifest_seconds)}")
    emit(f"  speedup: {hash_seconds / manifest_seconds:.0f}x, with identical policies")

    forged = dataclasses.replace(
        manifests[0], measurements={"/usr/bin/evil": "ab" * 32}
    )
    _, rejected = merge_signed_manifests(
        RuntimePolicy(), [forged], authority.public_key, set()
    )
    assert len(rejected) == 1
    emit("  tampered manifest: rejected by signature check "
         "(a tainted mirror cannot poison the policy)")
    assert hash_seconds > manifest_seconds * 5
