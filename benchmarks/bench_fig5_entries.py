"""E4 / Fig 5 (and E9): file entries added to the policy per update.

Prints the reproduced figure and benchmarks the policy-merge operation
the figure counts (appending one update's measurements to a policy).

Paper targets: mean ~1,271 entries (~0.16 MB) per daily update, small
against the 323,734-line initial policy.
"""

from __future__ import annotations

from repro.analysis import render_fig5
from repro.common.units import format_bytes, summarize
from repro.keylime.policy import RuntimePolicy


def test_fig5_policy_entries_per_update(benchmark, emit, daily_result):
    # A representative day's measurement set, scaled to the paper's mean.
    measurements = {
        f"/usr/lib/pkg{i // 77}/exec-{i % 77}": format(i, "064x")
        for i in range(1271)
    }

    def merge_into_policy():
        policy = RuntimePolicy()
        return policy.merge_measurements(measurements)

    added = benchmark(merge_into_policy)
    assert added == 1271

    emit()
    emit(render_fig5(daily_result))
    entries = summarize([float(v) for v in daily_result.entries_per_update])
    size = summarize([float(v) for v in daily_result.bytes_per_update])
    emit(
        f"\npaper: mean=1,271 entries (+0.16 MB) per daily update | reproduced: "
        f"mean={entries['mean']:.0f} entries (+{format_bytes(size['mean'])})"
    )
    emit(
        f"initial policy: {daily_result.initial_policy_lines} lines -> "
        f"final {daily_result.final_policy_lines} lines "
        "(paper day-1 policy: 323,734 lines / 46 MB at full production scale; "
        "this run uses a scaled-down base system, see EXPERIMENTS.md)"
    )
