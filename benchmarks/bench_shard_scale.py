"""Sharded-fleet scaling: attestation throughput at 1, 2 and 4 verifiers.

A single verifier's poll loop is serial, so fleet-wide attestation
throughput is bounded by one process no matter how many nodes enroll.
The consistent-hash sharding layer (:mod:`repro.keylime.sharding` +
:class:`~repro.keylime.fleet.VerifierFleet`) removes that bound: each
member polls only its key range, so the per-tick critical path is the
*largest shard's* batch, not the whole fleet's.  This bench prices
that claim: the same seeded fleet attested for N rounds at 1, 2 and 4
verifiers, per-tick wall measured as the max over shards of the
shard's batch cost (members are independent processes in a real
deployment; the simulation polls them back-to-back, so summing would
charge serialisation the architecture does not have).

Scaling is sub-linear exactly by the ring's imbalance: with a max
shard of ``m`` keys out of ``K``, the theoretical speedup is ``K/m``.
The default seed is chosen so 48 keys split 25/23 at two members and
12/12/13/11 at four -- speedups of 1.92x and 4.0x -- and full mode
asserts the measured floors 1.8x and 3.2x from ISSUE 10.

``assignment_bytes`` is the determinism audit: the byte length of the
canonical JSON assignment for the bench's key set, a pure function of
``(seed, members)``.  Same-seed trajectory entries must compare at
exactly +0.0%.

Smoke mode shrinks the fleet and drops the scaling floors (a loaded CI
box can't promise wall-clock ratios), keeping the equivalence and
determinism assertions.
"""

from __future__ import annotations

import json
from time import perf_counter

from common import bench_mode, build_bench_fleet, pick
from repro.common.rng import SeededRng
from repro.keylime.fleet import Fleet, VerifierFleet
from repro.obs.perf import BenchMetric, register_bench

MODE = bench_mode()
ROUND_INTERVAL = 1800.0
VERIFIER_COUNTS = (1, 2, 4)

#: Scaling floors asserted in full mode (from the issue's acceptance
#: criteria); theoretical ceilings at the default seed are 1.92x/4.0x.
SPEEDUP_FLOORS = {2: 1.8, 4: 3.2}


def _params(mode: str) -> tuple[int, int]:
    """(fleet size, timed attestation rounds)."""
    return pick(mode, (12, 2), (48, 8))


def _build(mode: str, seed: str, n_verifiers: int) -> tuple[Fleet, VerifierFleet]:
    size = _params(mode)[0]
    fleet = build_bench_fleet(
        size, seed, n_filler_packages=10, mean_exec_files=5.0,
        with_events=True,
    )
    vfleet = VerifierFleet(
        fleet, n_verifiers, SeededRng(seed).fork("shards"),
        seed=seed, checkpoint_every=0,
    )
    return fleet, vfleet


def _run_rounds(
    fleet: Fleet, vfleet: VerifierFleet, n_rounds: int, warm: int = 1
) -> float:
    """Critical-path seconds for N rounds (after *warm* untimed rounds).

    Each tick's cost is the slowest shard's batch -- the wall a real
    per-process deployment would see -- so the 1-verifier run and the
    4-verifier run are charged on the same axis.
    """
    for _ in range(warm):
        fleet.scheduler.clock.advance_by(ROUND_INTERVAL)
        vfleet.poll_all()
    total = 0.0
    for _ in range(n_rounds):
        fleet.scheduler.clock.advance_by(ROUND_INTERVAL)
        slowest = 0.0
        for shard_id in vfleet.shard_ids:
            start = perf_counter()
            vfleet.shards[shard_id].batch.poll_batch()
            slowest = max(slowest, perf_counter() - start)
        total += slowest
    return total


def _results(fleet: Fleet, vfleet: VerifierFleet):
    return {
        node.agent.agent_id:
            vfleet.verifier_for(node.agent.agent_id).results_of(
                node.agent.agent_id
            )
        for node in fleet.nodes
    }


def _assignment_bytes(vfleet: VerifierFleet) -> int:
    """Canonical byte length of the ring's full assignment."""
    assignment = vfleet.ring.assignment(vfleet.agent_ids)
    return len(json.dumps(assignment, sort_keys=True, separators=(",", ":")))


def run_bench(mode: str, seed: str) -> dict[str, float]:
    """Harness core: nodes/sec at each verifier count, equivalence held.

    The single-verifier verdict history is the reference; every sharded
    configuration must reproduce it bit-identically (same rig seed,
    same per-agent RNG-free pipeline) or the throughput numbers price a
    different computation.
    """
    n_nodes, n_rounds = _params(mode)
    out: dict[str, float] = {}
    reference = None
    for count in VERIFIER_COUNTS:
        fleet, vfleet = _build(mode, seed, count)
        seconds = _run_rounds(fleet, vfleet, n_rounds)
        polls = n_nodes * n_rounds
        out[f"nodes_per_sec_{count}v"] = polls / seconds if seconds > 0 else 0.0
        results = _results(fleet, vfleet)
        assert all(
            result.ok for history in results.values() for result in history
        )
        if reference is None:
            reference = results
            out["assignment_bytes"] = float(_assignment_bytes(vfleet))
        else:
            assert results == reference, (
                f"{count}-verifier verdict history diverged from 1-verifier"
            )
    for count, floor in SPEEDUP_FLOORS.items():
        speedup = out[f"nodes_per_sec_{count}v"] / out["nodes_per_sec_1v"]
        out[f"speedup_{count}v"] = speedup
        if mode == "full":
            assert speedup >= floor, (
                f"{count}-verifier speedup {speedup:.2f}x below the "
                f"{floor}x floor"
            )
    return out


register_bench(
    "shard_scale",
    [
        BenchMetric("nodes_per_sec_1v", "nodes/s", "higher",
                    "single-verifier attestation throughput"),
        BenchMetric("nodes_per_sec_2v", "nodes/s", "higher",
                    "two-shard critical-path throughput"),
        BenchMetric("nodes_per_sec_4v", "nodes/s", "higher",
                    "four-shard critical-path throughput"),
        BenchMetric("speedup_2v", "x", "higher",
                    "two-verifier scaling over one"),
        BenchMetric("speedup_4v", "x", "higher",
                    "four-verifier scaling over one"),
        BenchMetric("assignment_bytes", "B", "lower",
                    "canonical ring assignment size (determinism audit)"),
    ],
    run_bench,
    seed="shard-scale-144",
    description="Multi-verifier sharding throughput at 1/2/4 members",
)


def test_shard_scaling(benchmark, emit):
    n_nodes, n_rounds = _params(MODE)
    smoke = MODE == "smoke"
    seed = "shard-scale-144"

    builds = {count: _build(MODE, seed, count) for count in VERIFIER_COUNTS}
    walls: dict[int, float] = {}
    for count, (fleet, vfleet) in builds.items():
        if count == max(VERIFIER_COUNTS):
            walls[count] = benchmark.pedantic(
                lambda: _run_rounds(fleet, vfleet, n_rounds),
                rounds=1, iterations=1,
            )
        else:
            walls[count] = _run_rounds(fleet, vfleet, n_rounds)

    # The tentpole property, asserted where it is priced: sharding must
    # not change a single verdict.
    reference = _results(*builds[1])
    for count in VERIFIER_COUNTS[1:]:
        assert _results(*builds[count]) == reference

    # Determinism audit: the assignment is a pure function of the seed.
    sizes = {
        count: vfleet.shard_sizes() for count, (_, vfleet) in builds.items()
    }
    rebuilt = _build(MODE, seed, max(VERIFIER_COUNTS))[1]
    assert rebuilt.ring.fingerprint(rebuilt.agent_ids) == \
        builds[max(VERIFIER_COUNTS)][1].ring.fingerprint(
            builds[max(VERIFIER_COUNTS)][1].agent_ids
        )

    polls = n_nodes * n_rounds
    emit()
    emit(f"Sharded attestation scaling ({n_nodes} nodes x {n_rounds} rounds"
         f"{', smoke' if smoke else ''})")
    for count in VERIFIER_COUNTS:
        rate = polls / walls[count] if walls[count] > 0 else 0.0
        speedup = walls[1] / walls[count] if walls[count] > 0 else 0.0
        max_shard = max(sizes[count].values())
        emit(f"  {count} verifier(s): {rate:8.1f} nodes/s  "
             f"speedup {speedup:4.2f}x  (max shard {max_shard}/{n_nodes}, "
             f"ceiling {n_nodes / max_shard:.2f}x)")

    benchmark.extra_info["shard_scale"] = {
        "nodes": n_nodes,
        "rounds": n_rounds,
        "speedup_2v": round(walls[1] / walls[2], 3),
        "speedup_4v": round(walls[1] / walls[4], 3),
        "max_shard": {c: max(sizes[c].values()) for c in VERIFIER_COUNTS},
    }
    if not smoke:
        assert walls[1] / walls[2] >= SPEEDUP_FLOORS[2]
        assert walls[1] / walls[4] >= SPEEDUP_FLOORS[4]
