"""Overhead of trace propagation, span storage, and exemplar capture.

PR 4 moved the tracer from a blind deque to a full pipeline: every root
trace is ingested into an indexed :class:`repro.obs.tracestore
.SpanStore`, every attestation round crosses the JSON wire formats with
a ``traceparent`` field, and the stage histograms capture per-bucket
exemplars.  None of that is free, and all of it sits on the verifier
poll loop -- the paper's core continuous-attestation path.  This bench
times the same N-poll loop three ways:

* telemetry off (null objects, the disabled fast path);
* tracer only (spans recorded, no store) -- the pre-PR-4 shape;
* the full pipeline (spans + SpanStore ingestion + exemplars).

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the loop so CI can assert
the bound without paying the full measurement.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.obs import runtime as obs_runtime
from repro.obs.runtime import Telemetry
from repro.obs.tracing import SpanTracer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_POLLS = 40 if SMOKE else 200
POLL_INTERVAL = 1800.0


def _poll_loop_seconds(seed: str) -> float:
    """Build a small rig and time N polls (build cost excluded)."""
    testbed = build_testbed(TestbedConfig(seed=seed, n_filler_packages=15))
    start = perf_counter()
    for _ in range(N_POLLS):
        testbed.scheduler.clock.advance_by(POLL_INTERVAL)
        assert testbed.poll().ok
    return perf_counter() - start


def test_trace_pipeline_overhead(benchmark, emit):
    # Null baseline: the autouse bench fixture activated telemetry;
    # drop to the null objects for the unobserved loop.
    obs_runtime.deactivate()
    try:
        null_s = _poll_loop_seconds("trace-overhead/null")

        # Tracer without a store: spans recorded into the deque only.
        bare = Telemetry()
        bare.tracer = SpanTracer()
        obs_runtime.activate(bare)
        try:
            tracer_s = _poll_loop_seconds("trace-overhead/tracer")
        finally:
            obs_runtime.deactivate()
    finally:
        obs_runtime.activate()

    # Full pipeline: SpanStore ingestion + indexing + exemplars.
    telemetry = obs_runtime.get()
    full_s = benchmark.pedantic(
        lambda: _poll_loop_seconds("trace-overhead/store"),
        rounds=1 if SMOKE else 3, iterations=1,
    )

    store = telemetry.store
    assert len(store) > 0, "full pipeline must have ingested traces"
    p99 = store.percentile(0.99, name="verifier.poll")
    stage_family = telemetry.registry.get("verifier_stage_wall_seconds")
    exemplars = sum(
        len(child.exemplars) for _, child in stage_family.samples()
    ) if stage_family is not None else 0

    per_poll = lambda seconds: seconds / N_POLLS * 1e6  # noqa: E731
    emit()
    emit(f"Trace-pipeline overhead ({N_POLLS} polls"
         f"{', smoke' if SMOKE else ''})")
    emit(f"  telemetry off:        {per_poll(null_s):9.1f} us/poll")
    emit(f"  tracer only:          {per_poll(tracer_s):9.1f} us/poll "
         f"({tracer_s / null_s - 1.0:+.1%})")
    emit(f"  tracer+store+exemplars:{per_poll(full_s):8.1f} us/poll "
         f"({full_s / null_s - 1.0:+.1%})")
    emit(f"  store: {store.stats()}  p99(verifier.poll)={p99 * 1000:.3f}ms  "
         f"stage exemplars={exemplars}")

    benchmark.extra_info["trace_overhead"] = {
        "null_us_per_poll": round(per_poll(null_s), 2),
        "tracer_us_per_poll": round(per_poll(tracer_s), 2),
        "full_us_per_poll": round(per_poll(full_s), 2),
        "store": store.stats(),
    }
    # The full trace pipeline must stay within one order of magnitude
    # of the unobserved loop (loose bound for noisy CI boxes).
    assert full_s < null_s * 10.0
