"""Overhead of trace propagation, span storage, and exemplar capture.

PR 4 moved the tracer from a blind deque to a full pipeline: every root
trace is ingested into an indexed :class:`repro.obs.tracestore
.SpanStore`, every attestation round crosses the JSON wire formats with
a ``traceparent`` field, and the stage histograms capture per-bucket
exemplars.  None of that is free, and all of it sits on the verifier
poll loop -- the paper's core continuous-attestation path.  This bench
times the same N-poll loop three ways:

* telemetry off (null objects, the disabled fast path);
* tracer only (spans recorded, no store) -- the pre-PR-4 shape;
* the full pipeline (spans + SpanStore ingestion + exemplars).

Smoke mode (``REPRO_BENCH_SMOKE=1`` under pytest, ``--smoke`` under the
harness) shrinks the loop so CI can assert the bound without paying the
full measurement.
"""

from __future__ import annotations

from time import perf_counter

from common import bench_mode, pick
from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.obs import runtime as obs_runtime
from repro.obs.perf import BenchMetric, register_bench
from repro.obs.runtime import Telemetry
from repro.obs.tracing import SpanTracer

MODE = bench_mode()
POLL_INTERVAL = 1800.0


def _n_polls(mode: str) -> int:
    return pick(mode, 40, 200)


def _poll_loop_seconds(seed: str, n_polls: int) -> float:
    """Build a small rig and time N polls (build cost excluded)."""
    testbed = build_testbed(TestbedConfig(seed=seed, n_filler_packages=15))
    start = perf_counter()
    for _ in range(n_polls):
        testbed.scheduler.clock.advance_by(POLL_INTERVAL)
        assert testbed.poll().ok
    return perf_counter() - start


def _three_way(
    mode: str, seed: str, full_loop: bool = True
) -> tuple[float, float, float]:
    """(null, tracer-only, full-pipeline) loop seconds.

    Assumes a full telemetry bundle is active on entry (pytest's
    autouse fixture or the harness session) and leaves the *same*
    bundle active on exit, with the full-pipeline loop recorded into
    it.  With ``full_loop=False`` the third element is 0.0 and the
    caller times the instrumented loop itself (the pytest path, where
    pytest-benchmark owns that measurement).
    """
    n_polls = _n_polls(mode)
    entry = obs_runtime.get()

    # Null baseline: drop to the null objects for the unobserved loop.
    obs_runtime.deactivate()
    try:
        null_s = _poll_loop_seconds(f"{seed}/null", n_polls)

        # Tracer without a store: spans recorded into the deque only.
        bare = Telemetry()
        bare.tracer = SpanTracer()
        obs_runtime.activate(bare)
        try:
            tracer_s = _poll_loop_seconds(f"{seed}/tracer", n_polls)
        finally:
            obs_runtime.deactivate()
    finally:
        if isinstance(entry, Telemetry):
            obs_runtime.activate(entry)
        else:
            obs_runtime.activate()

    # Full pipeline: SpanStore ingestion + indexing + exemplars.
    full_s = _poll_loop_seconds(f"{seed}/store", n_polls) if full_loop else 0.0
    return null_s, tracer_s, full_s


def run_bench(mode: str, seed: str) -> dict[str, float]:
    """Harness core: per-poll cost of each tracing increment."""
    n_polls = _n_polls(mode)
    null_s, tracer_s, full_s = _three_way(mode, seed)
    per_poll = 1e6 / n_polls
    return {
        "null_us_per_poll": null_s * per_poll,
        "tracer_us_per_poll": tracer_s * per_poll,
        "full_us_per_poll": full_s * per_poll,
        "full_over_null": full_s / null_s if null_s > 0 else 0.0,
    }


register_bench(
    "trace",
    [
        BenchMetric("null_us_per_poll", "us", "lower",
                    "poll cost, telemetry off (null-object fast path)"),
        BenchMetric("tracer_us_per_poll", "us", "lower",
                    "poll cost, tracer only (no span store)"),
        BenchMetric("full_us_per_poll", "us", "lower",
                    "poll cost, tracer + SpanStore + exemplars"),
        BenchMetric("full_over_null", "x", "lower",
                    "full trace pipeline over the unobserved loop"),
    ],
    run_bench,
    seed="trace-overhead",
    description="Trace propagation + span storage + exemplar overhead",
)


def test_trace_pipeline_overhead(benchmark, emit):
    n_polls = _n_polls(MODE)
    smoke = MODE == "smoke"
    null_s, tracer_s, _ = _three_way(MODE, "trace-overhead", full_loop=False)

    # Re-run the full pipeline under pytest-benchmark so the JSON
    # carries a real wall number for the instrumented configuration.
    telemetry = obs_runtime.get()
    full_s = benchmark.pedantic(
        lambda: _poll_loop_seconds("trace-overhead/store", n_polls),
        rounds=1 if smoke else 3, iterations=1,
    )

    store = telemetry.store
    assert len(store) > 0, "full pipeline must have ingested traces"
    p99 = store.percentile(0.99, name="verifier.poll")
    stage_family = telemetry.registry.get("verifier_stage_wall_seconds")
    exemplars = sum(
        len(child.exemplars) for _, child in stage_family.samples()
    ) if stage_family is not None else 0

    per_poll = lambda seconds: seconds / n_polls * 1e6  # noqa: E731
    emit()
    emit(f"Trace-pipeline overhead ({n_polls} polls"
         f"{', smoke' if smoke else ''})")
    emit(f"  telemetry off:        {per_poll(null_s):9.1f} us/poll")
    emit(f"  tracer only:          {per_poll(tracer_s):9.1f} us/poll "
         f"({tracer_s / null_s - 1.0:+.1%})")
    emit(f"  tracer+store+exemplars:{per_poll(full_s):8.1f} us/poll "
         f"({full_s / null_s - 1.0:+.1%})")
    emit(f"  store: {store.stats()}  p99(verifier.poll)={p99 * 1000:.3f}ms  "
         f"stage exemplars={exemplars}")

    benchmark.extra_info["trace_overhead"] = {
        "null_us_per_poll": round(per_poll(null_s), 2),
        "tracer_us_per_poll": round(per_poll(tracer_s), 2),
        "full_us_per_poll": round(per_poll(full_s), 2),
        "store": store.stats(),
    }
    # The full trace pipeline must stay within one order of magnitude
    # of the unobserved loop (loose bound for noisy CI boxes).
    assert full_s < null_s * 10.0
