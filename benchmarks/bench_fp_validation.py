"""E6 / Section III-D: the 66-day zero-false-positive validation.

Prints the validation summary over both long runs (31 daily + 35
weekly days) and the injected 2024-03-27 operator error, and benchmarks
the steady-state verifier poll (the operation that ran continuously for
66 days).

Paper targets: zero FPs across 36 updates, except one operator error
(installing from the official archive after the mirror sync).
"""

from __future__ import annotations

from repro.experiments.testbed import build_testbed, TestbedConfig


def test_fp_validation_66_days(benchmark, emit, daily_result, weekly_result, incident_result):
    testbed = build_testbed(TestbedConfig(seed="validation-bench"))
    testbed.workload.daily(5)
    testbed.poll()

    result = benchmark(lambda: testbed.poll())
    assert result.ok

    total_days = daily_result.n_days + weekly_result.n_days
    total_updates = len(daily_result.cycles) + len(weekly_result.cycles)
    total_polls = daily_result.total_polls + weekly_result.total_polls
    total_fps = len(daily_result.fp_incidents) + len(weekly_result.fp_incidents)

    emit()
    emit("Zero-FP validation (dynamic policy generation)")
    emit(f"  simulated days:   {total_days} (paper: 66)")
    emit(f"  update cycles:    {total_updates} (paper: 36)")
    emit(f"  attestation polls: {total_polls}, all green")
    emit(f"  false positives:  {total_fps} (paper: 0 in normal operation)")
    assert total_fps == 0
    assert daily_result.ok_polls == daily_result.total_polls
    assert weekly_result.ok_polls == weekly_result.total_polls

    emit("\nInjected operator error (2024-03-27 incident, day 30):")
    incident_days = sorted({incident.day for incident in incident_result.fp_incidents})
    emit(f"  FPs fired on days {incident_days} "
          f"({len(incident_result.fp_incidents)} failures recorded)")
    assert incident_result.fp_incidents, "the incident must fire a false positive"
    assert min(incident_days) >= 30, "no FP before the operator error"
    emit(
        "  paper: the only attestation stop in 66 days was an operator\n"
        "  installing from the official archive after the 05:00 mirror\n"
        "  sync -- reproduced above; all other days stayed green."
    )
