"""Shared fixtures for the benchmark harness.

The expensive experiment runs (31-day daily, 35-day weekly, the attack
matrices) execute once per session and are shared by every bench that
prints a table or figure.  The ``benchmark`` fixture then times a
*representative unit of work* for that experiment (one generator run,
one poll, one attack trial), so ``--benchmark-only`` output carries real
performance numbers while each bench's stdout carries the reproduced
paper artifact.

Scale note: the synthetic release stream uses the paper-calibrated
defaults (16.5 pkgs/day, ~77 executables/package); the *base system* is
scaled down (~100 packages instead of the paper's ~4,200) because the
figures and Table I measure per-update deltas, which are independent of
base-system size.  EXPERIMENTS.md records this substitution.
"""

from __future__ import annotations

import pytest

from repro.experiments.fn_matrix import FnMatrixResult, run_attack_matrix
from repro.experiments.fp_week import FpWeekResult, run_fp_week
from repro.experiments.longrun import LongRunResult, run_longrun
from repro.experiments.testbed import TestbedConfig
from repro.obs import runtime as obs_runtime

BENCH_SEED = "dsn2025-repro"


@pytest.fixture(autouse=True)
def bench_telemetry(request):
    """Per-test telemetry, attached to the pytest-benchmark JSON.

    Every bench runs with an active registry/tracer so the instrumented
    hot paths record per-phase breakdowns; when the test also used the
    ``benchmark`` fixture the roll-up lands in ``extra_info["obs"]`` and
    ships with BENCH_*.json.
    """
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames else None
    )
    telemetry = obs_runtime.activate()
    try:
        yield telemetry
    finally:
        obs_runtime.deactivate()
        if benchmark is None:
            return
        spans = {
            name: {
                "count": stats.count,
                "wall_total_s": round(stats.wall_total, 6),
                "sim_total_s": round(stats.sim_total, 3),
            }
            for name, stats in sorted(telemetry.tracer.aggregate().items())
        }
        counters = {}
        for family in telemetry.registry.families():
            if family.kind != "counter":
                continue
            for labels, child in family.samples():
                suffix = "".join(f"{{{k}={v}}}" for k, v in sorted(labels.items()))
                counters[f"{family.name}{suffix}"] = child.value
        benchmark.extra_info["obs"] = {"spans": spans, "counters": counters}


@pytest.fixture()
def emit(capfd):
    """Print a reproduced table/figure straight to the terminal.

    The artifacts the benches print are their primary output; pytest's
    capture would hide them on passing runs, and ``disabled()`` only
    takes effect when entered *inside* the test call, so benches call
    this helper instead of ``print``.  The explicit flush matters: a
    piped stdout is block-buffered, and anything still in the buffer
    when capture re-engages is swallowed.
    """
    import sys

    def _emit(*args, **kwargs) -> None:
        with capfd.disabled():
            print(*args, **kwargs)
            sys.stdout.flush()

    return _emit


def bench_config(seed_suffix: str = "", **overrides) -> TestbedConfig:
    """The standard benchmark-scale testbed configuration.

    The package population is large enough (600 filler packages) that
    uniform update draws rarely collide on a name within one day, and
    the per-package executable count matches the paper's effective mean
    (~77, pinned by Fig 5's 1,271 entries over Fig 4's 16.5 packages).
    """
    config = TestbedConfig(
        seed=f"{BENCH_SEED}/{seed_suffix}",
        n_filler_packages=600,
        mean_exec_files=77.0,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


@pytest.fixture(scope="session")
def daily_result() -> LongRunResult:
    """E2-E4/E6: the 31-day daily-update run (2024-02-26 -> 03-28).

    The seed picks a 31-day window whose heavy-tailed update stream
    resembles the paper's observed one (a handful of >100-package days
    among mostly-small ones); see EXPERIMENTS.md for the comparison.
    """
    return run_longrun(config=bench_config("daily-h"), n_days=31, cadence_days=1)


@pytest.fixture(scope="session")
def weekly_result() -> LongRunResult:
    """E5: the 35-day weekly-update run (2024-05-06 -> 06-03)."""
    return run_longrun(config=bench_config("weekly"), n_days=35, cadence_days=7)


@pytest.fixture(scope="session")
def incident_result() -> LongRunResult:
    """E6: the daily run with the 2024-03-27 operator error injected.

    Day 30 of the 31-day window corresponds to March 27.
    """
    return run_longrun(
        config=bench_config("incident"), n_days=31, cadence_days=1,
        official_on_days={30},
    )


@pytest.fixture(scope="session")
def fp_week_result() -> FpWeekResult:
    """E1: the benign week against the static policy."""
    config = bench_config("fpweek", policy_mode="static", continue_on_failure=True)
    return run_fp_week(config=config, n_days=7)


@pytest.fixture(scope="session")
def stock_matrix() -> FnMatrixResult:
    """E7: the 8-attack matrix against stock Keylime/IMA."""
    return run_attack_matrix(mitigated=False, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def mitigated_matrix() -> FnMatrixResult:
    """E7: the 8-attack matrix with M1-M4 applied."""
    return run_attack_matrix(mitigated=True, seed=BENCH_SEED)
