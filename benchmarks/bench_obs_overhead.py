"""Overhead of the telemetry + health-monitoring layer on the poll loop.

The anti-P2 watch only earns its keep if watching is cheap: a verifier
operator will not run a gap detector that meaningfully slows the
attestation loop.  This bench times the same N-poll loop three ways --
telemetry off (the null-object fast path), telemetry on, and telemetry
on with a :class:`repro.obs.health.HealthWatch` ticking after every
poll -- and reports the per-poll cost of each increment.

Smoke mode (``REPRO_BENCH_SMOKE=1`` under pytest, ``--smoke`` under the
harness) shrinks the loop; previously this bench had no smoke shape at
all and CI paid the full 200-poll measurement.
"""

from __future__ import annotations

from time import perf_counter

from common import bench_mode, pick
from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.obs import runtime as obs_runtime
from repro.obs.health import HealthWatch
from repro.obs.perf import BenchMetric, register_bench
from repro.obs.runtime import Telemetry

MODE = bench_mode()
POLL_INTERVAL = 1800.0


def _n_polls(mode: str) -> int:
    return pick(mode, 40, 200)


def _poll_loop_seconds(
    seed: str, n_polls: int, with_watch: bool = False
) -> float:
    """Build a small rig and time N polls (build cost excluded)."""
    testbed = build_testbed(TestbedConfig(seed=seed, n_filler_packages=15))
    watch = None
    if with_watch:
        telemetry = obs_runtime.get()
        watch = HealthWatch(tick_interval=POLL_INTERVAL)
        watch.attach(
            testbed.events,
            registry=telemetry.registry if telemetry.enabled else None,
            tracer=telemetry.tracer if telemetry.enabled else None,
            audit=testbed.audit,
            poll_interval=POLL_INTERVAL,
        )
        watch.watch_agent(testbed.agent_id, POLL_INTERVAL)

    start = perf_counter()
    for _ in range(n_polls):
        testbed.scheduler.clock.advance_by(POLL_INTERVAL)
        assert testbed.poll().ok
        if watch is not None:
            watch.tick(testbed.scheduler.clock.now)
    elapsed = perf_counter() - start

    if watch is not None:
        # A healthy loop must raise no critical alerts.  (Warning-level
        # latency anomalies are allowed: a tight bench loop has real
        # wall-clock jitter, which is exactly what that detector reads.)
        assert not [a for a in watch.engine.history if a.severity == "critical"]
    return elapsed


def _null_loop_seconds(seed: str, n_polls: int) -> float:
    """The unobserved baseline; restores the caller's active bundle."""
    entry = obs_runtime.get()
    obs_runtime.deactivate()
    try:
        return _poll_loop_seconds(seed, n_polls)
    finally:
        if isinstance(entry, Telemetry):
            obs_runtime.activate(entry)
        else:
            obs_runtime.activate()


def run_bench(mode: str, seed: str) -> dict[str, float]:
    """Harness core: per-poll cost of telemetry and the health watch."""
    n_polls = _n_polls(mode)
    null_s = _null_loop_seconds(f"{seed}/null", n_polls)
    instrumented_s = _poll_loop_seconds(f"{seed}/metrics", n_polls)
    watched_s = _poll_loop_seconds(
        f"{seed}/watched", n_polls, with_watch=True
    )
    per_poll = 1e6 / n_polls
    return {
        "null_us_per_poll": null_s * per_poll,
        "instrumented_us_per_poll": instrumented_s * per_poll,
        "watched_us_per_poll": watched_s * per_poll,
        "watched_over_null": watched_s / null_s if null_s > 0 else 0.0,
    }


register_bench(
    "obs",
    [
        BenchMetric("null_us_per_poll", "us", "lower",
                    "poll cost, telemetry off (null-object fast path)"),
        BenchMetric("instrumented_us_per_poll", "us", "lower",
                    "poll cost with metrics + spans recording"),
        BenchMetric("watched_us_per_poll", "us", "lower",
                    "poll cost with metrics + spans + HealthWatch tick"),
        BenchMetric("watched_over_null", "x", "lower",
                    "whole observability stack over the unobserved loop"),
    ],
    run_bench,
    seed="obs-overhead",
    description="Telemetry + health-watch overhead on the poll loop",
)


def test_poll_loop_overhead(benchmark, emit):
    n_polls = _n_polls(MODE)
    smoke = MODE == "smoke"
    null_s = _null_loop_seconds("obs-overhead/null", n_polls)
    instrumented_s = _poll_loop_seconds("obs-overhead/metrics", n_polls)
    watched_s = benchmark.pedantic(
        lambda: _poll_loop_seconds(
            "obs-overhead/watched", n_polls, with_watch=True
        ),
        rounds=1 if smoke else 3, iterations=1,
    )

    per_poll = lambda seconds: seconds / n_polls * 1e6  # noqa: E731
    emit()
    emit(f"Poll-loop observability overhead ({n_polls} polls"
         f"{', smoke' if smoke else ''})")
    emit(f"  telemetry off:            {per_poll(null_s):9.1f} us/poll")
    emit(f"  metrics+spans:            {per_poll(instrumented_s):9.1f} us/poll "
         f"({instrumented_s / null_s - 1.0:+.1%})")
    emit(f"  metrics+spans+healthwatch:{per_poll(watched_s):9.1f} us/poll "
         f"({watched_s / null_s - 1.0:+.1%})")
    emit(f"  monitoring-layer increment over bare telemetry: "
         f"{(watched_s - instrumented_s) / n_polls * 1e6:.1f} us/poll")

    benchmark.extra_info["overhead"] = {
        "null_us_per_poll": round(per_poll(null_s), 2),
        "instrumented_us_per_poll": round(per_poll(instrumented_s), 2),
        "watched_us_per_poll": round(per_poll(watched_s), 2),
    }
    # Wall-clock bound kept deliberately loose for noisy CI boxes: the
    # whole observability stack must stay within one order of magnitude
    # of the unobserved loop.
    assert watched_s < null_s * 10.0
