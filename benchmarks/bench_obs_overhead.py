"""Overhead of the telemetry + health-monitoring layer on the poll loop.

The anti-P2 watch only earns its keep if watching is cheap: a verifier
operator will not run a gap detector that meaningfully slows the
attestation loop.  This bench times the same N-poll loop three ways --
telemetry off (the null-object fast path), telemetry on, and telemetry
on with a :class:`repro.obs.health.HealthWatch` ticking after every
poll -- and reports the per-poll cost of each increment.
"""

from __future__ import annotations

from time import perf_counter

from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.obs import runtime as obs_runtime
from repro.obs.health import HealthWatch

N_POLLS = 200
POLL_INTERVAL = 1800.0


def _poll_loop_seconds(seed: str, with_watch: bool = False) -> float:
    """Build a small rig and time N polls (build cost excluded)."""
    testbed = build_testbed(TestbedConfig(seed=seed, n_filler_packages=15))
    watch = None
    if with_watch:
        telemetry = obs_runtime.get()
        watch = HealthWatch(tick_interval=POLL_INTERVAL)
        watch.attach(
            testbed.events,
            registry=telemetry.registry if telemetry.enabled else None,
            tracer=telemetry.tracer if telemetry.enabled else None,
            audit=testbed.audit,
            poll_interval=POLL_INTERVAL,
        )
        watch.watch_agent(testbed.agent_id, POLL_INTERVAL)

    start = perf_counter()
    for _ in range(N_POLLS):
        testbed.scheduler.clock.advance_by(POLL_INTERVAL)
        assert testbed.poll().ok
        if watch is not None:
            watch.tick(testbed.scheduler.clock.now)
    elapsed = perf_counter() - start

    if watch is not None:
        # A healthy loop must raise no critical alerts.  (Warning-level
        # latency anomalies are allowed: a tight bench loop has real
        # wall-clock jitter, which is exactly what that detector reads.)
        assert not [a for a in watch.engine.history if a.severity == "critical"]
    return elapsed


def test_poll_loop_overhead(benchmark, emit):
    # Null baseline: the autouse bench fixture activated telemetry;
    # drop to the null objects for the unobserved loop.
    obs_runtime.deactivate()
    try:
        null_s = _poll_loop_seconds("obs-overhead/null")
    finally:
        obs_runtime.activate()

    instrumented_s = _poll_loop_seconds("obs-overhead/metrics")
    watched_s = benchmark.pedantic(
        lambda: _poll_loop_seconds("obs-overhead/watched", with_watch=True),
        rounds=3, iterations=1,
    )

    per_poll = lambda seconds: seconds / N_POLLS * 1e6  # noqa: E731
    emit()
    emit(f"Poll-loop observability overhead ({N_POLLS} polls)")
    emit(f"  telemetry off:            {per_poll(null_s):9.1f} us/poll")
    emit(f"  metrics+spans:            {per_poll(instrumented_s):9.1f} us/poll "
         f"({instrumented_s / null_s - 1.0:+.1%})")
    emit(f"  metrics+spans+healthwatch:{per_poll(watched_s):9.1f} us/poll "
         f"({watched_s / null_s - 1.0:+.1%})")
    emit(f"  monitoring-layer increment over bare telemetry: "
         f"{(watched_s - instrumented_s) / N_POLLS * 1e6:.1f} us/poll")

    benchmark.extra_info["overhead"] = {
        "null_us_per_poll": round(per_poll(null_s), 2),
        "instrumented_us_per_poll": round(per_poll(instrumented_s), 2),
        "watched_us_per_poll": round(per_poll(watched_s), 2),
    }
    # Wall-clock bound kept deliberately loose for noisy CI boxes: the
    # whole observability stack must stay within one order of magnitude
    # of the unobserved loop.
    assert watched_s < null_s * 10.0
