"""Shared helpers for the bench suite.

Before the perf observatory, each ``bench_*.py`` re-implemented two
things inconsistently: the ``REPRO_BENCH_SMOKE`` environment check (two
scripts had none at all) and a copy-pasted seeded-fleet builder (three
near-identical ``_build_fleet`` bodies differing only in seed, filler
count and push flag).  This module is the single source for both, plus
the mode plumbing the harness registration API relies on:

* :func:`smoke_enabled` / :func:`bench_mode` -- the one environment
  check.  Under pytest a bench reads these at import time exactly as
  before; under the harness the mode arrives as the runner argument
  and the environment is never consulted.
* :func:`pick` -- mode-parameterized constants, replacing the
  ``X if SMOKE else Y`` module globals so one core serves both modes.
* :func:`build_bench_fleet` -- the unified seeded fleet builder.
* :func:`restored_telemetry` -- run a bench core under a fresh
  telemetry bundle and restore whatever was active before, so cores
  that juggle activation (null-baseline loops, per-rig registries) are
  safe under both pytest's autouse fixture and the harness runner.

Determinism contract: everything here is a pure function of its
arguments -- the fleet builder draws only from ``SeededRng(seed)`` and
the simulated clock, never the wall clock or global RNG -- so a bench
workload is reproducible from the ``(mode, seed)`` pair stamped into
its :class:`repro.obs.perf.BenchRecord`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.common.clock import Scheduler
from repro.common.events import EventLog
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import build_base_system
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.fleet import Fleet
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.obs import runtime as obs_runtime
from repro.obs.runtime import Telemetry
from repro.tpm.device import TpmManufacturer

KERNEL = "5.15.0-91-generic"


def smoke_enabled() -> bool:
    """The uniform ``REPRO_BENCH_SMOKE`` check (unset/``0`` = full)."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def bench_mode() -> str:
    """The environment-selected mode: ``smoke`` or ``full``."""
    return "smoke" if smoke_enabled() else "full"


def pick(mode: str, smoke, full):
    """The mode-appropriate one of two parameter values."""
    return smoke if mode == "smoke" else full


def build_bench_fleet(
    size: int,
    seed: str,
    n_filler_packages: int = 20,
    mean_exec_files: float = 5.0,
    kernel_version: str = KERNEL,
    push_mode: bool = False,
    with_events: bool = False,
) -> Fleet:
    """A seeded bench-scale fleet (archive -> mirror -> policy -> fleet).

    The one builder behind the pipeline, TSDB and push benches; the
    scheduler is reachable as ``fleet.scheduler`` and the event log (if
    requested) as ``fleet.events``.
    """
    rng = SeededRng(seed)
    scheduler = Scheduler()
    events = EventLog() if with_events else None
    archive = UbuntuArchive()
    base = build_base_system(
        rng.fork("base"), n_filler_packages=n_filler_packages,
        mean_exec_files=mean_exec_files, kernel_version=kernel_version,
    )
    archive.seed(base)
    mirror = LocalMirror(archive, events=events)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(
        mirror, events=events, rng=rng.fork("gen")
    )
    policy, _ = generator.generate_full(
        list(IBM_STYLE_EXCLUDES), {kernel_version}
    )
    manufacturer = TpmManufacturer("Bench", rng.fork("tpm"))
    return Fleet(
        size, mirror, manufacturer, scheduler, rng.fork("fleet"), policy,
        events=events, kernel_version=kernel_version,
        push_mode=push_mode,
    )


@contextmanager
def restored_telemetry() -> Iterator[Telemetry]:
    """A fresh active telemetry bundle; restores the previous state.

    Bench cores toggle activation mid-run (null baselines, per-rig
    registries); this guard means they can, without caring whether the
    caller was pytest's autouse fixture or the harness runner -- on
    exit the caller's bundle (or the null state) is back.
    """
    previous = obs_runtime.get()
    telemetry = obs_runtime.activate()
    try:
        yield telemetry
    finally:
        if isinstance(previous, Telemetry):
            obs_runtime.activate(previous)
        else:
            obs_runtime.deactivate()
