"""E5 / Table I: daily vs weekly update cadence, per-update averages.

Prints the reproduced Table I and benchmarks the weekly-scale generator
run (the larger of the two cadences).

Paper targets: daily = 15.6 low-pri + 0.9 high-pri pkgs, 1,271 files,
2.36 min; weekly = 76.4 + 2.6 pkgs, 5,513 files, 7.50 min -- i.e. the
weekly per-update cost is a small multiple of the daily cost, and the
paper recommends daily anyway because of update latency.
"""

from __future__ import annotations

from repro.analysis import render_table1
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import (
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
)
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.experiments.longrun import table1_rows
from repro.keylime.policy import RuntimePolicy


def test_table1_daily_vs_weekly(benchmark, emit, daily_result, weekly_result):
    # Benchmark one weekly-sized generator run.
    rng = SeededRng("table1-bench")
    archive = UbuntuArchive()
    base = build_base_system(rng.fork("base"), n_filler_packages=100)
    archive.seed(base)
    stream = SyntheticReleaseStream(
        archive, base, rng.fork("stream"), ReleaseStreamConfig()
    )
    for day in range(1, 8):
        stream.generate_day(day)
    mirror = LocalMirror(archive)
    mirror.sync(0.0)
    sync = mirror.sync(8 * 86400.0)
    generator = DynamicPolicyGenerator(mirror)
    changed = list(sync.new_packages) + list(sync.changed_packages)

    def weekly_update():
        policy = RuntimePolicy()
        return generator.generate_update(policy, changed, {"5.15.0-91-generic"})

    report = benchmark(weekly_update)
    assert report.packages_total > 0

    rows = table1_rows(daily_result, weekly_result)
    emit()
    emit(render_table1(rows))
    emit(
        "\npaper:  Daily  15.6 / 0.9 / 1,271 files / 2.36 min\n"
        "        Weekly 76.4 / 2.6 / 5,513 files / 7.50 min"
    )
    daily_row, weekly_row = rows
    ratio = weekly_row["files_updated"] / max(1.0, daily_row["files_updated"])
    emit(f"weekly/daily files ratio: {ratio:.1f}x (paper: ~4.3x)")
    assert weekly_row["files_updated"] > daily_row["files_updated"]
    assert weekly_row["time_minutes"] > daily_row["time_minutes"]
