"""E3 / Fig 4: new/changed packages with executables per update.

Prints the reproduced figure and benchmarks the mirror-sync diff that
produces the per-day package counts.

Paper targets: mean 16.5 (std 26.8) packages/day; high-priority mean
0.9 (std 2.2); most days < 30 packages.
"""

from __future__ import annotations

from repro.analysis import render_fig4
from repro.common.rng import SeededRng
from repro.common.units import summarize
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import (
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
)


def test_fig4_packages_per_update(benchmark, emit, daily_result):
    rng = SeededRng("fig4-bench")
    archive = UbuntuArchive()
    base = build_base_system(rng.fork("base"), n_filler_packages=100)
    archive.seed(base)
    stream = SyntheticReleaseStream(
        archive, base, rng.fork("stream"), ReleaseStreamConfig()
    )
    for day in range(1, 8):
        stream.generate_day(day)
    mirror = LocalMirror(archive)

    state = {"now": 0.0}

    def sync_and_diff():
        state["now"] += 86400.0
        return mirror.sync(state["now"])

    benchmark.pedantic(sync_and_diff, rounds=7, iterations=1)

    emit()
    emit(render_fig4(daily_result))
    totals = summarize([float(v) for v in daily_result.packages_per_update])
    high = summarize([float(v) for v in daily_result.high_priority_per_update])
    emit(
        f"\npaper: total mean=16.5 std=26.8, high-pri mean=0.9 std=2.2 | "
        f"reproduced: total mean={totals['mean']:.1f} std={totals['std']:.1f}, "
        f"high-pri mean={high['mean']:.1f} std={high['std']:.1f}"
    )
    under_30 = sum(1 for v in daily_result.packages_per_update if v < 30)
    emit(f"days under 30 packages: {under_30}/{len(daily_result.packages_per_update)} "
          "(paper: 'the majority of updates have less than 30')")
