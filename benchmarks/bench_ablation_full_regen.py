"""Ablation: incremental policy append vs full regeneration.

DESIGN.md section 5: "A key advantage of dynamic policy generation is
that we can account for specific package updates and append new hashes
to the existing policy, which is more efficient than regenerating the
policy entirely."  This bench quantifies that claim with the cost model
over a paper-calibrated day.
"""

from __future__ import annotations

from repro.common.rng import SeededRng
from repro.common.units import format_duration
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import (
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
)
from repro.dynpolicy.costmodel import CostModelConfig, GeneratorCostModel
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.policy import RuntimePolicy


def test_ablation_incremental_vs_full_regeneration(benchmark, emit):
    rng = SeededRng("ablation-regen")
    archive = UbuntuArchive()
    base = build_base_system(rng.fork("base"), n_filler_packages=300, mean_exec_files=20)
    archive.seed(base)
    stream = SyntheticReleaseStream(
        archive, base, rng.fork("stream"), ReleaseStreamConfig()
    )
    stream.generate_day(1)
    mirror = LocalMirror(archive)
    mirror.sync(0.0)
    sync = mirror.sync(2 * 86400.0)
    changed = list(sync.new_packages) + list(sync.changed_packages)
    model = GeneratorCostModel(CostModelConfig(jitter_sigma=0.0))
    generator = DynamicPolicyGenerator(mirror, cost_model=model)

    def incremental():
        policy = RuntimePolicy()
        return generator.generate_update(policy, changed, {"5.15.0-91-generic"})

    report = benchmark(incremental)

    incremental_seconds = model.batch_seconds(changed)
    full_seconds = model.full_regeneration_seconds(mirror.packages())

    emit()
    emit("Ablation: incremental append vs full policy regeneration")
    emit(f"  packages measured incrementally: {len(changed)} "
          f"(modelled {format_duration(incremental_seconds)})")
    emit(f"  packages in a full regeneration: {len(mirror.packages())} "
          f"(modelled {format_duration(full_seconds)})")
    emit(f"  speedup: {full_seconds / incremental_seconds:.1f}x "
          "(grows with base-system size; the paper's system has ~4,200 packages)")
    assert full_seconds > incremental_seconds * 5
    assert report.entries_added > 0
