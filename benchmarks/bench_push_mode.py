"""Push-mode vs pull-mode attestation throughput at fleet scale.

The push exchange (negotiate -> submit -> verdict) replaces one
challenge/response round-trip with three protocol frames, but the
verification work -- quote check, log replay, policy evaluation -- is
the shared pipeline either way.  This bench prices the protocol
overhead at a 50-node fleet: the same seeded fleet attested for N
rounds in pull mode and in push mode, verdict-equivalence asserted,
wall cost per round compared.  The durable-state layer rides along:
one snapshot/restore cycle of the 50-node verifier is timed too, since
a crash-resume story is only practical if the snapshot is cheap.

Smoke mode (``REPRO_BENCH_SMOKE=1`` under pytest, ``--smoke`` under the
harness) shrinks the fleet and round count so the equivalence and cost
assertions run in seconds.
"""

from __future__ import annotations

import os
import tempfile
from time import perf_counter

from common import bench_mode, build_bench_fleet, pick
from repro.keylime.fleet import Fleet
from repro.keylime.statestore import restore_from_file, write_snapshot
from repro.obs.perf import BenchMetric, register_bench

MODE = bench_mode()
ROUND_INTERVAL = 1800.0


def _params(mode: str) -> tuple[int, int]:
    """(fleet size, attestation rounds)."""
    return pick(mode, (8, 4), (50, 12))


def _build(mode: str, seed: str, push_mode: bool) -> Fleet:
    size = _params(mode)[0]
    return build_bench_fleet(
        size, seed, n_filler_packages=10, mean_exec_files=5.0,
        push_mode=push_mode, with_events=True,
    )


def _run_rounds(fleet: Fleet, n_rounds: int) -> float:
    """Time N whole-fleet attestation rounds (build cost excluded)."""
    start = perf_counter()
    for _ in range(n_rounds):
        fleet.scheduler.clock.advance_by(ROUND_INTERVAL)
        fleet.poll_scheduler.poll_batch()
    return perf_counter() - start


def _results(fleet: Fleet):
    return {
        node.agent.agent_id: fleet.verifier.results_of(node.agent.agent_id)
        for node in fleet.nodes
    }


def _snapshot_cycle(
    fleet: Fleet, twin: Fleet, path
) -> tuple[dict, float, float]:
    """(snapshot header, write seconds, restore seconds)."""
    snap_start = perf_counter()
    header = write_snapshot(path, fleet.verifier)
    snap_s = perf_counter() - snap_start
    restore_start = perf_counter()
    restore_from_file(twin.verifier, path)
    restore_s = perf_counter() - restore_start
    return header, snap_s, restore_s


def run_bench(mode: str, seed: str) -> dict[str, float]:
    """Harness core: pull vs push round cost + snapshot cycle.

    Verdict equivalence is asserted here too -- a recorded push number
    is worthless if push mode stopped producing pull's verdicts -- and
    ``snapshot_bytes`` is a pure function of the seeded fleet, so it
    compares exactly across same-seed runs.
    """
    n_nodes, n_rounds = _params(mode)
    pull_fleet = _build(mode, seed, push_mode=False)
    pull_s = _run_rounds(pull_fleet, n_rounds)
    push_fleet = _build(mode, seed, push_mode=True)
    push_s = _run_rounds(push_fleet, n_rounds)

    pull_results = _results(pull_fleet)
    push_results = _results(push_fleet)
    for agent_id, expected in pull_results.items():
        assert push_results[agent_id][:n_rounds] == expected[:n_rounds], (
            agent_id
        )
    assert all(
        result.ok for results in push_results.values() for result in results
    )

    twin = _build(mode, seed, push_mode=True)
    with tempfile.TemporaryDirectory(prefix="bench-push-") as tmp:
        header, snap_s, restore_s = _snapshot_cycle(
            push_fleet, twin, os.path.join(tmp, "bench.snap")
        )

    rounds_total = n_nodes * n_rounds
    per_round = 1e6 / rounds_total
    return {
        "pull_us_per_round": pull_s * per_round,
        "push_us_per_round": push_s * per_round,
        "push_over_pull": push_s / pull_s if pull_s > 0 else 0.0,
        "snapshot_bytes": float(header["body_bytes"]),
        "snapshot_write_ms": snap_s * 1e3,
        "snapshot_restore_ms": restore_s * 1e3,
    }


register_bench(
    "push",
    [
        BenchMetric("pull_us_per_round", "us", "lower",
                    "challenge/response cost per attestation round"),
        BenchMetric("push_us_per_round", "us", "lower",
                    "negotiate/submit cost per attestation round"),
        BenchMetric("push_over_pull", "x", "lower",
                    "push protocol cost relative to pull"),
        BenchMetric("snapshot_bytes", "B", "lower",
                    "seed-deterministic verifier snapshot size"),
        BenchMetric("snapshot_write_ms", "ms", "lower",
                    "verifier snapshot write cost"),
        BenchMetric("snapshot_restore_ms", "ms", "lower",
                    "verifier snapshot restore cost"),
    ],
    run_bench,
    seed="push-bench",
    description="Push vs pull attestation cost + snapshot cycle",
)


def test_push_vs_pull_throughput(benchmark, emit, tmp_path):
    n_nodes, n_rounds = _params(MODE)
    smoke = MODE == "smoke"
    pull_fleet = _build(MODE, "push-bench", push_mode=False)
    pull_s = _run_rounds(pull_fleet, n_rounds)

    push_fleet = _build(MODE, "push-bench", push_mode=True)
    push_s = benchmark.pedantic(
        lambda: _run_rounds(push_fleet, n_rounds), rounds=1, iterations=1,
    )

    # The tentpole property, asserted where it is priced: first
    # N_ROUNDS of verdict history identical across modes.
    pull_results = _results(pull_fleet)
    push_results = _results(push_fleet)
    for agent_id, expected in pull_results.items():
        assert push_results[agent_id][:n_rounds] == expected[:n_rounds], (
            agent_id
        )

    rounds_total = n_nodes * n_rounds
    per_round = lambda seconds: seconds / rounds_total * 1e6  # noqa: E731

    twin = _build(MODE, "push-bench", push_mode=True)
    header, snap_s, restore_s = _snapshot_cycle(
        push_fleet, twin, tmp_path / "bench.snap"
    )

    emit()
    emit(f"Push vs pull attestation ({n_nodes} nodes x {n_rounds} rounds"
         f"{', smoke' if smoke else ''})")
    emit(f"  pull (challenge/response): {per_round(pull_s):9.1f} us/round")
    emit(f"  push (negotiate/submit):   {per_round(push_s):9.1f} us/round "
         f"({push_s / pull_s - 1.0:+.1%})")
    emit(f"  verdict equivalence:       {rounds_total} rounds bit-identical")
    emit(f"  snapshot {header['body_bytes'] / 1024.0:.0f} KiB: "
         f"write {snap_s * 1e3:.1f} ms, restore {restore_s * 1e3:.1f} ms "
         f"({header['agents']} agents)")

    benchmark.extra_info["push_mode"] = {
        "nodes": n_nodes,
        "rounds": n_rounds,
        "pull_us_per_round": round(per_round(pull_s), 2),
        "push_us_per_round": round(per_round(push_s), 2),
        "push_over_pull": round(push_s / pull_s, 3),
        "snapshot_bytes": header["body_bytes"],
        "snapshot_write_ms": round(snap_s * 1e3, 3),
        "snapshot_restore_ms": round(restore_s * 1e3, 3),
    }
    # Three frames instead of two legs: protocol overhead must stay
    # within an order of magnitude of pull (loose bound for CI boxes).
    assert push_s < pull_s * 10.0
    assert all(
        result.ok for results in push_results.values() for result in results
    )
