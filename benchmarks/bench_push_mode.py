"""Push-mode vs pull-mode attestation throughput at fleet scale.

The push exchange (negotiate -> submit -> verdict) replaces one
challenge/response round-trip with three protocol frames, but the
verification work -- quote check, log replay, policy evaluation -- is
the shared pipeline either way.  This bench prices the protocol
overhead at a 50-node fleet: the same seeded fleet attested for N
rounds in pull mode and in push mode, verdict-equivalence asserted,
wall cost per round compared.  The durable-state layer rides along:
one snapshot/restore cycle of the 50-node verifier is timed too, since
a crash-resume story is only practical if the snapshot is cheap.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the fleet and
round count so the equivalence and cost assertions run in seconds.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.common.clock import Scheduler
from repro.common.events import EventLog
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import build_base_system
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.fleet import Fleet
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.keylime.statestore import restore_from_file, write_snapshot
from repro.tpm.device import TpmManufacturer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_NODES = 8 if SMOKE else 50
N_ROUNDS = 4 if SMOKE else 12
ROUND_INTERVAL = 1800.0
KERNEL = "5.15.0-91-generic"


def _build_fleet(push_mode: bool) -> Fleet:
    rng = SeededRng("push-bench")
    scheduler = Scheduler()
    events = EventLog()
    archive = UbuntuArchive()
    base = build_base_system(
        rng.fork("base"), n_filler_packages=10,
        mean_exec_files=5.0, kernel_version=KERNEL,
    )
    archive.seed(base)
    mirror = LocalMirror(archive, events=events)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, events=events, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(list(IBM_STYLE_EXCLUDES), {KERNEL})
    manufacturer = TpmManufacturer("Bench", rng.fork("tpm"))
    return Fleet(
        N_NODES, mirror, manufacturer, scheduler, rng.fork("fleet"), policy,
        events=events, kernel_version=KERNEL, wire_transport=True,
        push_mode=push_mode,
    )


def _run_rounds(fleet: Fleet) -> float:
    """Time N whole-fleet attestation rounds (build cost excluded)."""
    start = perf_counter()
    for _ in range(N_ROUNDS):
        fleet.scheduler.clock.advance_by(ROUND_INTERVAL)
        fleet.poll_scheduler.poll_batch()
    return perf_counter() - start


def _results(fleet: Fleet):
    return {
        node.agent.agent_id: fleet.verifier.results_of(node.agent.agent_id)
        for node in fleet.nodes
    }


def test_push_vs_pull_throughput(benchmark, emit, tmp_path):
    pull_fleet = _build_fleet(push_mode=False)
    pull_s = _run_rounds(pull_fleet)

    push_fleet = _build_fleet(push_mode=True)
    push_s = benchmark.pedantic(
        lambda: _run_rounds(push_fleet), rounds=1, iterations=1,
    )

    # The tentpole property, asserted where it is priced: first
    # N_ROUNDS of verdict history identical across modes.
    pull_results = _results(pull_fleet)
    push_results = _results(push_fleet)
    for agent_id, expected in pull_results.items():
        assert push_results[agent_id][:N_ROUNDS] == expected[:N_ROUNDS], agent_id

    rounds_total = N_NODES * N_ROUNDS
    per_round = lambda seconds: seconds / rounds_total * 1e6  # noqa: E731

    snapshot_path = tmp_path / "bench.snap"
    snap_start = perf_counter()
    header = write_snapshot(snapshot_path, push_fleet.verifier)
    snap_s = perf_counter() - snap_start
    twin = _build_fleet(push_mode=True)
    restore_start = perf_counter()
    restore_from_file(twin.verifier, snapshot_path)
    restore_s = perf_counter() - restore_start

    emit()
    emit(f"Push vs pull attestation ({N_NODES} nodes x {N_ROUNDS} rounds"
         f"{', smoke' if SMOKE else ''})")
    emit(f"  pull (challenge/response): {per_round(pull_s):9.1f} us/round")
    emit(f"  push (negotiate/submit):   {per_round(push_s):9.1f} us/round "
         f"({push_s / pull_s - 1.0:+.1%})")
    emit(f"  verdict equivalence:       {rounds_total} rounds bit-identical")
    emit(f"  snapshot {header['body_bytes'] / 1024.0:.0f} KiB: "
         f"write {snap_s * 1e3:.1f} ms, restore {restore_s * 1e3:.1f} ms "
         f"({header['agents']} agents)")

    benchmark.extra_info["push_mode"] = {
        "nodes": N_NODES,
        "rounds": N_ROUNDS,
        "pull_us_per_round": round(per_round(pull_s), 2),
        "push_us_per_round": round(per_round(push_s), 2),
        "push_over_pull": round(push_s / pull_s, 3),
        "snapshot_bytes": header["body_bytes"],
        "snapshot_write_ms": round(snap_s * 1e3, 3),
        "snapshot_restore_ms": round(restore_s * 1e3, 3),
    }
    # Three frames instead of two legs: protocol overhead must stay
    # within an order of magnitude of pull (loose bound for CI boxes).
    assert push_s < pull_s * 10.0
    assert all(
        result.ok for results in push_results.values() for result in results
    )
