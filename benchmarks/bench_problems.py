"""E8 / Section IV-B: focused demonstrations of problems P1-P5.

Prints each demonstration's outcome and benchmarks the cheapest
end-to-end demo (P1) including testbed construction.
"""

from __future__ import annotations

from repro.analysis import render_problem_demos
from repro.experiments.problems import demo_p1, run_all_demos


def test_problem_demonstrations(benchmark, emit):
    demo = benchmark.pedantic(demo_p1, rounds=3, iterations=1)
    assert demo.ima_measured and not demo.verifier_alerted

    demos = run_all_demos()
    emit()
    emit(render_problem_demos(demos))

    by_problem = {demo.problem: demo for demo in demos}
    # The load-bearing claims of Section IV-B, as assertions:
    assert by_problem["P1"].ima_measured and not by_problem["P1"].verifier_alerted
    assert by_problem["P2"].details["halted_after_decoy"]
    assert not by_problem["P2"].verifier_alerted
    assert not by_problem["P3"].ima_measured
    assert by_problem["P4"].details["staged_in_log"]
    assert not by_problem["P4"].details["destination_in_log"]
    assert not by_problem["P5"].ima_measured
    assert by_problem["P5"].details["interpreter_in_log"]
    emit("\nall five problem mechanisms reproduced as described in Section IV-B")
