"""Supplementary materials: the weekly-update experiment in detail.

Section III-D presents the daily experiment's figures and defers the
weekly experiment (35 days, 2024-05-06 -> 06-03) to supplementary
materials.  This bench prints the weekly per-update series -- the
weekly analogues of Figs 3-5 -- plus the conclusion the paper draws
from them: weekly updating saves little per week and leaves the system
days behind on security updates, so daily wins.
"""

from __future__ import annotations

from repro.analysis.figures import render_series
from repro.common.units import summarize


def test_supplementary_weekly_series(benchmark, emit, weekly_result, daily_result):
    result = benchmark(lambda: weekly_result.summary())
    assert result["minutes"]["n"] == len(weekly_result.cycles)

    emit()
    emit(render_series(
        weekly_result.update_minutes,
        "Supplementary: policy update time per WEEKLY update (minutes)",
        "min", label="week",
    ))
    emit()
    emit(render_series(
        [float(v) for v in weekly_result.packages_per_update],
        "Supplementary: packages with executables per weekly update",
        "pkgs", label="week",
    ))
    emit()
    emit(render_series(
        [float(v) for v in weekly_result.entries_per_update],
        "Supplementary: policy entries added per weekly update",
        "entries", label="week",
    ))

    weekly_stats = weekly_result.summary()
    daily_stats = daily_result.summary()
    weekly_total_minutes = sum(weekly_result.update_minutes)
    daily_week_minutes = daily_stats["minutes"]["mean"] * 7
    emit()
    emit(
        f"per-week generator time: weekly cadence "
        f"{weekly_total_minutes / (weekly_result.n_days / 7):.1f} min vs "
        f"daily cadence {daily_week_minutes:.1f} min"
    )
    emit(
        "paper's conclusion, reproduced: the per-update cost of weekly "
        "updates is a small\nmultiple of daily's, so batching saves "
        "little -- and a weekly cadence leaves\nsecurity updates "
        "uninstalled for up to 6 days.  Daily updating wins."
    )
    assert weekly_stats["entries"]["mean"] > daily_stats["entries"]["mean"]
    assert weekly_result.fp_incidents == []
