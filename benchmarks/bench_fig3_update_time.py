"""E2 / Fig 3: time to update an existing Keylime policy, per update.

Prints the reproduced figure (31 daily bars) and benchmarks the unit of
work the figure measures: one incremental generator run over a day's
changed packages.

Paper targets: mean 2.36 min, std 5.26, most days < 10 min.
"""

from __future__ import annotations

from repro.analysis import render_fig3
from repro.common.units import summarize
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import (
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
)
from repro.common.rng import SeededRng
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.policy import IBM_STYLE_EXCLUDES, RuntimePolicy


def _one_day_batch():
    """A representative daily update batch at paper-calibrated scale."""
    rng = SeededRng("fig3-bench")
    archive = UbuntuArchive()
    base = build_base_system(rng.fork("base"), n_filler_packages=100)
    archive.seed(base)
    stream = SyntheticReleaseStream(
        archive, base, rng.fork("stream"), ReleaseStreamConfig()
    )
    stream.generate_day(1)
    mirror = LocalMirror(archive)
    mirror.sync(0.0)
    sync = mirror.sync(2 * 86400.0)
    generator = DynamicPolicyGenerator(mirror)
    changed = list(sync.new_packages) + list(sync.changed_packages)
    return generator, changed


def test_fig3_policy_update_time(benchmark, emit, daily_result):
    generator, changed = _one_day_batch()

    def incremental_update():
        policy = RuntimePolicy(excludes=list(IBM_STYLE_EXCLUDES))
        return generator.generate_update(policy, changed, {"5.15.0-91-generic"})

    report = benchmark(incremental_update)
    assert report.entries_added >= 0

    emit()
    emit(render_fig3(daily_result))
    stats = summarize(daily_result.update_minutes)
    emit(
        f"\npaper: mean=2.36 min std=5.26 | reproduced: "
        f"mean={stats['mean']:.2f} min std={stats['std']:.2f}"
    )
    under_10 = sum(1 for m in daily_result.update_minutes if m < 10.0)
    emit(f"days under 10 min: {under_10}/{len(daily_result.update_minutes)} "
          "(paper: 'for most of the days ... less than 10 minutes')")
