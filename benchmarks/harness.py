"""Unified benchmark harness: discovery, one runner, durable trajectory.

Every ``bench_*.py`` in this directory self-registers with
:func:`repro.obs.perf.register_bench` at import time (name, metrics
with units and better-direction, supported modes, seed).  This module
is the machinery around that registry:

* :func:`discover` imports every ``bench_*.py`` by file path (the
  directory has no package ``__init__``; the path is inserted on
  ``sys.path`` first so ``import common`` resolves exactly as it does
  under pytest) and returns the registered specs.
* :func:`run_benches` executes selected benches in one process under
  one runner: fresh telemetry per bench, environment captured once per
  invocation (python, platform, git SHA), each result normalized into
  a :class:`repro.obs.perf.BenchRecord` stamped with mode + seed and
  durably appended to ``perf/trajectory.jsonl``.  With ``profile=True``
  each bench's hot section runs under the sampling profiler and the
  collapsed flamegraph folds land next to the trajectory in
  ``profiles/``, linked from the record -- so a later ``bench compare``
  regression verdict points at a fold diff, not just a number.

The pytest entry points in each ``bench_*.py`` still exist and still
carry their acceptance assertions; this runner is the *recording* path
(CI smoke trajectory, local ``repro-cli bench run``), sharing the same
``run_bench(mode, seed)`` cores so the two never drift.
"""

from __future__ import annotations

import importlib.util
import os
import sys
from typing import Any, Callable, Iterable

from repro.common.errors import ConfigurationError
from repro.obs import runtime as obs_runtime
from repro.obs.exporters import write_text_atomic
from repro.obs.perf import (
    TRAJECTORY_PATH,
    BenchRecord,
    BenchSpec,
    SamplingProfiler,
    TrajectoryStore,
    capture_environment,
    get_bench,
    record_from_run,
    registered_benches,
)

#: The directory this harness (and the bench modules) live in.
BENCH_DIR = os.path.dirname(os.path.abspath(__file__))

#: Module-name prefix for harness-side imports, distinct from pytest's
#: own top-level module names so one process can hold both without
#: clashing; registration is idempotent either way.
_MODULE_PREFIX = "repro_bench_harness__"


def discover(bench_dir: str | None = None) -> list[BenchSpec]:
    """Import every ``bench_*.py`` under *bench_dir*; return the registry.

    Import errors are not swallowed: a bench that cannot import is a
    broken bench, and CI should say so rather than silently run fewer
    benchmarks than yesterday.
    """
    directory = os.path.abspath(bench_dir or BENCH_DIR)
    if not os.path.isdir(directory):
        raise ConfigurationError(f"bench directory not found: {directory}")
    if directory not in sys.path:
        sys.path.insert(0, directory)
    for filename in sorted(os.listdir(directory)):
        if not filename.startswith("bench_") or not filename.endswith(".py"):
            continue
        module_name = _MODULE_PREFIX + filename[:-3]
        path = os.path.join(directory, filename)
        # Always (re-)exec from the scanned path -- registration is
        # idempotent, module bodies are cheap, and this keeps the
        # registry honest after a clear_registry() or a directory
        # switch reuses a cached module name.
        spec = importlib.util.spec_from_file_location(module_name, path)
        if spec is None or spec.loader is None:
            raise ConfigurationError(f"cannot load bench module {path}")
        module = importlib.util.module_from_spec(spec)
        previous = sys.modules.get(module_name)
        sys.modules[module_name] = module
        try:
            spec.loader.exec_module(module)
        except BaseException:
            if previous is not None:
                sys.modules[module_name] = previous
            else:
                del sys.modules[module_name]
            raise
    return registered_benches()


def select_benches(
    names: Iterable[str] | None = None, bench_dir: str | None = None
) -> list[BenchSpec]:
    """Resolve *names* against the discovered registry (``None`` = all)."""
    specs = discover(bench_dir)
    if names is None:
        return specs
    selected = []
    for name in names:
        found = get_bench(name)
        if found is None:
            known = ", ".join(spec.name for spec in specs) or "(none)"
            raise ConfigurationError(
                f"unknown bench {name!r}; registered: {known}"
            )
        selected.append(found)
    return selected


def profile_path(trajectory_path: str, bench: str, mode: str, seq: int) -> str:
    """Where a run's collapsed folds live, next to its trajectory."""
    root = os.path.dirname(os.path.abspath(trajectory_path))
    return os.path.join(root, "profiles", f"{bench}-{mode}-{seq:05d}.folds")


def run_benches(
    names: Iterable[str] | None = None,
    mode: str = "smoke",
    trajectory_path: str = TRAJECTORY_PATH,
    bench_dir: str | None = None,
    seed: str | None = None,
    profile: bool = False,
    profile_interval: float = 0.005,
    log: Callable[[str], Any] | None = None,
) -> list[BenchRecord]:
    """Run benches under the unified runner; append records; return them.

    Benches that do not support *mode* are skipped with a log line, not
    an error -- ``--all`` must stay usable when one bench is full-only.
    Each bench runs inside a fresh telemetry session (instrumented hot
    paths record, exactly as pytest's autouse fixture arranges) and its
    normalized record is appended durably before the next bench starts,
    so a crash mid-suite loses at most the bench in flight.
    """
    emit = log if log is not None else (lambda message: None)
    specs = select_benches(names, bench_dir)
    if not specs:
        raise ConfigurationError("no benches registered after discovery")
    store = TrajectoryStore(trajectory_path)
    environment = capture_environment()
    records: list[BenchRecord] = []
    for spec in specs:
        if mode not in spec.modes:
            emit(f"skip {spec.name}: no {mode} mode "
                 f"(supports {', '.join(spec.modes)})")
            continue
        run_seed = seed if seed is not None else spec.seed
        emit(f"run {spec.name} [{mode}] seed={run_seed} ...")
        profiler = SamplingProfiler(profile_interval) if profile else None
        with obs_runtime.session():
            if profiler is not None:
                profiler.start()
            try:
                values = spec.runner(mode, run_seed)
            finally:
                if profiler is not None:
                    profiler.stop()
        record = record_from_run(
            spec, mode, values, seed=run_seed, env=environment
        )
        if profiler is not None:
            folds_file = profile_path(
                trajectory_path, spec.name, mode, store.next_seq()
            )
            os.makedirs(os.path.dirname(folds_file), exist_ok=True)
            write_text_atomic(folds_file, profiler.collapsed() + "\n")
            record.profile = folds_file
        store.append(record)
        records.append(record)
        metrics = ", ".join(
            f"{name}={value:.4g}{record.units.get(name, '')}"
            for name, value in sorted(record.metrics.items())
        )
        emit(f"  seq={record.seq} {metrics}")
    return records
