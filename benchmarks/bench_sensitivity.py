"""Extension bench: sensitivity of the dynamic-policy scheme to load.

Sweeps the update-stream intensity (mean packages/day) well past the
paper's observed regime and checks the scheme degrades the way its
design predicts: generator time and policy growth scale linearly with
the update volume, and false positives stay at zero throughout -- the
zero-FP property is a structural consequence of the
generate-before-upgrade ordering, not a fluke of the calibrated load.
"""

from __future__ import annotations

from repro.common.units import summarize
from repro.distro.workload import ReleaseStreamConfig
from repro.experiments.longrun import run_longrun
from repro.experiments.testbed import TestbedConfig


def _run(mean_packages: float, seed: str):
    config = TestbedConfig(
        seed=seed,
        n_filler_packages=120,
        mean_exec_files=15.0,
        stream=ReleaseStreamConfig(
            mean_packages_per_day=mean_packages,
            sd_packages_per_day=mean_packages,  # keep cv fixed
            mean_exec_files_per_package=15.0,
            kernel_release_every_days=0,
        ),
    )
    return run_longrun(config=config, n_days=8)


def test_sensitivity_to_update_volume(benchmark, emit):
    result = benchmark.pedantic(
        lambda: _run(8.0, "sensitivity/benchmarked"), rounds=1, iterations=1
    )
    assert not result.fp_incidents

    emit()
    emit("Sensitivity: update volume vs generator cost and FP rate")
    emit(f"  {'pkgs/day':>9} {'minutes/update':>15} {'entries/update':>15} {'FPs':>4}")
    previous_minutes = 0.0
    for mean_packages in (2.0, 8.0, 32.0, 96.0):
        run = _run(mean_packages, f"sensitivity/{mean_packages}")
        stats = run.summary()
        emit(
            f"  {stats['packages']['mean']:>9.1f} "
            f"{stats['minutes']['mean']:>15.2f} "
            f"{stats['entries']['mean']:>15.0f} {len(run.fp_incidents):>4}"
        )
        assert not run.fp_incidents, "zero-FP must hold at every load"
        assert stats["minutes"]["mean"] >= previous_minutes * 0.8
        previous_minutes = stats["minutes"]["mean"]
    emit("  zero false positives at every load: the property is structural")
    emit("  (policy always updated before the machine is), and the cost")
    emit("  scales linearly with update volume, not with base-system size.")
