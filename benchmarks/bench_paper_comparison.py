"""The executable version of EXPERIMENTS.md's verdict.

Runs the paper-vs-measured comparison over the session's long runs and
attack matrices and asserts every target is within its tolerance band.
If a future change drifts the calibration or breaks a detection
behaviour, this bench is the single place that fails.
"""

from __future__ import annotations

from repro.analysis.compare import (
    compare_longruns,
    compare_matrices,
    render_comparison,
)
from repro.experiments.testbed import build_testbed, TestbedConfig


def test_paper_comparison(
    benchmark, emit, daily_result, weekly_result, stock_matrix, mitigated_matrix
):
    testbed = build_testbed(TestbedConfig(seed="comparison-bench"))
    testbed.poll()
    result = benchmark(lambda: testbed.poll())
    assert result.ok

    rows = compare_longruns(daily_result, weekly_result)
    rows += compare_matrices(stock_matrix, mitigated_matrix)
    emit()
    emit(render_comparison(rows))
    misses = [row for row in rows if not row.within]
    assert not misses, f"targets out of tolerance: {[row.key for row in misses]}"
