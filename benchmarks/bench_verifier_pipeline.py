"""Extension bench: staged verification pipeline and verdict caching.

Not a paper figure -- the paper times one verifier against one VM --
but the pipeline refactor's performance claim needs numbers: a fleet
of same-distro nodes measures nearly identical files, so a shared
:class:`~repro.keylime.policy.VerdictCache` should turn per-node policy
evaluation from O(entries) regex-and-dict work into O(entries) dict
hits, with only the first node paying full price.

The headline metric is **policy-eval stage entries/sec**, read from the
``verifier_stage_wall_seconds{stage=policy_eval}`` histogram the
pipeline records (the full poll also pays quote crypto, which is
cache-independent and would compress the ratio).  Full-poll entries/sec
is reported alongside for context.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the fleet and
skips the ratio assertion -- sub-millisecond stage timings are too
noisy to gate a workflow on.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.common.clock import Scheduler
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import build_base_system
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.keylime.fleet import Fleet
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.obs import runtime as obs_runtime
from repro.tpm.device import TpmManufacturer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: (fleet size, workload binaries per node, measured re-poll rounds)
FLEET_SIZE, WORKLOAD, ROUNDS = (6, 10, 2) if SMOKE else (50, 60, 5)

#: Acceptance floor: shared-cache fleet throughput vs cache-off.
MIN_SPEEDUP = 5.0


def _build_fleet(size: int) -> Fleet:
    rng = SeededRng(f"pipeline-bench-{size}")
    scheduler = Scheduler()
    archive = UbuntuArchive()
    base = build_base_system(
        rng.fork("base"), n_filler_packages=20, mean_exec_files=5
    )
    archive.seed(base)
    mirror = LocalMirror(archive)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(
        list(IBM_STYLE_EXCLUDES), {"5.15.0-91-generic"}
    )
    manufacturer = TpmManufacturer("Bench", rng.fork("tpm"))
    return Fleet(size, mirror, manufacturer, scheduler, rng.fork("fleet"), policy)


def _run_workload(fleet: Fleet, limit: int) -> int:
    """Execute the same *limit* binaries on every node; returns the count."""
    paths = [
        stat.path
        for stat in fleet.nodes[0].machine.vfs.walk("/")
        if stat.executable
    ][:limit]
    for node in fleet.nodes:
        for path in paths:
            node.machine.exec_file(path)
    return len(paths)


def _repoll(fleet: Fleet) -> None:
    """Re-attest every node from the top of its log (same entries)."""
    for node in fleet.nodes:
        fleet.verifier.restart_attestation(node.agent.agent_id)
    results = fleet.poll_all()
    assert all(result.ok for result in results.values())


def _policy_eval_seconds() -> float:
    """Cumulative policy-eval stage wall seconds from the live registry."""
    family = obs_runtime.get().registry.get("verifier_stage_wall_seconds")
    if family is None:
        return 0.0
    for labels, child in family.samples():
        if labels.get("stage") == "policy_eval":
            return child.sum
    return 0.0


def _measure(fleet: Fleet, entries_per_round: int) -> dict[str, float]:
    """Entries/sec over ROUNDS full re-polls of the fleet."""
    _repoll(fleet)  # prime: steady-state replay, cache warmed (if any)
    stage_before = _policy_eval_seconds()
    wall_before = perf_counter()
    for _ in range(ROUNDS):
        _repoll(fleet)
    wall = perf_counter() - wall_before
    stage = _policy_eval_seconds() - stage_before
    entries = ROUNDS * entries_per_round
    return {
        "entries": entries,
        "stage_eps": entries / stage if stage else float("inf"),
        "poll_eps": entries / wall if wall else float("inf"),
    }


def test_pipeline_cache_speedup(benchmark, emit):
    scenarios = {}
    for label, size, cached in (
        ("single/cache-off", 1, False),
        ("single/cache-on", 1, True),
        (f"fleet-{FLEET_SIZE}/cache-off", FLEET_SIZE, False),
        (f"fleet-{FLEET_SIZE}/cache-on", FLEET_SIZE, True),
    ):
        fleet = _build_fleet(size)
        per_node = _run_workload(fleet, WORKLOAD) + 1  # + boot aggregate
        if not cached:
            fleet.verifier.verdict_cache = None
        scenarios[label] = _measure(fleet, entries_per_round=size * per_node)
        if label == f"fleet-{FLEET_SIZE}/cache-on":
            benchmark(lambda fleet=fleet: _repoll(fleet))

    emit()
    emit(
        f"Verifier pipeline throughput ({ROUNDS} re-polls, "
        f"{WORKLOAD} shared binaries/node{', SMOKE' if SMOKE else ''})"
    )
    emit(f"  {'scenario':<22} {'policy-eval entries/s':>22} {'full-poll entries/s':>20}")
    for label, stats in scenarios.items():
        emit(f"  {label:<22} {stats['stage_eps']:>22,.0f} {stats['poll_eps']:>20,.0f}")

    on = scenarios[f"fleet-{FLEET_SIZE}/cache-on"]
    off = scenarios[f"fleet-{FLEET_SIZE}/cache-off"]
    speedup = on["stage_eps"] / off["stage_eps"]
    emit(
        f"  shared-cache speedup (fleet policy-eval stage): {speedup:.1f}x "
        f"(floor {MIN_SPEEDUP:.0f}x{', not asserted in smoke' if SMOKE else ''})"
    )
    benchmark.extra_info["pipeline"] = {
        "smoke": SMOKE,
        "fleet_size": FLEET_SIZE,
        "rounds": ROUNDS,
        "scenarios": {
            label: {key: round(value, 2) for key, value in stats.items()}
            for label, stats in scenarios.items()
        },
        "fleet_cache_speedup": round(speedup, 2),
    }
    assert on["stage_eps"] > 0 and off["stage_eps"] > 0
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"shared verdict cache speedup {speedup:.2f}x below "
            f"the {MIN_SPEEDUP:.0f}x floor"
        )
