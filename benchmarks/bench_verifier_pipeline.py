"""Extension bench: staged verification pipeline and verdict caching.

Not a paper figure -- the paper times one verifier against one VM --
but the pipeline refactor's performance claim needs numbers: a fleet
of same-distro nodes measures nearly identical files, so a shared
:class:`~repro.keylime.policy.VerdictCache` should turn per-node policy
evaluation from O(entries) regex-and-dict work into O(entries) dict
hits, with only the first node paying full price.

The headline metric is **policy-eval stage entries/sec**, read from the
``verifier_stage_wall_seconds{stage=policy_eval}`` histogram the
pipeline records (the full poll also pays quote crypto, which is
cache-independent and would compress the ratio).  Full-poll entries/sec
is reported alongside for context.

Smoke mode (``REPRO_BENCH_SMOKE=1`` under pytest, ``--smoke`` under the
harness) shrinks the fleet and skips the ratio assertion --
sub-millisecond stage timings are too noisy to gate a workflow on.
"""

from __future__ import annotations

from time import perf_counter

from common import bench_mode, build_bench_fleet, pick
from repro.keylime.fleet import Fleet
from repro.obs import runtime as obs_runtime
from repro.obs.perf import BenchMetric, register_bench

MODE = bench_mode()


def _params(mode: str) -> tuple[int, int, int]:
    """(fleet size, workload binaries per node, measured re-poll rounds)."""
    return pick(mode, (6, 10, 2), (50, 60, 5))


#: Acceptance floor: shared-cache fleet throughput vs cache-off.
MIN_SPEEDUP = 5.0


def _run_workload(fleet: Fleet, limit: int) -> int:
    """Execute the same *limit* binaries on every node; returns the count."""
    paths = [
        stat.path
        for stat in fleet.nodes[0].machine.vfs.walk("/")
        if stat.executable
    ][:limit]
    for node in fleet.nodes:
        for path in paths:
            node.machine.exec_file(path)
    return len(paths)


def _repoll(fleet: Fleet) -> None:
    """Re-attest every node from the top of its log (same entries)."""
    for node in fleet.nodes:
        fleet.verifier.restart_attestation(node.agent.agent_id)
    results = fleet.poll_all()
    assert all(result.ok for result in results.values())


def _policy_eval_seconds() -> float:
    """Cumulative policy-eval stage wall seconds from the live registry."""
    family = obs_runtime.get().registry.get("verifier_stage_wall_seconds")
    if family is None:
        return 0.0
    for labels, child in family.samples():
        if labels.get("stage") == "policy_eval":
            return child.sum
    return 0.0


def _measure(
    fleet: Fleet, entries_per_round: int, rounds: int
) -> dict[str, float]:
    """Entries/sec over *rounds* full re-polls of the fleet."""
    _repoll(fleet)  # prime: steady-state replay, cache warmed (if any)
    stage_before = _policy_eval_seconds()
    wall_before = perf_counter()
    for _ in range(rounds):
        _repoll(fleet)
    wall = perf_counter() - wall_before
    stage = _policy_eval_seconds() - stage_before
    entries = rounds * entries_per_round
    return {
        "entries": entries,
        "stage_eps": entries / stage if stage > 0 else 0.0,
        "poll_eps": entries / wall if wall > 0 else 0.0,
    }


def _scenario(
    mode: str, seed: str, size: int, cached: bool
) -> tuple[dict[str, float], Fleet]:
    """One (size, cache) scenario's throughput stats + its fleet."""
    _, workload, rounds = _params(mode)
    fleet = build_bench_fleet(size, f"{seed}-{size}")
    per_node = _run_workload(fleet, workload) + 1  # + boot aggregate
    if not cached:
        fleet.verifier.verdict_cache = None
    stats = _measure(
        fleet, entries_per_round=size * per_node, rounds=rounds
    )
    return stats, fleet


def run_bench(mode: str, seed: str) -> dict[str, float]:
    """Harness core: fleet cache-on vs cache-off stage throughput."""
    size = _params(mode)[0]
    on, _ = _scenario(mode, seed, size, cached=True)
    off, _ = _scenario(mode, seed, size, cached=False)
    return {
        "fleet_stage_eps": on["stage_eps"],
        "fleet_poll_eps": on["poll_eps"],
        "cache_speedup": on["stage_eps"] / max(off["stage_eps"], 1e-12),
    }


register_bench(
    "pipeline",
    [
        BenchMetric("cache_speedup", "x", "higher",
                    "shared verdict-cache fleet speedup, policy-eval stage"),
        BenchMetric("fleet_stage_eps", "entries/s", "higher",
                    "cache-on fleet policy-eval stage throughput"),
        BenchMetric("fleet_poll_eps", "entries/s", "higher",
                    "cache-on fleet full-poll throughput"),
    ],
    run_bench,
    seed="pipeline-bench",
    description="Staged verification pipeline + shared verdict cache",
)


def test_pipeline_cache_speedup(benchmark, emit):
    fleet_size, workload, rounds = _params(MODE)
    smoke = MODE == "smoke"
    scenarios = {}
    for label, size, cached in (
        ("single/cache-off", 1, False),
        ("single/cache-on", 1, True),
        (f"fleet-{fleet_size}/cache-off", fleet_size, False),
        (f"fleet-{fleet_size}/cache-on", fleet_size, True),
    ):
        scenarios[label], fleet = _scenario(
            MODE, "pipeline-bench", size, cached
        )
        if label == f"fleet-{fleet_size}/cache-on":
            benchmark(lambda fleet=fleet: _repoll(fleet))

    emit()
    emit(
        f"Verifier pipeline throughput ({rounds} re-polls, "
        f"{workload} shared binaries/node{', SMOKE' if smoke else ''})"
    )
    emit(f"  {'scenario':<22} {'policy-eval entries/s':>22} {'full-poll entries/s':>20}")
    for label, stats in scenarios.items():
        emit(f"  {label:<22} {stats['stage_eps']:>22,.0f} {stats['poll_eps']:>20,.0f}")

    on = scenarios[f"fleet-{fleet_size}/cache-on"]
    off = scenarios[f"fleet-{fleet_size}/cache-off"]
    speedup = on["stage_eps"] / off["stage_eps"]
    emit(
        f"  shared-cache speedup (fleet policy-eval stage): {speedup:.1f}x "
        f"(floor {MIN_SPEEDUP:.0f}x{', not asserted in smoke' if smoke else ''})"
    )
    benchmark.extra_info["pipeline"] = {
        "smoke": smoke,
        "fleet_size": fleet_size,
        "rounds": rounds,
        "scenarios": {
            label: {key: round(value, 2) for key, value in stats.items()}
            for label, stats in scenarios.items()
        },
        "fleet_cache_speedup": round(speedup, 2),
    }
    assert on["stage_eps"] > 0 and off["stage_eps"] > 0
    if not smoke:
        assert speedup >= MIN_SPEEDUP, (
            f"shared verdict cache speedup {speedup:.2f}x below "
            f"the {MIN_SPEEDUP:.0f}x floor"
        )
