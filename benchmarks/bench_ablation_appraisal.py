"""Ablation: measurement-mode detection vs appraisal-mode prevention.

The paper studies IMA's measurement mode (fail-open: everything runs,
a verifier judges after the fact).  Real IMA also offers appraisal
(fail-closed: unsigned code never runs).  This bench runs the attack
corpus under enforcement and quantifies the trade the paper's
Discussion gestures at: appraisal *prevents* the file-dropping attacks
outright, but the pure-interpreter attack (Aoyama) still executes --
P5's deepest form survives even fail-closed enforcement -- and
operationally every legitimate update must arrive signed.
"""

from __future__ import annotations

from repro.attacks import AttackMode, all_attacks
from repro.common.rng import SeededRng
from repro.crypto.rsa import generate_keypair
from repro.experiments.testbed import build_testbed, TestbedConfig
from repro.kernelsim.appraisal import AppraisalDenied, sign_all_executables


def _enforced_testbed(seed: str):
    testbed = build_testbed(TestbedConfig(seed=seed))
    key = generate_keypair(SeededRng(f"{seed}/distro-key"), bits=1024)
    sign_all_executables(testbed.machine.vfs, key, "UbuntuIMA")
    testbed.machine.appraisal.enforce = True
    testbed.machine.appraisal.trust_key(key.public)
    return testbed


def test_ablation_appraisal_vs_measurement(benchmark, emit):
    def signed_boot():
        return _enforced_testbed("appraisal-bench")

    testbed = benchmark.pedantic(signed_boot, rounds=3, iterations=1)
    assert testbed.poll().ok  # signed system attests green under enforcement

    emit()
    emit("Ablation: measurement (detect) vs appraisal (prevent)")
    blocked = []
    executed = []
    for sample in all_attacks():
        trial_bed = _enforced_testbed(f"appraisal-bench/{sample.name}")
        try:
            sample.run(trial_bed.machine, AttackMode.BASIC)
        except AppraisalDenied as exc:
            blocked.append(sample.name)
            continue
        executed.append(sample.name)
    emit(f"  blocked outright by appraisal: {len(blocked)}/8 ({', '.join(blocked)})")
    emit(f"  still executed:                {len(executed)}/8 ({', '.join(executed)})")
    assert len(blocked) == 8, "appraisal must block the whole file-dropping corpus"

    # The inline-interpreter attack survives even enforcement.
    aoyama = [sample for sample in all_attacks() if sample.name == "Aoyama"][0]
    bed = _enforced_testbed("appraisal-bench/aoyama-adaptive")
    report = aoyama.run(bed.machine, AttackMode.ADAPTIVE)
    assert report.executions
    emit("  Aoyama (adaptive, inline python): EXECUTES even under enforcement --")
    emit("  P5's deepest form defeats fail-closed appraisal too.")
    emit("  cost: every legitimate update must ship maintainer signatures")
    emit("  (see bench_ablation_signed_hashes.py for that pipeline).")
