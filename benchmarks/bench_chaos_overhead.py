"""Overhead of the fault-injection layer and the retry machinery.

PR 5 put a deterministic chaos layer on the agent<->verifier wire: a
:class:`repro.keylime.faults.FaultPlan` wrapping every attestation round
plus a :class:`repro.keylime.retrypolicy.RetryPolicy` re-asking through
transient weather.  Both sit on the verifier poll loop -- the paper's
core continuous-attestation path -- so their cost budget matters in two
very different regimes:

* **clean plan installed**: the production shape.  A fault layer with no
  matching specs must be near-free *and* perturbation-free (zero RNG
  draws, bit-identical verdicts -- the determinism suite proves the
  latter; this bench prices the former).
* **flaky weather**: drops and delays firing, retries burning budget.
  The cost of chaos itself, paid only in chaos experiments.

This bench times the same N-poll loop three ways: bare (no fault layer),
clean plan, and the ``flaky`` profile with a 4-attempt retry budget.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the loop so CI can assert
the bounds without paying the full measurement.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.common.rng import SeededRng
from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.keylime.faults import chaos_profile
from repro.keylime.retrypolicy import RetryPolicy

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_POLLS = 40 if SMOKE else 200
POLL_INTERVAL = 1800.0


def _run_loop(seed: str, profile: str | None):
    """Build a small rig, optionally install a fault plan, time N polls.

    Returns ``(seconds, entries_sequence, plan, degraded_rounds)``;
    build cost is excluded from the timing.
    """
    testbed = build_testbed(TestbedConfig(seed=seed, n_filler_packages=15))
    plan = None
    degraded = 0
    if profile is not None:
        plan = chaos_profile(profile, SeededRng(f"chaos-bench/{profile}"))
        plan.bind_clock(testbed.scheduler.clock)
        slot = testbed.verifier._slot(testbed.agent_id)
        slot.agent = plan.wrap(testbed.agent)
        testbed.verifier.retry_policy = RetryPolicy(max_attempts=4)
        # Cumulative suspect windows must never end the loop early: this
        # bench prices the weather, it does not study quarantine.
        testbed.verifier.quarantine_after = 10**9
    start = perf_counter()
    entries = []
    for _ in range(N_POLLS):
        testbed.scheduler.clock.advance_by(POLL_INTERVAL)
        result = testbed.poll()
        assert result.ok or result.transient, result.failures
        degraded += result.transient
        entries.append(result.entries_processed)
    return perf_counter() - start, entries, plan, degraded


def test_chaos_layer_overhead(benchmark, emit):
    bare_s, bare_entries, _, _ = _run_loop("chaos-overhead", None)

    clean_s, clean_entries, clean_plan, clean_degraded = _run_loop(
        "chaos-overhead", "clean"
    )
    # The zero-perturbation guarantee, verdict form: a clean plan's loop
    # processes exactly the bare loop's entry stream and injects nothing.
    assert clean_plan.injections == []
    assert clean_degraded == 0
    assert clean_entries == bare_entries

    flaky_s, _, flaky_plan, flaky_degraded = benchmark.pedantic(
        lambda: _run_loop("chaos-overhead", "flaky"),
        rounds=1 if SMOKE else 3, iterations=1,
    )

    per_poll = lambda seconds: seconds / N_POLLS * 1e6  # noqa: E731
    emit()
    emit(f"Chaos-layer overhead ({N_POLLS} polls{', smoke' if SMOKE else ''})")
    emit(f"  no fault layer:     {per_poll(bare_s):9.1f} us/poll")
    emit(f"  clean plan installed:{per_poll(clean_s):8.1f} us/poll "
         f"({clean_s / bare_s - 1.0:+.1%})")
    emit(f"  flaky profile:      {per_poll(flaky_s):9.1f} us/poll "
         f"({flaky_s / bare_s - 1.0:+.1%})")
    emit(f"  flaky weather: {dict(flaky_plan.counts_by_kind())} injected, "
         f"{flaky_degraded} degraded round(s)")

    benchmark.extra_info["chaos_overhead"] = {
        "bare_us_per_poll": round(per_poll(bare_s), 2),
        "clean_us_per_poll": round(per_poll(clean_s), 2),
        "flaky_us_per_poll": round(per_poll(flaky_s), 2),
        "flaky_injected": dict(flaky_plan.counts_by_kind()),
        "flaky_degraded_rounds": flaky_degraded,
    }
    assert flaky_plan.injections, "flaky profile injected nothing to price"
    # The clean-installed layer must stay within an order of magnitude
    # of the bare loop (loose bound for noisy CI boxes); chaos itself
    # pays for serialisation + retries but still bounded.
    assert clean_s < bare_s * 10.0
    assert flaky_s < bare_s * 10.0
