"""Overhead of the fault-injection layer and the retry machinery.

PR 5 put a deterministic chaos layer on the agent<->verifier wire: a
:class:`repro.keylime.faults.FaultPlan` wrapping every attestation round
plus a :class:`repro.keylime.retrypolicy.RetryPolicy` re-asking through
transient weather.  Both sit on the verifier poll loop -- the paper's
core continuous-attestation path -- so their cost budget matters in two
very different regimes:

* **clean plan installed**: the production shape.  A fault layer with no
  matching specs must be near-free *and* perturbation-free (zero RNG
  draws, bit-identical verdicts -- the determinism suite proves the
  latter; this bench prices the former).
* **flaky weather**: drops and delays firing, retries burning budget.
  The cost of chaos itself, paid only in chaos experiments.

This bench times the same N-poll loop three ways: bare (no fault layer),
clean plan, and the ``flaky`` profile with a 4-attempt retry budget.

Smoke mode (``REPRO_BENCH_SMOKE=1`` under pytest, ``--smoke`` under the
harness) shrinks the loop so CI can assert the bounds without paying
the full measurement.
"""

from __future__ import annotations

from time import perf_counter

from common import bench_mode, pick
from repro.common.rng import SeededRng
from repro.experiments.testbed import TestbedConfig, build_testbed
from repro.keylime.faults import chaos_profile
from repro.keylime.retrypolicy import RetryPolicy
from repro.obs.perf import BenchMetric, register_bench

MODE = bench_mode()
POLL_INTERVAL = 1800.0


def _n_polls(mode: str) -> int:
    return pick(mode, 40, 200)


def _run_loop(seed: str, profile: str | None, n_polls: int):
    """Build a small rig, optionally install a fault plan, time N polls.

    Returns ``(seconds, entries_sequence, plan, degraded_rounds)``;
    build cost is excluded from the timing.
    """
    testbed = build_testbed(TestbedConfig(seed=seed, n_filler_packages=15))
    plan = None
    degraded = 0
    if profile is not None:
        plan = chaos_profile(profile, SeededRng(f"chaos-bench/{profile}"))
        plan.bind_clock(testbed.scheduler.clock)
        slot = testbed.verifier._slot(testbed.agent_id)
        slot.agent = plan.wrap(testbed.agent)
        testbed.verifier.retry_policy = RetryPolicy(max_attempts=4)
        # Cumulative suspect windows must never end the loop early: this
        # bench prices the weather, it does not study quarantine.
        testbed.verifier.quarantine_after = 10**9
    start = perf_counter()
    entries = []
    for _ in range(n_polls):
        testbed.scheduler.clock.advance_by(POLL_INTERVAL)
        result = testbed.poll()
        assert result.ok or result.transient, result.failures
        degraded += result.transient
        entries.append(result.entries_processed)
    return perf_counter() - start, entries, plan, degraded


def run_bench(mode: str, seed: str) -> dict[str, float]:
    """Harness core: bare / clean-plan / flaky loop costs.

    The injected-fault and degraded-round counts are pure functions of
    the seeded weather, so those metrics must reproduce exactly on a
    same-seed rerun -- a deviation there is a workload change, not
    noise.
    """
    n_polls = _n_polls(mode)
    bare_s, bare_entries, _, _ = _run_loop(seed, None, n_polls)
    clean_s, clean_entries, clean_plan, clean_degraded = _run_loop(
        seed, "clean", n_polls
    )
    assert clean_plan.injections == []
    assert clean_degraded == 0
    assert clean_entries == bare_entries
    flaky_s, _, flaky_plan, flaky_degraded = _run_loop(
        seed, "flaky", n_polls
    )
    per_poll = 1e6 / n_polls
    return {
        "bare_us_per_poll": bare_s * per_poll,
        "clean_us_per_poll": clean_s * per_poll,
        "flaky_us_per_poll": flaky_s * per_poll,
        "flaky_injected": float(len(flaky_plan.injections)),
        "flaky_degraded_rounds": float(flaky_degraded),
    }


register_bench(
    "chaos",
    [
        BenchMetric("bare_us_per_poll", "us", "lower",
                    "poll cost, no fault layer"),
        BenchMetric("clean_us_per_poll", "us", "lower",
                    "poll cost with a clean (no-op) fault plan installed"),
        BenchMetric("flaky_us_per_poll", "us", "lower",
                    "poll cost under the flaky profile + retries"),
        BenchMetric("flaky_injected", "faults", "lower",
                    "seed-deterministic injected-fault count"),
        BenchMetric("flaky_degraded_rounds", "rounds", "lower",
                    "seed-deterministic degraded-round count"),
    ],
    run_bench,
    seed="chaos-overhead",
    description="Fault-injection layer + retry machinery overhead",
)


def test_chaos_layer_overhead(benchmark, emit):
    n_polls = _n_polls(MODE)
    smoke = MODE == "smoke"
    bare_s, bare_entries, _, _ = _run_loop("chaos-overhead", None, n_polls)

    clean_s, clean_entries, clean_plan, clean_degraded = _run_loop(
        "chaos-overhead", "clean", n_polls
    )
    # The zero-perturbation guarantee, verdict form: a clean plan's loop
    # processes exactly the bare loop's entry stream and injects nothing.
    assert clean_plan.injections == []
    assert clean_degraded == 0
    assert clean_entries == bare_entries

    flaky_s, _, flaky_plan, flaky_degraded = benchmark.pedantic(
        lambda: _run_loop("chaos-overhead", "flaky", n_polls),
        rounds=1 if smoke else 3, iterations=1,
    )

    per_poll = lambda seconds: seconds / n_polls * 1e6  # noqa: E731
    emit()
    emit(f"Chaos-layer overhead ({n_polls} polls{', smoke' if smoke else ''})")
    emit(f"  no fault layer:     {per_poll(bare_s):9.1f} us/poll")
    emit(f"  clean plan installed:{per_poll(clean_s):8.1f} us/poll "
         f"({clean_s / bare_s - 1.0:+.1%})")
    emit(f"  flaky profile:      {per_poll(flaky_s):9.1f} us/poll "
         f"({flaky_s / bare_s - 1.0:+.1%})")
    emit(f"  flaky weather: {dict(flaky_plan.counts_by_kind())} injected, "
         f"{flaky_degraded} degraded round(s)")

    benchmark.extra_info["chaos_overhead"] = {
        "bare_us_per_poll": round(per_poll(bare_s), 2),
        "clean_us_per_poll": round(per_poll(clean_s), 2),
        "flaky_us_per_poll": round(per_poll(flaky_s), 2),
        "flaky_injected": dict(flaky_plan.counts_by_kind()),
        "flaky_degraded_rounds": flaky_degraded,
    }
    assert flaky_plan.injections, "flaky profile injected nothing to price"
    # The clean-installed layer must stay within an order of magnitude
    # of the bare loop (loose bound for noisy CI boxes); chaos itself
    # pays for serialisation + retries but still bounded.
    assert clean_s < bare_s * 10.0
    assert flaky_s < bare_s * 10.0
