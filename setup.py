"""Setuptools entry point.

The offline environment lacks the ``wheel`` package, so PEP 660
editable installs fail; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` on newer setuptools) both work
from this file. Metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
